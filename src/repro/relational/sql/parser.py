"""Recursive-descent parser for the SQL subset.

Produces an :class:`~repro.relational.algebra.SPJQuery` for plain
select-project-join queries, or an
:class:`~repro.relational.aggregates.AggregateQuery` when the select
list contains aggregate functions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import SQLSyntaxError, UnsupportedQueryError
from repro.relational.aggregates import AggregateQuery, AggregateSpec
from repro.relational.algebra import OutputColumn, RelationRef, SPJQuery
from repro.relational.expressions import (
    Abs,
    Arithmetic,
    ColumnRef,
    Expression,
    Literal,
    Negate,
)
from repro.relational.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
)
from repro.relational.sql.lexer import Token, TokenKind, tokenize

AGG_KEYWORDS = {"SUM", "COUNT", "AVG", "MIN", "MAX"}

ParsedQuery = Union[SPJQuery, AggregateQuery]


def parse_query(text: str) -> ParsedQuery:
    """Parse one SELECT statement into a query object."""
    parser = _Parser(tokenize(text))
    query = parser.parse_select()
    parser.expect_eof()
    return query


class _SelectItem:
    """One parsed select-list entry (column or aggregate)."""

    __slots__ = ("ref", "agg", "alias")

    def __init__(self, ref: Optional[ColumnRef], agg: Optional[Tuple[str, Optional[ColumnRef]]], alias: Optional[str]):
        self.ref = ref
        self.agg = agg
        self.alias = alias


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word}, got {token.text or 'end of input'!r}",
                position=token.position,
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        token = self.peek()
        if not token.is_symbol(symbol):
            raise SQLSyntaxError(
                f"expected {symbol!r}, got {token.text or 'end of input'!r}",
                position=token.position,
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise SQLSyntaxError(
                f"expected identifier, got {token.text or 'end of input'!r}",
                position=token.position,
            )
        return self.advance().text

    def expect_eof(self) -> None:
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            raise SQLSyntaxError(
                f"trailing input starting at {token.text!r}",
                position=token.position,
            )

    # -- grammar -------------------------------------------------------

    def parse_select(self) -> ParsedQuery:
        self.expect_keyword("SELECT")
        if self.accept_keyword("DISTINCT"):
            raise UnsupportedQueryError(
                "DISTINCT is implicit under tid-keyed set semantics; "
                "use Relation.distinct_values() for value semantics"
            )
        star, items = self.parse_select_list()
        self.expect_keyword("FROM")
        relations = self.parse_from_list()
        predicate: Predicate = TruePredicate()
        if self.accept_keyword("WHERE"):
            predicate = self.parse_or_expr()
        group_by: List[ColumnRef] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_column_ref())
            while self.accept_symbol(","):
                group_by.append(self.parse_column_ref())
        having: Optional[Predicate] = None
        if self.accept_keyword("HAVING"):
            # HAVING references *output* columns: group keys or
            # aggregate aliases (e.g. HAVING total > 100).
            having = self.parse_or_expr()

        has_aggregates = any(item.agg is not None for item in items)
        if not has_aggregates:
            if group_by:
                raise UnsupportedQueryError(
                    "GROUP BY without aggregate functions is not supported"
                )
            if having is not None:
                raise UnsupportedQueryError(
                    "HAVING requires aggregate functions in the select list"
                )
            projection = (
                None
                if star
                else [OutputColumn(item.ref, item.alias) for item in items]
            )
            return SPJQuery(relations, predicate, projection)

        plain = [item for item in items if item.agg is None]
        group_names = {ref.to_sql() for ref in group_by}
        for item in plain:
            if item.ref.to_sql() not in group_names:
                raise UnsupportedQueryError(
                    f"non-aggregated column {item.ref.to_sql()!r} must appear "
                    "in GROUP BY"
                )
        specs = [
            AggregateSpec(item.agg[0], item.agg[1], item.alias)
            for item in items
            if item.agg is not None
        ]
        # The SPJ core exposes all columns (SELECT *) so group keys and
        # aggregate arguments resolve against its output.
        core = SPJQuery(relations, predicate, None)
        return AggregateQuery(core, specs, group_by, having=having)

    def parse_select_list(self) -> Tuple[bool, List[_SelectItem]]:
        if self.accept_symbol("*"):
            return True, []
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        return False, items

    def parse_select_item(self) -> _SelectItem:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.text in AGG_KEYWORDS:
            func = self.advance().text
            self.expect_symbol("(")
            if self.accept_symbol("*"):
                if func != "COUNT":
                    raise SQLSyntaxError(
                        f"{func}(*) is not valid", position=token.position
                    )
                ref: Optional[ColumnRef] = None
            else:
                ref = self.parse_column_ref()
            self.expect_symbol(")")
            alias = self.parse_optional_alias()
            return _SelectItem(None, (func, ref), alias)
        ref = self.parse_column_ref()
        alias = self.parse_optional_alias()
        return _SelectItem(ref, None, alias)

    def parse_optional_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_ident()
        if self.peek().kind is TokenKind.IDENT:
            return self.advance().text
        return None

    def parse_from_list(self) -> List[RelationRef]:
        relations = [self.parse_relation_ref()]
        while self.accept_symbol(","):
            relations.append(self.parse_relation_ref())
        return relations

    def parse_relation_ref(self) -> RelationRef:
        table = self.expect_ident()
        alias = self.parse_optional_alias()
        return RelationRef(table, alias)

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect_ident()
        if self.accept_symbol("."):
            second = self.expect_ident()
            return ColumnRef(second, first)
        return ColumnRef(first)

    # -- predicates ----------------------------------------------------

    def parse_or_expr(self) -> Predicate:
        children = [self.parse_and_expr()]
        while self.accept_keyword("OR"):
            children.append(self.parse_and_expr())
        if len(children) == 1:
            return children[0]
        return Or(*children)

    def parse_and_expr(self) -> Predicate:
        children = [self.parse_not_expr()]
        while self.accept_keyword("AND"):
            children.append(self.parse_not_expr())
        return conjunction(children)

    def parse_not_expr(self) -> Predicate:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not_expr())
        return self.parse_primary_predicate()

    def parse_primary_predicate(self) -> Predicate:
        token = self.peek()
        if token.is_keyword("TRUE") and not self.peek(1).is_symbol("."):
            # Bare boolean keyword as predicate.
            marker = self.pos
            self.advance()
            if self._at_predicate_boundary():
                return TruePredicate()
            self.pos = marker
        if token.is_keyword("FALSE"):
            marker = self.pos
            self.advance()
            if self._at_predicate_boundary():
                return FalsePredicate()
            self.pos = marker
        if token.is_symbol("("):
            # Backtracking: "(p AND q)" is a predicate; "(a + b) > 3"
            # starts with a parenthesized arithmetic expression.
            marker = self.pos
            try:
                self.advance()
                inner = self.parse_or_expr()
                self.expect_symbol(")")
                if self._at_predicate_boundary():
                    return inner
            except SQLSyntaxError:
                pass
            self.pos = marker
        return self.parse_comparison()

    def _at_predicate_boundary(self) -> bool:
        """True if the next token cannot continue an expression."""
        token = self.peek()
        if token.kind is TokenKind.EOF:
            return True
        if token.kind is TokenKind.KEYWORD and token.text in (
            "AND",
            "OR",
            "GROUP",
        ):
            return True
        return token.is_symbol(")")

    def parse_comparison(self) -> Predicate:
        left = self.parse_arith()
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.text == "BETWEEN":
            self.advance()
            low = self.parse_arith()
            self.expect_keyword("AND")
            high = self.parse_arith()
            return And(Comparison(">=", left, low), Comparison("<=", left, high))
        for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if token.is_symbol(op):
                self.advance()
                right = self.parse_arith()
                return Comparison(op, left, right)
        raise SQLSyntaxError(
            f"expected comparison operator, got {token.text or 'end of input'!r}",
            position=token.position,
        )

    # -- arithmetic ------------------------------------------------------

    def parse_arith(self) -> Expression:
        expr = self.parse_term()
        while True:
            if self.accept_symbol("+"):
                expr = Arithmetic("+", expr, self.parse_term())
            elif self.accept_symbol("-"):
                expr = Arithmetic("-", expr, self.parse_term())
            else:
                return expr

    def parse_term(self) -> Expression:
        expr = self.parse_factor()
        while True:
            if self.accept_symbol("*"):
                expr = Arithmetic("*", expr, self.parse_factor())
            elif self.accept_symbol("/"):
                expr = Arithmetic("/", expr, self.parse_factor())
            else:
                return expr

    def parse_factor(self) -> Expression:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return Literal(token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("ABS"):
            self.advance()
            self.expect_symbol("(")
            inner = self.parse_arith()
            self.expect_symbol(")")
            return Abs(inner)
        if token.is_symbol("-"):
            self.advance()
            operand = self.parse_factor()
            # Fold negative numeric literals so `-1` round-trips as a
            # Literal rather than Negate(Literal).
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return Literal(-operand.value)
            return Negate(operand)
        if token.is_symbol("("):
            self.advance()
            inner = self.parse_arith()
            self.expect_symbol(")")
            return inner
        if token.kind is TokenKind.IDENT:
            return self.parse_column_ref()
        raise SQLSyntaxError(
            f"expected expression, got {token.text or 'end of input'!r}",
            position=token.position,
        )
