"""The relational engine substrate (schemas, algebra, SQL, evaluation).

This package implements the relational model fragment the paper's DRA
is defined over: SPJ queries plus global/grouped aggregates, with
tid-keyed set semantics. See DESIGN.md S1.
"""

from repro.relational.aggregates import (
    AggregateQuery,
    AggregateSpec,
    evaluate_aggregate,
)
from repro.relational.algebra import (
    Difference,
    Join,
    OutputColumn,
    Project,
    RelationRef,
    Scan,
    Select,
    SPJQuery,
    Union,
    normalize,
)
from repro.relational.evaluate import evaluate_algebra, evaluate_spj
from repro.relational.expressions import (
    Abs,
    Arithmetic,
    ColumnRef,
    Literal,
    Negate,
    col,
    lit,
)
from repro.relational.indexes import HashIndex, IndexSet
from repro.relational.optimizer import explain, refine
from repro.relational.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.relational.relation import Relation, Row, Tid, Values
from repro.relational.schema import Attribute, Schema
from repro.relational.sql import parse_query
from repro.relational.types import AttributeType

__all__ = [
    "Abs",
    "AggregateQuery",
    "AggregateSpec",
    "And",
    "Arithmetic",
    "Attribute",
    "AttributeType",
    "ColumnRef",
    "Comparison",
    "Difference",
    "FalsePredicate",
    "HashIndex",
    "IndexSet",
    "Join",
    "Literal",
    "Negate",
    "Not",
    "Or",
    "OutputColumn",
    "Predicate",
    "Project",
    "Relation",
    "RelationRef",
    "Row",
    "SPJQuery",
    "Scan",
    "Schema",
    "Select",
    "Tid",
    "TruePredicate",
    "Union",
    "Values",
    "col",
    "conjunction",
    "eq",
    "evaluate_aggregate",
    "evaluate_algebra",
    "evaluate_spj",
    "explain",
    "ge",
    "gt",
    "le",
    "lit",
    "lt",
    "ne",
    "normalize",
    "parse_query",
    "refine",
]
