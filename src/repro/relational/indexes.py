"""Hash indexes over relations and tables.

DRA's performance claim rests on *probing* base relations from small
deltas instead of scanning them (Section 5.1). Hash indexes on join /
selection columns are what make each probe O(1). Tables keep their
indexes synchronized on every update; the delta layer wraps them in
old-state overlays to probe the relation as of the last CQ execution.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.metrics import Metrics
from repro.relational.relation import Relation, Tid, Values
from repro.relational.schema import Schema


class HashIndex:
    """An equality index mapping key tuples to sets of tids.

    ``positions`` are attribute positions in the indexed relation's
    schema; a key is the tuple of values at those positions.
    """

    __slots__ = ("positions", "_buckets")

    def __init__(self, positions: Tuple[int, ...]):
        if not positions:
            raise ValueError("an index needs at least one key column")
        self.positions = tuple(positions)
        self._buckets: Dict[Tuple[Any, ...], Set[Tid]] = {}

    @classmethod
    def build(cls, relation: Relation, positions: Tuple[int, ...]) -> "HashIndex":
        index = cls(positions)
        for row in relation:
            index.insert(row.tid, row.values)
        return index

    @classmethod
    def on_columns(cls, schema: Schema, names: Iterable[str]) -> "HashIndex":
        return cls(tuple(schema.position(name) for name in names))

    def key_of(self, values: Values) -> Tuple[Any, ...]:
        return tuple(values[p] for p in self.positions)

    def insert(self, tid: Tid, values: Values) -> None:
        self._buckets.setdefault(self.key_of(values), set()).add(tid)

    def remove(self, tid: Tid, values: Values) -> None:
        key = self.key_of(values)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(tid)
            if not bucket:
                del self._buckets[key]

    def update(self, tid: Tid, old_values: Values, new_values: Values) -> None:
        old_key = self.key_of(old_values)
        new_key = self.key_of(new_values)
        if old_key != new_key:
            self.remove(tid, old_values)
            self.insert(tid, new_values)

    def lookup(
        self, key: Tuple[Any, ...], metrics: Optional[Metrics] = None
    ) -> Set[Tid]:
        """Tids whose key columns equal ``key`` (possibly empty)."""
        if metrics:
            metrics.count(Metrics.INDEX_PROBES)
        return self._buckets.get(key, _EMPTY)

    def keys(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._buckets.keys())

    def buckets_map(self) -> Dict[Tuple[Any, ...], Set[Tid]]:
        """The internal key→tid-set mapping, for batch probing (the
        columnar kernels). Read-only by contract; mutations go through
        :meth:`insert`/:meth:`remove`/:meth:`update`."""
        return self._buckets

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def bucket_count(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"HashIndex(positions={self.positions}, "
            f"{self.bucket_count()} keys, {len(self)} entries)"
        )


_EMPTY: Set[Tid] = frozenset()  # type: ignore[assignment]


class IndexSet:
    """The indexes attached to one table, keyed by position tuple.

    ``version`` increments whenever an index is added; prepared CQ
    plans record it at compile time so a later index creation
    invalidates (and re-prepares) any plan that assumed its absence.
    """

    __slots__ = ("_indexes", "_by_sorted", "version")

    def __init__(self) -> None:
        self._indexes: Dict[Tuple[int, ...], HashIndex] = {}
        # Canonical (sorted-positions) map maintained at add() time so
        # best_for is one dict lookup instead of a scan over every
        # index key per probe-plan resolution.
        self._by_sorted: Dict[Tuple[int, ...], HashIndex] = {}
        self.version = 0

    def add(self, index: HashIndex) -> None:
        self._indexes[index.positions] = index
        # First registration wins for a given column set, matching the
        # old linear scan's insertion-order preference.
        self._by_sorted.setdefault(tuple(sorted(index.positions)), index)
        self.version += 1

    def get(self, positions: Tuple[int, ...]) -> Optional[HashIndex]:
        return self._indexes.get(tuple(positions))

    def best_for(self, positions: Iterable[int]) -> Optional[HashIndex]:
        """An index whose key is exactly ``positions`` in any order."""
        wanted = tuple(positions)
        exact = self._indexes.get(wanted)
        if exact is not None:
            return exact
        return self._by_sorted.get(tuple(sorted(wanted)))

    def single_column(self, position: int) -> Optional[HashIndex]:
        return self._indexes.get((position,))

    def all(self) -> List[HashIndex]:
        return list(self._indexes.values())

    def on_insert(self, tid: Tid, values: Values) -> None:
        for index in self._indexes.values():
            index.insert(tid, values)

    def on_delete(self, tid: Tid, values: Values) -> None:
        for index in self._indexes.values():
            index.remove(tid, values)

    def on_modify(self, tid: Tid, old_values: Values, new_values: Values) -> None:
        for index in self._indexes.values():
            index.update(tid, old_values, new_values)

    def __len__(self) -> int:
        return len(self._indexes)
