"""Attribute types for the relational engine.

The engine supports a small, closed set of scalar types. Each type
knows how to validate and coerce Python values, which keeps the rest of
the engine free of isinstance checks.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class AttributeType(enum.Enum):
    """The scalar types an attribute may carry."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"

    def validate(self, value: Any) -> Any:
        """Return ``value`` coerced to this type, or raise.

        ``None`` is always accepted: differential relations use null
        attribute values for the missing side of inserts and deletes
        (paper Section 4.1).
        """
        if value is None:
            return None
        if self is AttributeType.INT:
            # bool is a subclass of int; reject it explicitly so that
            # True does not silently become 1 in an INT column.
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(
                    f"expected INT, got {type(value).__name__}: {value!r}"
                )
            return value
        if self is AttributeType.FLOAT:
            if isinstance(value, bool):
                raise TypeMismatchError(f"expected FLOAT, got bool: {value!r}")
            if isinstance(value, int):
                return float(value)
            if not isinstance(value, float):
                raise TypeMismatchError(
                    f"expected FLOAT, got {type(value).__name__}: {value!r}"
                )
            return value
        if self is AttributeType.STR:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"expected STR, got {type(value).__name__}: {value!r}"
                )
            return value
        if self is AttributeType.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(
                    f"expected BOOL, got {type(value).__name__}: {value!r}"
                )
            return value
        raise AssertionError(f"unhandled type {self!r}")  # pragma: no cover

    def is_numeric(self) -> bool:
        """True for types that participate in arithmetic and SUM/AVG."""
        return self in (AttributeType.INT, AttributeType.FLOAT)

    @property
    def wire_size(self) -> int:
        """Nominal serialized size in bytes, used by the network model.

        Strings are charged per character at call sites; this is the
        fixed-width baseline.
        """
        if self is AttributeType.INT:
            return 8
        if self is AttributeType.FLOAT:
            return 8
        if self is AttributeType.BOOL:
            return 1
        return 4  # STR: length prefix; content charged separately.


def infer_type(value: Any) -> AttributeType:
    """Infer the :class:`AttributeType` of a Python value."""
    if isinstance(value, bool):
        return AttributeType.BOOL
    if isinstance(value, int):
        return AttributeType.INT
    if isinstance(value, float):
        return AttributeType.FLOAT
    if isinstance(value, str):
        return AttributeType.STR
    raise TypeMismatchError(f"no attribute type for {type(value).__name__}")


def value_wire_size(value: Any) -> int:
    """Serialized size in bytes of one attribute value (network model)."""
    if value is None:
        return 1
    if isinstance(value, str):
        return 4 + len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    return 8
