"""Scalar expression AST.

Expressions appear inside selection predicates and projection lists.
They compile, through a :class:`Binder`, into plain Python closures, so
per-row evaluation costs one function call rather than a tree walk —
this matters for the benchmark harness, which pushes 10^5-row relations
through predicates.

Null semantics: any arithmetic over ``None`` yields ``None`` (nulls
appear in differential relations for the missing side of inserts and
deletes, paper Section 4.1).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.errors import ExpressionError

# A compiled expression maps an opaque environment to a value. The
# binder chooses the environment representation (a values tuple for
# single-relation evaluation, an alias->values dict for joins).
Compiled = Callable[[Any], Any]


class Binder:
    """Resolves column references to accessor closures.

    Subclasses decide what the runtime environment looks like; see
    :class:`repro.relational.binding.SingleRowBinder` and
    :class:`repro.relational.binding.EnvBinder`.
    """

    def accessor(self, ref: "ColumnRef") -> Compiled:
        raise NotImplementedError

    def type_of(self, ref: "ColumnRef"):
        """The referenced attribute's type (None if unknowable)."""
        return None


class Expression:
    """Base class for scalar expressions."""

    def compile(self, binder: Binder) -> Compiled:
        raise NotImplementedError

    def infer_type(self, binder: Binder):
        """Static result type against the binder's schemas.

        Returns an :class:`~repro.relational.types.AttributeType` or
        None when the type cannot be known (e.g. a null literal).
        Raises :class:`~repro.errors.ExpressionError` on ill-typed
        structure (arithmetic over strings, and so on) — queries fail
        at compile time, not per-row at runtime.
        """
        raise NotImplementedError

    def column_refs(self) -> Iterator["ColumnRef"]:
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError

    # Convenience constructors so tests and examples read naturally.
    def __add__(self, other: "Expression") -> "Arithmetic":
        return Arithmetic("+", self, _lift(other))

    def __sub__(self, other: "Expression") -> "Arithmetic":
        return Arithmetic("-", self, _lift(other))

    def __mul__(self, other: "Expression") -> "Arithmetic":
        return Arithmetic("*", self, _lift(other))

    def __truediv__(self, other: "Expression") -> "Arithmetic":
        return Arithmetic("/", self, _lift(other))


def _lift(value: Any) -> "Expression":
    if isinstance(value, Expression):
        return value
    return Literal(value)


class ColumnRef(Expression):
    """A reference to an attribute, optionally qualified by an alias.

    ``ColumnRef("price")`` resolves against whatever single relation is
    in scope; ``ColumnRef("price", "stocks")`` names the relation
    explicitly, which is required when a join has colliding names.
    """

    __slots__ = ("name", "qualifier")

    def __init__(self, name: str, qualifier: Optional[str] = None):
        if not name:
            raise ExpressionError("column name must be non-empty")
        self.name = name
        self.qualifier = qualifier

    def compile(self, binder: Binder) -> Compiled:
        return binder.accessor(self)

    def infer_type(self, binder: Binder):
        return binder.type_of(self)

    def column_refs(self) -> Iterator["ColumnRef"]:
        yield self

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def _key(self):
        return (self.name, self.qualifier)


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def compile(self, binder: Binder) -> Compiled:
        value = self.value
        return lambda env: value

    def infer_type(self, binder: Binder):
        from repro.relational.types import infer_type

        if self.value is None:
            return None
        return infer_type(self.value)

    def column_refs(self) -> Iterator[ColumnRef]:
        return iter(())

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)

    def _key(self):
        return (self.value,)


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Arithmetic(Expression):
    """A binary arithmetic expression; ``None`` operands propagate."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = _lift(left)
        self.right = _lift(right)

    def compile(self, binder: Binder) -> Compiled:
        lfn = self.left.compile(binder)
        rfn = self.right.compile(binder)
        op = _ARITH_OPS[self.op]

        def run(env: Any) -> Any:
            lval = lfn(env)
            rval = rfn(env)
            if lval is None or rval is None:
                return None
            return op(lval, rval)

        return run

    def infer_type(self, binder: Binder):
        left = _require_numeric(self.left, binder, f"operand of {self.op!r}")
        right = _require_numeric(self.right, binder, f"operand of {self.op!r}")
        from repro.relational.types import AttributeType

        if self.op == "/":
            return AttributeType.FLOAT
        if left is None or right is None:
            return left or right
        if AttributeType.FLOAT in (left, right):
            return AttributeType.FLOAT
        return AttributeType.INT

    def column_refs(self) -> Iterator[ColumnRef]:
        yield from self.left.column_refs()
        yield from self.right.column_refs()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def _key(self):
        return (self.op, self.left, self.right)


def _require_numeric(expr: "Expression", binder: Binder, where: str):
    """Infer ``expr``'s type and insist it is numeric (or unknown)."""
    inferred = expr.infer_type(binder)
    if inferred is not None and not inferred.is_numeric():
        raise ExpressionError(
            f"{where} must be numeric, got {inferred.value} "
            f"({expr.to_sql()})"
        )
    return inferred


class Abs(Expression):
    """Absolute value — used by epsilon-distance predicates such as the
    paper's Q3: "differ by more than $5 from $75"."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression):
        self.operand = _lift(operand)

    def compile(self, binder: Binder) -> Compiled:
        fn = self.operand.compile(binder)

        def run(env: Any) -> Any:
            value = fn(env)
            return None if value is None else abs(value)

        return run

    def infer_type(self, binder: Binder):
        return _require_numeric(self.operand, binder, "operand of ABS")

    def column_refs(self) -> Iterator[ColumnRef]:
        yield from self.operand.column_refs()

    def to_sql(self) -> str:
        return f"ABS({self.operand.to_sql()})"

    def _key(self):
        return (self.operand,)


class Negate(Expression):
    """Unary minus."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression):
        self.operand = _lift(operand)

    def compile(self, binder: Binder) -> Compiled:
        fn = self.operand.compile(binder)

        def run(env: Any) -> Any:
            value = fn(env)
            return None if value is None else -value

        return run

    def infer_type(self, binder: Binder):
        return _require_numeric(self.operand, binder, "operand of unary minus")

    def column_refs(self) -> Iterator[ColumnRef]:
        yield from self.operand.column_refs()

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"

    def _key(self):
        return (self.operand,)


def col(name: str, qualifier: Optional[str] = None) -> ColumnRef:
    """Shorthand constructor: ``col("price", "stocks")``."""
    if qualifier is None and "." in name:
        qualifier, __, name = name.partition(".")
    return ColumnRef(name, qualifier)


def lit(value: Any) -> Literal:
    """Shorthand constructor for literals."""
    return Literal(value)
