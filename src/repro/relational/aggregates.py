"""Aggregate functions and aggregate queries.

The paper's epsilon-trigger examples are aggregate continual queries
("SELECT SUM(amount) FROM CheckingAccounts", Section 5.3). This module
defines the aggregate accumulators — each supports both ``add`` and
``remove`` so :mod:`repro.dra.aggregates` can maintain results
differentially under general updates — plus complete evaluation as the
reference semantics.

SQL null semantics: aggregates ignore ``None`` inputs; ``COUNT(*)``
counts rows regardless.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError, QueryError
from repro.metrics import Metrics
from repro.relational.algebra import SPJQuery
from repro.relational.evaluate import Resolver, evaluate_spj
from repro.relational.expressions import ColumnRef
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


class Accumulator:
    """Incrementally maintained aggregate state."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def remove(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError


class SumAccumulator(Accumulator):
    """SUM: fully incremental in both directions."""

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def remove(self, value: Any) -> None:
        if value is None:
            return
        self.total -= value
        self.count -= 1

    def result(self) -> Any:
        return self.total if self.count else None

    def is_empty(self) -> bool:
        return self.count == 0


class CountAccumulator(Accumulator):
    """COUNT(expr) or COUNT(*) (``star=True`` counts nulls too)."""

    def __init__(self, star: bool = False) -> None:
        self.star = star
        self.value = 0
        self.rows = 0

    def add(self, value: Any) -> None:
        self.rows += 1
        if self.star or value is not None:
            self.value += 1

    def remove(self, value: Any) -> None:
        self.rows -= 1
        if self.star or value is not None:
            self.value -= 1

    def result(self) -> int:
        return self.value

    def is_empty(self) -> bool:
        return self.rows == 0


class AvgAccumulator(Accumulator):
    """AVG = SUM / COUNT over non-null inputs."""

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def remove(self, value: Any) -> None:
        if value is None:
            return
        self.total -= value
        self.count -= 1

    def result(self) -> Any:
        if not self.count:
            return None
        return self.total / self.count

    def is_empty(self) -> bool:
        return self.count == 0


class _ExtremumAccumulator(Accumulator):
    """Shared machinery for MIN/MAX.

    Deletion of a non-extremal value is O(1); deletion of the current
    extremum triggers a rescan of the distinct-value multiset. This is
    the classic non-distributive-aggregate trade-off; the differential
    layer surfaces it in the E5 benchmark.
    """

    def __init__(self, pick: Callable[[Any], Any]) -> None:
        self._counts: Dict[Any, int] = {}
        self._pick = pick
        self._cached: Any = None
        self._dirty = False

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._counts[value] = self._counts.get(value, 0) + 1
        if not self._dirty:
            if self._cached is None:
                self._cached = value
            else:
                self._cached = self._pick((self._cached, value))

    def remove(self, value: Any) -> None:
        if value is None:
            return
        count = self._counts.get(value, 0)
        if count <= 1:
            self._counts.pop(value, None)
            if value == self._cached:
                self._dirty = True
        else:
            self._counts[value] = count - 1

    def result(self) -> Any:
        if self._dirty:
            self._cached = self._pick(self._counts) if self._counts else None
            self._dirty = False
        return self._cached

    def is_empty(self) -> bool:
        return not self._counts


class MinAccumulator(_ExtremumAccumulator):
    def __init__(self) -> None:
        super().__init__(min)


class MaxAccumulator(_ExtremumAccumulator):
    def __init__(self) -> None:
        super().__init__(max)


_FACTORIES: Dict[str, Callable[[], Accumulator]] = {
    "SUM": SumAccumulator,
    "COUNT": CountAccumulator,
    "AVG": AvgAccumulator,
    "MIN": MinAccumulator,
    "MAX": MaxAccumulator,
}


class AggregateSpec:
    """One aggregate output column: FUNC(ref) AS name.

    ``ref`` is None for COUNT(*).
    """

    __slots__ = ("func", "ref", "name")

    def __init__(self, func: str, ref: Optional[ColumnRef], name: Optional[str] = None):
        func = func.upper()
        if func not in _FACTORIES:
            raise ExpressionError(f"unknown aggregate function {func!r}")
        if ref is None and func != "COUNT":
            raise ExpressionError(f"{func} requires a column argument")
        self.func = func
        self.ref = ref
        self.name = name or (
            f"{func.lower()}_{ref.name}" if ref is not None else "count"
        )

    def make_accumulator(self) -> Accumulator:
        if self.func == "COUNT" and self.ref is None:
            return CountAccumulator(star=True)
        return _FACTORIES[self.func]()

    def result_type(self, input_type: Optional[AttributeType]) -> AttributeType:
        if self.func == "COUNT":
            return AttributeType.INT
        if self.func == "AVG":
            return AttributeType.FLOAT
        if input_type is None:
            raise ExpressionError(f"{self.func} needs a typed input column")
        return input_type

    def __repr__(self) -> str:
        arg = "*" if self.ref is None else self.ref.to_sql()
        return f"AggregateSpec({self.func}({arg}) AS {self.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggregateSpec)
            and (self.func, self.ref, self.name)
            == (other.func, other.ref, other.name)
        )

    def __hash__(self) -> int:
        return hash((self.func, self.ref, self.name))


class AggregateQuery:
    """Aggregates (optionally grouped) over an SPJ core.

    The SPJ core's projection feeds the aggregate inputs; group keys and
    aggregate arguments are resolved against the core's *output* schema,
    so the core should project every column the aggregates mention (use
    projection=None / SELECT * to expose everything).
    """

    __slots__ = ("core", "aggregates", "group_by", "having")

    def __init__(
        self,
        core: SPJQuery,
        aggregates: Sequence[AggregateSpec],
        group_by: Sequence[ColumnRef] = (),
        having=None,
    ):
        if not aggregates:
            raise QueryError("an aggregate query needs at least one aggregate")
        self.core = core
        self.aggregates = tuple(aggregates)
        self.group_by = tuple(group_by)
        #: Optional predicate over the *output* schema (group columns
        #: and aggregate aliases), e.g. HAVING total > 100.
        self.having = having

    def to_sql(self) -> str:
        cols = [ref.to_sql() for ref in self.group_by]
        for spec in self.aggregates:
            arg = "*" if spec.ref is None else spec.ref.to_sql()
            cols.append(f"{spec.func}({arg}) AS {spec.name}")
        sql = self.core.to_sql()
        __, __, tail = sql.partition(" FROM ")
        out = f"SELECT {', '.join(cols)} FROM {tail}"
        if self.group_by:
            out += f" GROUP BY {', '.join(r.to_sql() for r in self.group_by)}"
        if self.having is not None:
            out += f" HAVING {self.having.to_sql()}"
        return out

    def __repr__(self) -> str:
        return f"AggregateQuery({self.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggregateQuery)
            and self.core == other.core
            and self.aggregates == other.aggregates
            and self.group_by == other.group_by
            and self.having == other.having
        )

    def __hash__(self) -> int:
        return hash((self.core, self.aggregates, self.group_by, self.having))

    def output_schema(self, core_schema: Schema) -> Schema:
        attrs: List[Attribute] = []
        for ref in self.group_by:
            attr = core_schema.attribute(ref.name)
            attrs.append(Attribute(ref.name, attr.type))
        for spec in self.aggregates:
            input_type = (
                core_schema.type_of(spec.ref.name) if spec.ref is not None else None
            )
            attrs.append(Attribute(spec.name, spec.result_type(input_type)))
        return Schema(attrs)


def evaluate_aggregate(
    query: AggregateQuery,
    resolver: Resolver,
    metrics: Optional[Metrics] = None,
) -> Relation:
    """Complete evaluation of an aggregate query (reference semantics).

    Global aggregates return exactly one row with tid ``()`` — even over
    an empty input (SUM/AVG/MIN/MAX are then null, counts zero). Grouped
    aggregates return one row per group, keyed by the group-value tuple.
    """
    rows = evaluate_spj(query.core, resolver, metrics)
    core_schema = rows.schema
    out_schema = query.output_schema(core_schema)

    group_positions = [core_schema.position(r.name) for r in query.group_by]
    arg_positions: List[Optional[int]] = [
        core_schema.position(s.ref.name) if s.ref is not None else None
        for s in query.aggregates
    ]

    groups: Dict[Tuple[Any, ...], List[Accumulator]] = {}
    for row in rows:
        key = tuple(row.values[p] for p in group_positions)
        accs = groups.get(key)
        if accs is None:
            accs = [spec.make_accumulator() for spec in query.aggregates]
            groups[key] = accs
        for acc, pos in zip(accs, arg_positions):
            acc.add(row.values[pos] if pos is not None else None)

    having = None
    if query.having is not None:
        from repro.relational.binding import SingleRowBinder

        having = query.having.compile(SingleRowBinder(out_schema))

    result = Relation(out_schema)
    if not query.group_by:
        accs = groups.get(
            (), [spec.make_accumulator() for spec in query.aggregates]
        )
        values = () + tuple(acc.result() for acc in accs)
        if having is None or having(values):
            result.add((), values)
        return result
    for key, accs in groups.items():
        values = key + tuple(acc.result() for acc in accs)
        if having is None or having(values):
            result.add(key, values)
    return result
