"""Predicate AST: boolean conditions over rows.

Predicates compile through the same :class:`~repro.relational.expressions.Binder`
machinery as scalar expressions. Comparison with ``None`` on either
side evaluates to False (three-valued logic collapsed to
"unknown-is-not-satisfied", which is what selection needs).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterator, List, Sequence, Tuple

from repro.errors import ExpressionError
from repro.relational.expressions import (
    Binder,
    ColumnRef,
    Expression,
    Literal,
    _lift,
)

CompiledPredicate = Callable[[Any], bool]

_COMPARE_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NEGATED = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

# Operator with operands exchanged: ``lit op col`` ≡ ``col swapped col``.
_SWAPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


# One conjunct of a specialized single-relation filter: the predicate
# holds iff values[position] is not None and op(values[position], const)
# for every conjunct. This is the flat form batch evaluators (the
# columnar kernels' probe filters) inline into comprehensions, avoiding
# one compiled-closure call per row.
FilterSpec = Tuple[Tuple[int, Callable[[Any, Any], bool], Any], ...]


def comparison_specs(pred: "Predicate", schema, alias=None):
    """Flatten ``pred`` into ``((position, op, constant), ...)`` specs.

    Succeeds only when every conjunct is a simple column-vs-literal
    comparison over ``schema`` (literal-vs-column is normalized by
    swapping the operator); returns ``None`` otherwise, and for
    null literals (whose compiled semantics — always False — are not
    expressible as an operator call). Null *values* keep their
    compiled semantics: callers must treat a None at ``position`` as
    not satisfying the conjunct.
    """
    specs = []
    for conj in pred.conjuncts():
        if not isinstance(conj, Comparison):
            return None
        left, right = conj.left, conj.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            ref, const, op = left, right.value, _COMPARE_OPS[conj.op]
        elif isinstance(left, Literal) and isinstance(right, ColumnRef):
            ref, const, op = right, left.value, _COMPARE_OPS[_SWAPPED[conj.op]]
        else:
            return None
        if ref.qualifier is not None and alias is not None and ref.qualifier != alias:
            return None
        if const is None or ref.name not in schema:
            return None
        specs.append((schema.position(ref.name), op, const))
    return tuple(specs)


class Predicate:
    """Base class for boolean conditions."""

    def compile(self, binder: Binder) -> CompiledPredicate:
        raise NotImplementedError

    def column_refs(self) -> Iterator[ColumnRef]:
        raise NotImplementedError

    def conjuncts(self) -> List["Predicate"]:
        """Flatten top-level ANDs into a conjunct list."""
        return [self]

    def to_sql(self) -> str:
        raise NotImplementedError

    def negate(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


class TruePredicate(Predicate):
    """Always satisfied; the identity element of conjunction."""

    def compile(self, binder: Binder) -> CompiledPredicate:
        return lambda env: True

    def column_refs(self) -> Iterator[ColumnRef]:
        return iter(())

    def conjuncts(self) -> List[Predicate]:
        return []

    def to_sql(self) -> str:
        return "TRUE"

    def negate(self) -> Predicate:
        return FalsePredicate()

    def _key(self):
        return ()


class FalsePredicate(Predicate):
    """Never satisfied."""

    def compile(self, binder: Binder) -> CompiledPredicate:
        return lambda env: False

    def column_refs(self) -> Iterator[ColumnRef]:
        return iter(())

    def to_sql(self) -> str:
        return "FALSE"

    def negate(self) -> Predicate:
        return TruePredicate()

    def _key(self):
        return ()


class Comparison(Predicate):
    """``left op right`` where op ∈ {=, !=, <, <=, >, >=}."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left, right):
        if op == "==":
            op = "="
        if op == "<>":
            op = "!="
        if op not in _COMPARE_OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left: Expression = _lift(left)
        self.right: Expression = _lift(right)

    def compile(self, binder: Binder) -> CompiledPredicate:
        self._check_types(binder)
        lfn = self.left.compile(binder)
        rfn = self.right.compile(binder)
        op = _COMPARE_OPS[self.op]

        def run(env: Any) -> bool:
            lval = lfn(env)
            rval = rfn(env)
            if lval is None or rval is None:
                return False
            return op(lval, rval)

        return run

    def _check_types(self, binder: Binder) -> None:
        """Reject comparisons that could never be satisfied sensibly.

        Numeric types compare with each other; otherwise both sides
        must have the same type. Unknown (None) types pass — nulls and
        schema-less binders stay permissive.
        """
        left = self.left.infer_type(binder)
        right = self.right.infer_type(binder)
        if left is None or right is None:
            return
        if left.is_numeric() and right.is_numeric():
            return
        if left != right:
            raise ExpressionError(
                f"cannot compare {left.value} with {right.value}: "
                f"{self.to_sql()}"
            )

    def column_refs(self) -> Iterator[ColumnRef]:
        yield from self.left.column_refs()
        yield from self.right.column_refs()

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"

    def negate(self) -> Predicate:
        # Note: this is classical negation; with None-is-False semantics
        # both a comparison and its negation reject null inputs.
        return Comparison(_NEGATED[self.op], self.left, self.right)

    def is_equijoin_pair(self) -> bool:
        """True if this is ``column = column`` (a candidate join edge)."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def _key(self):
        return (self.op, self.left, self.right)


class And(Predicate):
    """Conjunction of one or more predicates."""

    __slots__ = ("children",)

    def __init__(self, *children: Predicate):
        flattened: List[Predicate] = []
        for child in children:
            if not isinstance(child, Predicate):
                raise ExpressionError(f"And expects predicates, got {child!r}")
            if isinstance(child, And):
                flattened.extend(child.children)
            elif isinstance(child, TruePredicate):
                continue
            else:
                flattened.append(child)
        self.children = tuple(flattened)

    def compile(self, binder: Binder) -> CompiledPredicate:
        fns = [child.compile(binder) for child in self.children]

        def run(env: Any) -> bool:
            return all(fn(env) for fn in fns)

        return run

    def column_refs(self) -> Iterator[ColumnRef]:
        for child in self.children:
            yield from child.column_refs()

    def conjuncts(self) -> List[Predicate]:
        out: List[Predicate] = []
        for child in self.children:
            out.extend(child.conjuncts())
        return out

    def to_sql(self) -> str:
        if not self.children:
            return "TRUE"
        return " AND ".join(
            f"({c.to_sql()})" if isinstance(c, Or) else c.to_sql()
            for c in self.children
        )

    def _key(self):
        return self.children


class Or(Predicate):
    """Disjunction of one or more predicates."""

    __slots__ = ("children",)

    def __init__(self, *children: Predicate):
        flattened: List[Predicate] = []
        for child in children:
            if not isinstance(child, Predicate):
                raise ExpressionError(f"Or expects predicates, got {child!r}")
            if isinstance(child, Or):
                flattened.extend(child.children)
            else:
                flattened.append(child)
        self.children = tuple(flattened)

    def compile(self, binder: Binder) -> CompiledPredicate:
        fns = [child.compile(binder) for child in self.children]

        def run(env: Any) -> bool:
            return any(fn(env) for fn in fns)

        return run

    def column_refs(self) -> Iterator[ColumnRef]:
        for child in self.children:
            yield from child.column_refs()

    def to_sql(self) -> str:
        if not self.children:
            return "FALSE"
        return " OR ".join(c.to_sql() for c in self.children)

    def _key(self):
        return self.children


class Not(Predicate):
    """Negation. With None-is-False leaf semantics, ``Not(p)`` holds
    whenever ``p`` evaluates to False, including on null inputs."""

    __slots__ = ("child",)

    def __init__(self, child: Predicate):
        self.child = child

    def compile(self, binder: Binder) -> CompiledPredicate:
        fn = self.child.compile(binder)
        return lambda env: not fn(env)

    def column_refs(self) -> Iterator[ColumnRef]:
        yield from self.child.column_refs()

    def to_sql(self) -> str:
        return f"NOT ({self.child.to_sql()})"

    def negate(self) -> Predicate:
        return self.child

    def _key(self):
        return (self.child,)


def conjunction(conjuncts: Sequence[Predicate]) -> Predicate:
    """Build the conjunction of a (possibly empty) conjunct list."""
    conjuncts = [c for c in conjuncts if not isinstance(c, TruePredicate)]
    if not conjuncts:
        return TruePredicate()
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(*conjuncts)


def eq(left, right) -> Comparison:
    return Comparison("=", left, right)


def ne(left, right) -> Comparison:
    return Comparison("!=", left, right)


def lt(left, right) -> Comparison:
    return Comparison("<", left, right)


def le(left, right) -> Comparison:
    return Comparison("<=", left, right)


def gt(left, right) -> Comparison:
    return Comparison(">", left, right)


def ge(left, right) -> Comparison:
    return Comparison(">=", left, right)
