"""Complete (from-scratch) query evaluation.

This module is the *reference semantics* of the engine: it evaluates a
query against full base relations. The differential machinery in
:mod:`repro.dra` is validated against it — the paper's claim that DRA
is "functionally equivalent to the complete re-evaluation solution"
becomes an executable property test.

The SPJ evaluator performs local-predicate pushdown and hash equi-joins
driven by the :mod:`repro.relational.planning` decomposition, with a
greedy smallest-relation-first join order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError, SchemaError
from repro.metrics import Metrics
from repro.relational.algebra import (
    AlgebraNode,
    Difference,
    Join,
    Project,
    Scan,
    Select,
    SPJQuery,
    Union,
)
from repro.relational.binding import EnvBinder, SingleRowBinder
from repro.relational.expressions import ColumnRef
from repro.relational.planning import PredicatePlan, plan_predicate
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

# Resolves a table name to its current contents.
Resolver = Callable[[str], Relation]


def scopes_for(query: SPJQuery, resolver: Resolver) -> Dict[str, Schema]:
    """Map each alias of the query to its relation's schema."""
    return {ref.alias: resolver(ref.table).schema for ref in query.relations}


def expand_star(query: SPJQuery, scopes: Dict[str, Schema]):
    """The effective projection list: explicit columns or SELECT *.

    For SELECT * the output is every attribute of every relation in
    relation order; names that collide across relations are prefixed
    with their alias (``alias_name``).
    """
    from repro.relational.algebra import OutputColumn

    if query.projection is not None:
        return list(query.projection)
    counts: Dict[str, int] = {}
    for alias in query.aliases:
        for attr in scopes[alias]:
            counts[attr.name] = counts.get(attr.name, 0) + 1
    out = []
    for alias in query.aliases:
        for attr in scopes[alias]:
            name = attr.name if counts[attr.name] == 1 else f"{alias}_{attr.name}"
            out.append(OutputColumn(ColumnRef(attr.name, alias), name))
    return out


def spj_output_schema(query: SPJQuery, scopes: Dict[str, Schema]) -> Schema:
    """The result schema of an SPJ query (after projection)."""
    binder = EnvBinder(scopes)
    attrs = []
    seen: Set[str] = set()
    for column in expand_star(query, scopes):
        if column.name in seen:
            raise SchemaError(
                f"duplicate output column {column.name!r}; use AS to rename"
            )
        seen.add(column.name)
        alias, pos = binder.resolve(column.ref)
        attrs.append(Attribute(column.name, scopes[alias].attributes[pos].type))
    return Schema(attrs)


def compile_projection(
    query: SPJQuery, scopes: Dict[str, Schema]
) -> Callable[[Dict[str, tuple]], tuple]:
    """Compile the projection into env({alias: values}) -> output tuple."""
    binder = EnvBinder(scopes)
    accessors = [
        column.ref.compile(binder) for column in expand_star(query, scopes)
    ]

    def project(env: Dict[str, tuple]) -> tuple:
        return tuple(fn(env) for fn in accessors)

    return project


def composite_tid(tids: Dict[str, object], aliases: Sequence[str]):
    """Result tid: the base tid itself for one relation, else a tuple in
    relation order — the layout DRA must reproduce exactly."""
    if len(aliases) == 1:
        return tids[aliases[0]]
    return tuple(tids[alias] for alias in aliases)


def evaluate_spj(
    query: SPJQuery,
    resolver: Resolver,
    metrics: Optional[Metrics] = None,
) -> Relation:
    """Evaluate an SPJ query over full base relations."""
    scopes = scopes_for(query, resolver)
    plan = plan_predicate(query.predicate, scopes, metrics)

    # Constant conjuncts gate the whole query.
    out_schema = spj_output_schema(query, scopes)
    for pred, aliases in plan.residual:
        if not aliases:
            if not pred.compile(EnvBinder({}))({}):
                return Relation(out_schema)

    # Scan + local filter each operand.
    filtered: Dict[str, Relation] = {}
    for ref in query.relations:
        rel = resolver(ref.table)
        if metrics:
            metrics.count(Metrics.ROWS_SCANNED, len(rel))
        local = plan.local_predicate(ref.alias)
        compiled = local.compile(SingleRowBinder(rel.schema, ref.alias))
        filtered[ref.alias] = rel.select(compiled)

    partials = _join_all(query.aliases, filtered, plan, metrics)

    project = compile_projection(query, scopes)
    result = Relation(out_schema)
    aliases = query.aliases
    for tids, vals in partials:
        result.add(composite_tid(tids, aliases), project(vals))
    if metrics:
        metrics.count(Metrics.ROWS_EMITTED, len(result))
    return result


def _join_all(
    aliases: Sequence[str],
    filtered: Dict[str, Relation],
    plan: PredicatePlan,
    metrics: Optional[Metrics],
) -> List[Tuple[Dict[str, object], Dict[str, tuple]]]:
    """Greedy hash-join of all operands; returns (tids, values) partials."""
    remaining = list(aliases)
    remaining.sort(key=lambda a: len(filtered[a]))
    first = remaining.pop(0)

    partials: List[Tuple[Dict[str, object], Dict[str, tuple]]] = [
        ({first: row.tid}, {first: row.values}) for row in filtered[first]
    ]
    bound: Set[str] = {first}
    applied: Set[int] = set()
    binder = EnvBinder(plan.scopes)

    partials = _apply_residuals(partials, plan, bound, applied, binder)

    while remaining:
        # Prefer an alias connected to the bound set by a join edge.
        next_alias = None
        for candidate in remaining:
            if plan.edges_between(bound, candidate):
                next_alias = candidate
                break
        if next_alias is None:
            next_alias = remaining[0]  # cartesian fallback
        remaining.remove(next_alias)

        edges = plan.edges_between(bound, next_alias)
        rel = filtered[next_alias]
        new_partials: List[Tuple[Dict[str, object], Dict[str, tuple]]] = []

        if edges:
            probe_positions = tuple(e.position_for(next_alias) for e in edges)
            index: Dict[tuple, list] = {}
            for row in rel:
                key = tuple(row.values[p] for p in probe_positions)
                index.setdefault(key, []).append(row)
            for tids, vals in partials:
                key = tuple(
                    vals[e.other(next_alias)][e.position_for(e.other(next_alias))]
                    for e in edges
                )
                if metrics:
                    metrics.count(Metrics.INDEX_PROBES)
                for row in index.get(key, ()):
                    new_tids = dict(tids)
                    new_tids[next_alias] = row.tid
                    new_vals = dict(vals)
                    new_vals[next_alias] = row.values
                    new_partials.append((new_tids, new_vals))
        else:
            rows = list(rel)
            for tids, vals in partials:
                for row in rows:
                    new_tids = dict(tids)
                    new_tids[next_alias] = row.tid
                    new_vals = dict(vals)
                    new_vals[next_alias] = row.values
                    new_partials.append((new_tids, new_vals))

        bound.add(next_alias)
        partials = _apply_residuals(new_partials, plan, bound, applied, binder)

    return partials


def _apply_residuals(
    partials: List[Tuple[Dict[str, object], Dict[str, tuple]]],
    plan: PredicatePlan,
    bound: Set[str],
    applied: Set[int],
    binder: EnvBinder,
) -> List[Tuple[Dict[str, object], Dict[str, tuple]]]:
    ready = plan.residual_ready(bound, applied)
    for index, pred in ready:
        if not list(pred.column_refs()):  # constant; handled by caller
            applied.add(index)
            continue
        compiled = pred.compile(binder)
        partials = [
            (tids, vals) for tids, vals in partials if compiled(vals)
        ]
        applied.add(index)
    return partials


def evaluate_algebra(
    node: AlgebraNode,
    resolver: Resolver,
    metrics: Optional[Metrics] = None,
) -> Relation:
    """Recursively evaluate a general algebra tree.

    Used for Union/Difference queries and in tests; SPJ-shaped trees
    are better served by :func:`evaluate_spj` via
    :func:`repro.relational.algebra.normalize`.
    """
    if isinstance(node, Scan):
        rel = resolver(node.table)
        if metrics:
            metrics.count(Metrics.ROWS_SCANNED, len(rel))
        return rel
    if isinstance(node, Select):
        child = evaluate_algebra(node.child, resolver, metrics)
        compiled = node.predicate.compile(SingleRowBinder(child.schema))
        return child.select(compiled)
    if isinstance(node, Project):
        child = evaluate_algebra(node.child, resolver, metrics)
        names = []
        out_names = []
        for ref, out in node.columns:
            names.append(ref.name)
            out_names.append(out or ref.name)
        projected = child.project(names)
        renamed_schema = Schema(
            Attribute(out_name, attr.type)
            for out_name, attr in zip(out_names, projected.schema)
        )
        result = Relation(renamed_schema)
        for row in projected:
            result.add(row.tid, row.values)
        return result
    if isinstance(node, Join):
        left = evaluate_algebra(node.left, resolver, metrics)
        right = evaluate_algebra(node.right, resolver, metrics)
        joint_schema = left.schema.concat(right.schema)
        compiled = node.condition.compile(SingleRowBinder(joint_schema))
        return left.join(
            right, lambda lv, rv: compiled(lv + rv)
        )
    if isinstance(node, Union):
        left = evaluate_algebra(node.left, resolver, metrics)
        right = evaluate_algebra(node.right, resolver, metrics)
        return left.union(right)
    if isinstance(node, Difference):
        left = evaluate_algebra(node.left, resolver, metrics)
        right = evaluate_algebra(node.right, resolver, metrics)
        return left.difference(right)
    raise QueryError(f"unknown algebra node {node!r}")
