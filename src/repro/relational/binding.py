"""Binders: resolve column references to runtime accessors.

Two environments exist in the engine:

* single-relation evaluation — the environment is the row's values
  tuple itself (:class:`SingleRowBinder`);
* multi-relation (join) evaluation — the environment is a dict mapping
  relation aliases to values tuples (:class:`EnvBinder`).

Both binders perform full name resolution at compile time, so runtime
row evaluation is just tuple indexing.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import AmbiguousAttributeError, UnknownAttributeError
from repro.relational.expressions import Binder, ColumnRef, Compiled
from repro.relational.schema import Schema


class SingleRowBinder(Binder):
    """Binds refs against one schema; environment = values tuple."""

    def __init__(self, schema: Schema, alias: Optional[str] = None):
        self.schema = schema
        self.alias = alias

    def accessor(self, ref: ColumnRef) -> Compiled:
        if ref.qualifier is not None and ref.qualifier != self.alias:
            raise UnknownAttributeError(
                f"qualifier {ref.qualifier!r} does not match relation "
                f"alias {self.alias!r}"
            )
        position = self.schema.position(ref.name)
        return lambda values: values[position]

    def type_of(self, ref: ColumnRef):
        if ref.qualifier is not None and ref.qualifier != self.alias:
            raise UnknownAttributeError(
                f"qualifier {ref.qualifier!r} does not match relation "
                f"alias {self.alias!r}"
            )
        return self.schema.type_of(ref.name)


class EnvBinder(Binder):
    """Binds refs against several aliased schemas.

    The environment is ``{alias: values_tuple}``. Unqualified names
    resolve if they occur in exactly one scope; otherwise they are
    ambiguous and must be qualified.
    """

    def __init__(self, scopes: Mapping[str, Schema]):
        self.scopes: Dict[str, Schema] = dict(scopes)

    def resolve(self, ref: ColumnRef) -> Tuple[str, int]:
        """Return (alias, position) for a reference, or raise."""
        if ref.qualifier is not None:
            if ref.qualifier not in self.scopes:
                raise UnknownAttributeError(
                    f"unknown relation alias {ref.qualifier!r}; "
                    f"in scope: {sorted(self.scopes)}"
                )
            return ref.qualifier, self.scopes[ref.qualifier].position(ref.name)
        matches = [
            alias for alias, schema in self.scopes.items() if ref.name in schema
        ]
        if not matches:
            raise UnknownAttributeError(
                f"no attribute {ref.name!r} in any relation in scope "
                f"({sorted(self.scopes)})"
            )
        if len(matches) > 1:
            raise AmbiguousAttributeError(
                f"attribute {ref.name!r} is ambiguous across {sorted(matches)}; "
                "qualify it"
            )
        alias = matches[0]
        return alias, self.scopes[alias].position(ref.name)

    def accessor(self, ref: ColumnRef) -> Compiled:
        alias, position = self.resolve(ref)
        return lambda env: env[alias][position]

    def type_of(self, ref: ColumnRef):
        alias, position = self.resolve(ref)
        return self.scopes[alias].attributes[position].type


def qualifiers_used(
    refs, scopes: Mapping[str, Schema]
) -> "set[str]":
    """The set of relation aliases a collection of refs resolves to."""
    binder = EnvBinder(scopes)
    return {binder.resolve(ref)[0] for ref in refs}
