"""Relational-algebra query trees and the SPJ normal form.

The paper's DRA (Algorithm 1) is defined over queries in SPJ normal
form ``π_X(σ_F(R_1 ⋈ R_2 ⋈ ... ⋈ R_n))``. General algebra trees built
from :class:`Scan`, :class:`Select`, :class:`Project` and :class:`Join`
are normalized into :class:`SPJQuery` by :func:`normalize`;
:class:`Union` and :class:`Difference` are supported by the complete
evaluator but are outside the SPJ fragment DRA re-evaluates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import QueryError, UnsupportedQueryError
from repro.relational.expressions import ColumnRef
from repro.relational.predicates import Predicate, TruePredicate, conjunction


class AlgebraNode:
    """Base class for algebra tree nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_sql()})"


class Scan(AlgebraNode):
    """A base-table scan, optionally aliased."""

    __slots__ = ("table", "alias")

    def __init__(self, table: str, alias: Optional[str] = None):
        self.table = table
        self.alias = alias or table

    def to_sql(self) -> str:
        if self.alias != self.table:
            return f"{self.table} AS {self.alias}"
        return self.table


class Select(AlgebraNode):
    """σ: filter the child by a predicate."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: AlgebraNode, predicate: Predicate):
        self.child = child
        self.predicate = predicate

    def to_sql(self) -> str:
        return f"σ[{self.predicate.to_sql()}]({self.child.to_sql()})"


class Project(AlgebraNode):
    """π: keep only the named columns.

    ``columns`` is a sequence of (ref, output_name) pairs; output_name
    may be None to reuse the referenced attribute name.
    """

    __slots__ = ("child", "columns")

    def __init__(
        self,
        child: AlgebraNode,
        columns: Sequence[Tuple[ColumnRef, Optional[str]]],
    ):
        self.child = child
        self.columns = tuple(
            (ref, out_name) for ref, out_name in columns
        )

    def to_sql(self) -> str:
        cols = ", ".join(
            f"{ref.to_sql()} AS {out}" if out and out != ref.name else ref.to_sql()
            for ref, out in self.columns
        )
        return f"π[{cols}]({self.child.to_sql()})"


class Join(AlgebraNode):
    """⋈: theta join of two subtrees."""

    __slots__ = ("left", "right", "condition")

    def __init__(
        self,
        left: AlgebraNode,
        right: AlgebraNode,
        condition: Predicate = TruePredicate(),
    ):
        self.left = left
        self.right = right
        self.condition = condition

    def to_sql(self) -> str:
        return (
            f"({self.left.to_sql()} ⋈[{self.condition.to_sql()}] "
            f"{self.right.to_sql()})"
        )


class Union(AlgebraNode):
    """∪ of two union-compatible subtrees (tid-keyed)."""

    __slots__ = ("left", "right")

    def __init__(self, left: AlgebraNode, right: AlgebraNode):
        self.left = left
        self.right = right

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} ∪ {self.right.to_sql()})"


class Difference(AlgebraNode):
    """− of two union-compatible subtrees (tid-keyed)."""

    __slots__ = ("left", "right")

    def __init__(self, left: AlgebraNode, right: AlgebraNode):
        self.left = left
        self.right = right

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} − {self.right.to_sql()})"


class RelationRef:
    """An operand relation of an SPJ query: a table name plus alias."""

    __slots__ = ("alias", "table")

    def __init__(self, table: str, alias: Optional[str] = None):
        self.table = table
        self.alias = alias or table

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationRef)
            and self.table == other.table
            and self.alias == other.alias
        )

    def __hash__(self) -> int:
        return hash((self.table, self.alias))

    def __repr__(self) -> str:
        if self.alias != self.table:
            return f"RelationRef({self.table!r} AS {self.alias!r})"
        return f"RelationRef({self.table!r})"


class OutputColumn:
    """One projected output column: a source ref and an output name."""

    __slots__ = ("ref", "name")

    def __init__(self, ref: ColumnRef, name: Optional[str] = None):
        self.ref = ref
        self.name = name or ref.name

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OutputColumn)
            and self.ref == other.ref
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.ref, self.name))

    def __repr__(self) -> str:
        return f"OutputColumn({self.ref.to_sql()} AS {self.name})"


class SPJQuery:
    """A query in SPJ normal form: π_X(σ_F(R_1 ⋈ ... ⋈ R_n)).

    * ``relations`` — the operand relations, in join order. The order
      also fixes the layout of composite result tids.
    * ``predicate`` — the full selection/join condition F (a
      conjunction; join conditions live here too, as the paper's
      normal form prescribes).
    * ``projection`` — output columns, or None for SELECT *.
    """

    __slots__ = ("relations", "predicate", "projection")

    def __init__(
        self,
        relations: Sequence[RelationRef],
        predicate: Predicate = TruePredicate(),
        projection: Optional[Sequence[OutputColumn]] = None,
    ):
        relations = tuple(relations)
        if not relations:
            raise QueryError("an SPJ query needs at least one relation")
        aliases = [r.alias for r in relations]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate relation aliases in {aliases}")
        self.relations = relations
        self.predicate = predicate
        self.projection = tuple(projection) if projection is not None else None

    @property
    def aliases(self) -> Tuple[str, ...]:
        return tuple(r.alias for r in self.relations)

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(r.table for r in self.relations)

    def alias_for_table(self, table: str) -> List[str]:
        return [r.alias for r in self.relations if r.table == table]

    def is_single_relation(self) -> bool:
        return len(self.relations) == 1

    def to_sql(self) -> str:
        if self.projection is None:
            cols = "*"
        else:
            cols = ", ".join(
                f"{c.ref.to_sql()} AS {c.name}"
                if c.name != c.ref.name
                else c.ref.to_sql()
                for c in self.projection
            )
        tables = ", ".join(
            f"{r.table} AS {r.alias}" if r.alias != r.table else r.table
            for r in self.relations
        )
        sql = f"SELECT {cols} FROM {tables}"
        if not isinstance(self.predicate, TruePredicate):
            sql += f" WHERE {self.predicate.to_sql()}"
        return sql

    def __repr__(self) -> str:
        return f"SPJQuery({self.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SPJQuery)
            and self.relations == other.relations
            and self.predicate == other.predicate
            and self.projection == other.projection
        )

    def __hash__(self) -> int:
        return hash((self.relations, self.predicate, self.projection))


def normalize(node: AlgebraNode) -> SPJQuery:
    """Convert an SPJ-shaped algebra tree into :class:`SPJQuery`.

    Accepts any tree of Scan/Select/Join nodes with at most one Project
    on top. Union/Difference (and Projects below Selects/Joins) are
    outside the normal form and raise :class:`UnsupportedQueryError`.
    """
    projection: Optional[List[OutputColumn]] = None
    if isinstance(node, Project):
        projection = [OutputColumn(ref, out) for ref, out in node.columns]
        node = node.child

    relations: List[RelationRef] = []
    conjuncts: List[Predicate] = []
    _collect(node, relations, conjuncts)
    return SPJQuery(relations, conjunction(conjuncts), projection)


def _collect(
    node: AlgebraNode,
    relations: List[RelationRef],
    conjuncts: List[Predicate],
) -> None:
    if isinstance(node, Scan):
        relations.append(RelationRef(node.table, node.alias))
    elif isinstance(node, Select):
        conjuncts.extend(node.predicate.conjuncts())
        _collect(node.child, relations, conjuncts)
    elif isinstance(node, Join):
        _collect(node.left, relations, conjuncts)
        _collect(node.right, relations, conjuncts)
        conjuncts.extend(node.condition.conjuncts())
    elif isinstance(node, Project):
        raise UnsupportedQueryError(
            "Project below Select/Join is outside SPJ normal form"
        )
    elif isinstance(node, (Union, Difference)):
        raise UnsupportedQueryError(
            f"{type(node).__name__} is outside the SPJ fragment handled by DRA"
        )
    else:
        raise QueryError(f"unknown algebra node {node!r}")
