"""Heuristic query refinement (paper Section 5.2).

The paper suggests "Select before Join, extracting common
subexpressions, cheaper selection predicates before expensive ones" as
the no-optimizer-available strategy. Selection pushdown and hash-join
ordering live in the evaluator/DRA planning; this module supplies the
remaining heuristics:

* :func:`predicate_cost` — a syntactic cost estimate for one conjunct;
* :func:`order_conjuncts` — cheapest-first conjunct ordering, so the
  compiled ``And`` short-circuits on inexpensive tests;
* :func:`refine` — apply conjunct ordering to an SPJ query;
* :func:`explain` — a human-readable plan, used by examples and docs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.relational.algebra import SPJQuery
from repro.relational.expressions import (
    Abs,
    Arithmetic,
    ColumnRef,
    Expression,
    Literal,
    Negate,
)
from repro.relational.planning import plan_predicate
from repro.relational.predicates import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    conjunction,
)
from repro.relational.schema import Schema


def expression_cost(expr: Expression) -> int:
    """Syntactic cost of evaluating one scalar expression."""
    if isinstance(expr, Literal):
        return 0
    if isinstance(expr, ColumnRef):
        return 1
    if isinstance(expr, (Abs, Negate)):
        return 2 + expression_cost(expr.operand)
    if isinstance(expr, Arithmetic):
        return 2 + expression_cost(expr.left) + expression_cost(expr.right)
    return 5


def predicate_cost(pred: Predicate) -> int:
    """Syntactic cost of evaluating one predicate."""
    if isinstance(pred, Comparison):
        return 1 + expression_cost(pred.left) + expression_cost(pred.right)
    if isinstance(pred, Not):
        return 1 + predicate_cost(pred.child)
    if isinstance(pred, (And, Or)):
        return 1 + sum(predicate_cost(c) for c in pred.children)
    return 1


def order_conjuncts(pred: Predicate) -> Predicate:
    """Reorder top-level conjuncts cheapest-first.

    Equality comparisons against literals sort before range tests of
    equal cost, since they tend to be more selective.
    """

    def sort_key(conjunct: Predicate):
        is_literal_eq = (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and (
                isinstance(conjunct.left, Literal)
                or isinstance(conjunct.right, Literal)
            )
        )
        return (predicate_cost(conjunct), 0 if is_literal_eq else 1)

    conjuncts = pred.conjuncts()
    if len(conjuncts) <= 1:
        return pred
    return conjunction(sorted(conjuncts, key=sort_key))


def refine(query: SPJQuery) -> SPJQuery:
    """Return an equivalent query with heuristically ordered conjuncts."""
    return SPJQuery(query.relations, order_conjuncts(query.predicate), query.projection)


def explain(query: SPJQuery, scopes: Dict[str, Schema]) -> str:
    """Render the predicate decomposition as a textual plan."""
    plan = plan_predicate(query.predicate, scopes)
    lines: List[str] = [f"SPJ query: {query.to_sql()}", "operands:"]
    for ref in query.relations:
        local = plan.local_predicate(ref.alias)
        lines.append(f"  scan {ref.table} AS {ref.alias}  σ[{local.to_sql()}]")
    if plan.edges:
        lines.append("join edges (hash):")
        for edge in plan.edges:
            lines.append(f"  {edge.conjunct.to_sql()}")
    if plan.residual:
        lines.append("residual predicates:")
        for pred, aliases in plan.residual:
            scope = ",".join(sorted(aliases)) if aliases else "<const>"
            lines.append(f"  [{scope}] {pred.to_sql()}")
    if query.projection is None:
        lines.append("project: *")
    else:
        cols = ", ".join(c.name for c in query.projection)
        lines.append(f"project: {cols}")
    return "\n".join(lines)
