"""Shared predicate analysis for the evaluator and for DRA.

Both complete evaluation and differential term evaluation need the same
decomposition of an SPJ predicate F:

* *local* conjuncts that touch a single relation (pushed down to
  scans/delta seeds — the "Select before Join" heuristic the paper
  recommends in Section 5.2);
* *equi-join edges* of the form ``a.x = b.y`` (drive hash joins and
  index probes);
* *residual* conjuncts spanning several relations that are not simple
  column equalities (applied once all their relations are bound).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.metrics import Metrics
from repro.relational.binding import EnvBinder
from repro.relational.predicates import (
    Comparison,
    Predicate,
    conjunction,
)
from repro.relational.schema import Schema


def _check_edge_types(conjunct, scopes, la, lp, ra, rp) -> None:
    """Join keys must be type-compatible or the join can never match."""
    from repro.errors import ExpressionError

    left = scopes[la].attributes[lp].type
    right = scopes[ra].attributes[rp].type
    if left == right:
        return
    if left.is_numeric() and right.is_numeric():
        return
    raise ExpressionError(
        f"join condition {conjunct.to_sql()} compares "
        f"{left.value} with {right.value}"
    )


class JoinEdge:
    """An equi-join conjunct ``left_alias.left_pos = right_alias.right_pos``."""

    __slots__ = ("left_alias", "left_pos", "right_alias", "right_pos", "conjunct")

    def __init__(
        self,
        left_alias: str,
        left_pos: int,
        right_alias: str,
        right_pos: int,
        conjunct: Predicate,
    ):
        self.left_alias = left_alias
        self.left_pos = left_pos
        self.right_alias = right_alias
        self.right_pos = right_pos
        self.conjunct = conjunct

    def other(self, alias: str) -> str:
        return self.right_alias if alias == self.left_alias else self.left_alias

    def position_for(self, alias: str) -> int:
        return self.left_pos if alias == self.left_alias else self.right_pos

    def touches(self, alias: str) -> bool:
        return alias in (self.left_alias, self.right_alias)

    def __repr__(self) -> str:
        return (
            f"JoinEdge({self.left_alias}[{self.left_pos}] = "
            f"{self.right_alias}[{self.right_pos}])"
        )


class PredicatePlan:
    """The decomposition of an SPJ predicate against a set of scopes."""

    __slots__ = ("scopes", "local", "edges", "residual")

    def __init__(
        self,
        scopes: Mapping[str, Schema],
        local: Dict[str, List[Predicate]],
        edges: List[JoinEdge],
        residual: List[Tuple[Predicate, Set[str]]],
    ):
        self.scopes = dict(scopes)
        self.local = local
        self.edges = edges
        self.residual = residual

    def local_predicate(self, alias: str) -> Predicate:
        """The conjunction of single-relation conjuncts for ``alias``."""
        return conjunction(self.local.get(alias, []))

    def edges_between(self, bound: Set[str], alias: str) -> List[JoinEdge]:
        """Join edges connecting already-bound aliases to ``alias``."""
        return [
            e
            for e in self.edges
            if e.touches(alias) and e.other(alias) in bound
        ]

    def edges_for(self, alias: str) -> List[JoinEdge]:
        return [e for e in self.edges if e.touches(alias)]

    def residual_ready(
        self, bound: Set[str], already_applied: Set[int]
    ) -> List[Tuple[int, Predicate]]:
        """Residual conjuncts whose aliases are all bound and not yet applied."""
        out = []
        for i, (pred, aliases) in enumerate(self.residual):
            if i not in already_applied and aliases <= bound:
                out.append((i, pred))
        return out


# Total plan_predicate invocations since import. Prepared-plan smoke
# checks read this to prove planning work amortizes to zero per
# refresh; it is a plain counter, exact only under single-threaded use.
plan_calls = 0


def plan_predicate(
    predicate: Predicate,
    scopes: Mapping[str, Schema],
    metrics: Optional[Metrics] = None,
) -> PredicatePlan:
    """Decompose ``predicate`` into local / join-edge / residual parts."""
    global plan_calls
    plan_calls += 1
    if metrics:
        metrics.count(Metrics.PREDICATE_PLANS)
    binder = EnvBinder(scopes)
    local: Dict[str, List[Predicate]] = {alias: [] for alias in scopes}
    edges: List[JoinEdge] = []
    residual: List[Tuple[Predicate, Set[str]]] = []

    for conjunct in predicate.conjuncts():
        resolved = [binder.resolve(ref) for ref in conjunct.column_refs()]
        aliases = {alias for alias, __ in resolved}
        if len(aliases) == 0:
            # Constant conjunct (for instance TRUE < 1 via literals):
            # treat as residual over no relations; it gates everything.
            residual.append((conjunct, set()))
        elif len(aliases) == 1:
            local[next(iter(aliases))].append(conjunct)
        elif (
            len(aliases) == 2
            and isinstance(conjunct, Comparison)
            and conjunct.is_equijoin_pair()
        ):
            (la, lp), (ra, rp) = resolved
            _check_edge_types(conjunct, scopes, la, lp, ra, rp)
            edges.append(JoinEdge(la, lp, ra, rp, conjunct))
        else:
            residual.append((conjunct, aliases))
    return PredicatePlan(scopes, local, edges, residual)
