"""Relations: tid-keyed collections of typed rows.

Every row in this engine carries a *tuple identifier* (tid). Base
tables assign integer tids; derived relations (joins) carry composite
tids — tuples of their operands' tids — and projections keep the tid of
the row they were derived from. Tids are what make differential
relations (paper Section 4.1) unambiguous: "no tid can appear in
multiple rows".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, Tuple

from repro.errors import SchemaError
from repro.relational.schema import Schema

# A tid is an int for base rows or a nested tuple of tids for join rows.
Tid = Hashable
Values = Tuple[Any, ...]


class Row:
    """A (tid, values) pair. Values align positionally with the schema."""

    __slots__ = ("tid", "values")

    def __init__(self, tid: Tid, values: Values):
        self.tid = tid
        self.values = values

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Row)
            and self.tid == other.tid
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.tid, self.values))

    def __repr__(self) -> str:
        return f"Row(tid={self.tid!r}, {self.values!r})"


class Relation:
    """A mutable, tid-keyed relation instance.

    The relational-algebra convenience methods (:meth:`select`,
    :meth:`project`, ...) implement *complete* evaluation semantics;
    they are the executable specification that the differential
    machinery in :mod:`repro.dra` is tested against.
    """

    __slots__ = ("schema", "_rows")

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()):
        self.schema = schema
        self._rows: Dict[Tid, Values] = {}
        for row in rows:
            self.add(row.tid, row.values)

    @classmethod
    def from_pairs(cls, schema: Schema, pairs: Iterable[Tuple[Tid, Values]]) -> "Relation":
        rel = cls(schema)
        for tid, values in pairs:
            rel.add(tid, values)
        return rel

    # -- basic container protocol -------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        for tid, values in self._rows.items():
            yield Row(tid, values)

    def __contains__(self, tid: Tid) -> bool:
        return tid in self._rows

    def __eq__(self, other: object) -> bool:
        """Content equality: same schema types and the same tid->values map."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema.union_compatible(other.schema)
            and self._rows == other._rows
        )

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self)} rows)"

    def get(self, tid: Tid) -> Values:
        return self._rows[tid]

    def get_or_none(self, tid: Tid):
        return self._rows.get(tid)

    def rows_map(self) -> Dict[Tid, Values]:
        """The internal tid→values mapping, for batch readers (the
        columnar kernels' bulk probes). Callers must treat it as
        read-only; mutations go through :meth:`add`/:meth:`remove`."""
        return self._rows

    def tids(self) -> Iterator[Tid]:
        return iter(self._rows.keys())

    def values_set(self) -> set:
        """The set of value tuples, ignoring tids (for value semantics)."""
        return set(self._rows.values())

    def add(self, tid: Tid, values: Values) -> None:
        """Insert or overwrite the row identified by ``tid``."""
        self._rows[tid] = self.schema.validate_row(values)

    def remove(self, tid: Tid) -> None:
        del self._rows[tid]

    def discard(self, tid: Tid) -> None:
        self._rows.pop(tid, None)

    def copy(self) -> "Relation":
        out = Relation(self.schema)
        out._rows = dict(self._rows)
        return out

    # -- complete relational-algebra operations -----------------------

    def select(self, predicate: Callable[[Values], bool]) -> "Relation":
        """σ: rows whose values satisfy ``predicate`` (a compiled fn)."""
        out = Relation(self.schema)
        out._rows = {
            tid: values for tid, values in self._rows.items() if predicate(values)
        }
        return out

    def project(self, names: Iterable[str]) -> "Relation":
        """π: keep only ``names``; tids are preserved as provenance.

        Because tids survive projection, duplicate value-tuples remain
        distinct rows; use :meth:`distinct_values` for pure set
        semantics on values.
        """
        names = tuple(names)
        positions = [self.schema.position(n) for n in names]
        out = Relation(self.schema.project(names))
        out._rows = {
            tid: tuple(values[p] for p in positions)
            for tid, values in self._rows.items()
        }
        return out

    def distinct_values(self) -> "Relation":
        """Collapse rows with equal values to one row keyed by values."""
        out = Relation(self.schema)
        seen = {}
        for tid, values in self._rows.items():
            if values not in seen:
                seen[values] = tid
        out._rows = {tid: values for values, tid in seen.items()}
        return out

    def join(
        self,
        other: "Relation",
        condition: Callable[[Values, Values], bool],
    ) -> "Relation":
        """⋈: nested-loop theta join; result tids are (left, right) pairs."""
        out = Relation(self.schema.concat(other.schema))
        rows: Dict[Tid, Values] = {}
        for ltid, lvalues in self._rows.items():
            for rtid, rvalues in other._rows.items():
                if condition(lvalues, rvalues):
                    rows[(ltid, rtid)] = lvalues + rvalues
        out._rows = rows
        return out

    def equijoin(
        self,
        other: "Relation",
        left_positions: Tuple[int, ...],
        right_positions: Tuple[int, ...],
    ) -> "Relation":
        """⋈: hash equi-join on positional key columns."""
        index: Dict[Values, list] = {}
        for rtid, rvalues in other._rows.items():
            key = tuple(rvalues[p] for p in right_positions)
            index.setdefault(key, []).append((rtid, rvalues))
        out = Relation(self.schema.concat(other.schema))
        rows: Dict[Tid, Values] = {}
        for ltid, lvalues in self._rows.items():
            key = tuple(lvalues[p] for p in left_positions)
            for rtid, rvalues in index.get(key, ()):
                rows[(ltid, rtid)] = lvalues + rvalues
        out._rows = rows
        return out

    def union(self, other: "Relation") -> "Relation":
        """∪ keyed by tid; on tid collision the other relation wins."""
        self._require_compatible(other)
        out = Relation(self.schema)
        out._rows = dict(self._rows)
        out._rows.update(other._rows)
        return out

    def difference(self, other: "Relation") -> "Relation":
        """− keyed by tid: rows of self whose tid is absent from other."""
        self._require_compatible(other)
        out = Relation(self.schema)
        out._rows = {
            tid: values
            for tid, values in self._rows.items()
            if tid not in other._rows
        }
        return out

    def intersect(self, other: "Relation") -> "Relation":
        """∩ keyed by tid."""
        self._require_compatible(other)
        out = Relation(self.schema)
        out._rows = {
            tid: values
            for tid, values in self._rows.items()
            if tid in other._rows
        }
        return out

    def _require_compatible(self, other: "Relation") -> None:
        if not self.schema.union_compatible(other.schema):
            raise SchemaError(
                f"schemas not union-compatible: {self.schema!r} vs {other.schema!r}"
            )

    # -- presentation --------------------------------------------------

    def sorted_rows(self) -> list:
        """Rows sorted by tid repr, for deterministic display/tests."""
        return sorted(self, key=lambda row: repr(row.tid))

    def top(self, n: int, by: str, descending: bool = True) -> list:
        """The ``n`` rows with the largest (or smallest) ``by`` values.

        A presentation helper (ORDER BY ... LIMIT n at delivery time):
        relations themselves stay unordered sets, as in the paper's
        model. Null values sort last in either direction.
        """
        position = self.schema.position(by)
        ordered = sorted(
            (row for row in self if row.values[position] is not None),
            key=lambda row: row.values[position],
            reverse=descending,
        )
        nulls = [row for row in self if row.values[position] is None]
        return (ordered + nulls)[: max(0, n)]

    def to_table_string(self, limit: int = 20) -> str:
        """Render as an aligned text table (for examples and docs)."""
        names = self.schema.names
        shown = [list(map(_cell, row.values)) for row in self.sorted_rows()[:limit]]
        widths = [
            max([len(n)] + [len(r[i]) for r in shown]) for i, n in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in shown
        ]
        lines = [header, rule] + body
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)


def _cell(value: Any) -> str:
    return "-" if value is None else str(value)
