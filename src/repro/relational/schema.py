"""Schemas: ordered collections of typed, named attributes."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.types import AttributeType


class Attribute:
    """A named, typed column."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: AttributeType):
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {name!r}")
        if "." in name:
            raise SchemaError(
                f"attribute name may not contain '.', got {name!r} "
                "(qualification belongs to the query, not the schema)"
            )
        if not isinstance(type, AttributeType):
            raise SchemaError(f"attribute type must be AttributeType, got {type!r}")
        self.name = name
        self.type = type

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.type == other.type
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.type.value})"


class Schema:
    """An ordered, duplicate-free sequence of attributes.

    Schemas are immutable; all "modifying" operations return new
    schemas. Attribute positions are significant: rows are stored as
    plain tuples aligned with the schema.
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index = {}
        for pos, attr in enumerate(attrs):
            if not isinstance(attr, Attribute):
                raise SchemaError(f"expected Attribute, got {attr!r}")
            if attr.name in index:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            index[attr.name] = pos
        self._attributes = attrs
        self._index = index

    @classmethod
    def of(cls, *pairs: Tuple[str, AttributeType]) -> "Schema":
        """Build a schema from (name, type) pairs.

        >>> Schema.of(("name", AttributeType.STR), ("price", AttributeType.INT))
        """
        return cls(Attribute(name, type_) for name, type_ in pairs)

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}:{a.type.value}" for a in self._attributes)
        return f"Schema({inner})"

    def position(self, name: str) -> int:
        """Index of attribute ``name``; raises if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(
                f"no attribute {name!r} in {self!r}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.position(name)]

    def type_of(self, name: str) -> AttributeType:
        return self.attribute(name).type

    def validate_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate and coerce a row of values against this schema."""
        if len(values) != len(self._attributes):
            raise SchemaError(
                f"row arity {len(values)} does not match schema arity "
                f"{len(self._attributes)}"
            )
        return tuple(
            attr.type.validate(value)
            for attr, value in zip(self._attributes, values)
        )

    def project(self, names: Sequence[str]) -> "Schema":
        """New schema containing only ``names``, in the given order."""
        return Schema(self.attribute(name) for name in names)

    def rename(self, mapping: dict) -> "Schema":
        """New schema with attributes renamed per ``mapping``."""
        return Schema(
            Attribute(mapping.get(a.name, a.name), a.type)
            for a in self._attributes
        )

    def concat(self, other: "Schema") -> "Schema":
        """Concatenation of two schemas; names must not collide."""
        return Schema(self._attributes + other._attributes)

    def union_compatible(self, other: "Schema") -> bool:
        """True if the two schemas have the same types in the same order.

        Names may differ; union/difference follow positional semantics,
        as in the paper's relational-algebra treatment.
        """
        if len(self) != len(other):
            return False
        return all(
            a.type == b.type for a, b in zip(self._attributes, other._attributes)
        )
