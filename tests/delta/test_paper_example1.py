"""Experiment X1: exact reproduction of the paper's Example 1.

Transaction T updates the Stocks relation by insertion, deletion and
modification; ΔStocks must capture the three changes, and the
insertions/deletions operators must return exactly the rows the paper
lists (modulo the OCR garbling of the printed table, the semantics in
the surrounding text are unambiguous: insertions(ΔStocks) = newly
inserted rows plus new sides of modifications; deletions(ΔStocks) =
removed rows plus old sides of modifications).
"""

from tests.conftest import run_example1_transaction

from repro.delta.capture import delta_since
from repro.delta.differential import ChangeKind


def test_example1_delta_contents(db, stocks, stocks_tids):
    ts_last = db.now()
    run_example1_transaction(db, stocks, stocks_tids)
    delta = delta_since(stocks, ts_last)

    assert len(delta) == 3
    by_kind = {entry.kind: entry for entry in delta}

    insert = by_kind[ChangeKind.INSERT]
    assert insert.old is None
    assert insert.new == (101088, "MAC", 117)

    modify = by_kind[ChangeKind.MODIFY]
    assert modify.old == (120992, "DEC", 150)
    assert modify.new == (120992, "DEC", 149)

    delete = by_kind[ChangeKind.DELETE]
    assert delete.old == (92394, "QLI", 145)
    assert delete.new is None

    # All three share the single commit timestamp of T.
    assert len({entry.ts for entry in delta}) == 1


def test_example1_insertions_operator(db, stocks, stocks_tids):
    """insertions(ΔStocks) = {(101088, MAC, 117), (120992, DEC, 149)}."""
    ts_last = db.now()
    run_example1_transaction(db, stocks, stocks_tids)
    delta = delta_since(stocks, ts_last)
    values = delta.insertions().values_set()
    assert values == {(101088, "MAC", 117), (120992, "DEC", 149)}


def test_example1_deletions_operator(db, stocks, stocks_tids):
    """deletions(ΔStocks) = {(092394, QLI, 145), (120992, DEC, 150)}."""
    ts_last = db.now()
    run_example1_transaction(db, stocks, stocks_tids)
    delta = delta_since(stocks, ts_last)
    values = delta.deletions().values_set()
    assert values == {(92394, "QLI", 145), (120992, "DEC", 150)}


def test_example1_wide_table_renders_like_the_paper(db, stocks, stocks_tids):
    ts_last = db.now()
    run_example1_transaction(db, stocks, stocks_tids)
    delta = delta_since(stocks, ts_last)
    text = delta.as_wide_relation().to_table_string()
    # Missing sides render as dashes, as in the printed table.
    assert "MAC" in text and "QLI" in text and "-" in text


def test_example1_new_state_from_delta(db, stocks, stocks_tids):
    ts_last = db.now()
    old_state = stocks.snapshot()
    run_example1_transaction(db, stocks, stocks_tids)
    delta = delta_since(stocks, ts_last)
    assert delta.apply_to(old_state) == stocks.current
    assert delta.unapply_from(stocks.current) == old_state
