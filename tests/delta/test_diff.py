"""Tests for the Diff operator (paper Section 4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.diff import diff
from repro.delta.differential import ChangeKind

SCHEMA = Schema.of(("v", AttributeType.INT))


def rel(pairs):
    return Relation.from_pairs(SCHEMA, [(tid, (v,)) for tid, v in pairs])


class TestDiff:
    def test_classifies_all_kinds(self):
        old = rel([(1, 10), (2, 20), (3, 30)])
        new = rel([(2, 21), (3, 30), (4, 40)])
        delta = diff(old, new, ts=7)
        assert delta.get(1).kind is ChangeKind.DELETE
        assert delta.get(2).kind is ChangeKind.MODIFY
        assert delta.get(3) is None  # unchanged
        assert delta.get(4).kind is ChangeKind.INSERT
        assert all(entry.ts == 7 for entry in delta)

    def test_identical_relations_empty_diff(self):
        a = rel([(1, 10)])
        assert diff(a, a.copy()).is_empty()

    def test_incompatible_schemas_rejected(self):
        other = Relation(Schema.of(("a", AttributeType.STR)))
        with pytest.raises(SchemaError):
            diff(rel([]), other)


@given(
    st.dictionaries(st.integers(0, 30), st.integers(0, 5), max_size=25),
    st.dictionaries(st.integers(0, 30), st.integers(0, 5), max_size=25),
)
def test_diff_apply_roundtrip_property(old_map, new_map):
    """apply(old, Diff(old, new)) == new for arbitrary states."""
    old = rel(old_map.items())
    new = rel(new_map.items())
    delta = diff(old, new)
    assert delta.apply_to(old) == new
    assert delta.unapply_from(new) == old
