"""Tests for differential relations: consolidation and operators."""

import pytest

from repro.errors import DeltaConsolidationError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.update_log import UpdateKind, UpdateRecord
from repro.delta.differential import ChangeKind, DeltaEntry, DeltaRelation

SCHEMA = Schema.of(("name", AttributeType.STR), ("price", AttributeType.INT))


def rec(kind, tid, old, new, ts):
    return UpdateRecord(kind, tid, old, new, ts, txn_id=1)


class TestEntry:
    def test_kinds(self):
        assert DeltaEntry(1, None, ("A", 1), 1).kind is ChangeKind.INSERT
        assert DeltaEntry(1, ("A", 1), None, 1).kind is ChangeKind.DELETE
        assert DeltaEntry(1, ("A", 1), ("A", 2), 1).kind is ChangeKind.MODIFY

    def test_both_sides_null_rejected(self):
        with pytest.raises(DeltaConsolidationError):
            DeltaEntry(1, None, None, 1)


class TestConsolidation:
    def test_single_ops(self):
        delta = DeltaRelation.from_records(
            SCHEMA,
            [
                rec(UpdateKind.INSERT, 1, None, ("A", 1), 1),
                rec(UpdateKind.MODIFY, 2, ("B", 2), ("B", 3), 1),
                rec(UpdateKind.DELETE, 3, ("C", 9), None, 1),
            ],
        )
        assert len(delta) == 3
        assert delta.get(1).kind is ChangeKind.INSERT
        assert delta.get(2).kind is ChangeKind.MODIFY
        assert delta.get(3).kind is ChangeKind.DELETE

    def test_insert_then_modify_folds_to_insert(self):
        delta = DeltaRelation.from_records(
            SCHEMA,
            [
                rec(UpdateKind.INSERT, 1, None, ("A", 1), 1),
                rec(UpdateKind.MODIFY, 1, ("A", 1), ("A", 5), 2),
            ],
        )
        entry = delta.get(1)
        assert entry.kind is ChangeKind.INSERT
        assert entry.new == ("A", 5)
        assert entry.ts == 2  # stamped with the latest contributing ts

    def test_insert_then_delete_cancels(self):
        delta = DeltaRelation.from_records(
            SCHEMA,
            [
                rec(UpdateKind.INSERT, 1, None, ("A", 1), 1),
                rec(UpdateKind.DELETE, 1, ("A", 1), None, 2),
            ],
        )
        assert delta.is_empty()

    def test_modify_chain_composes(self):
        delta = DeltaRelation.from_records(
            SCHEMA,
            [
                rec(UpdateKind.MODIFY, 1, ("A", 1), ("A", 2), 1),
                rec(UpdateKind.MODIFY, 1, ("A", 2), ("A", 3), 2),
            ],
        )
        entry = delta.get(1)
        assert entry.old == ("A", 1) and entry.new == ("A", 3)

    def test_modify_back_to_original_cancels(self):
        delta = DeltaRelation.from_records(
            SCHEMA,
            [
                rec(UpdateKind.MODIFY, 1, ("A", 1), ("A", 2), 1),
                rec(UpdateKind.MODIFY, 1, ("A", 2), ("A", 1), 2),
            ],
        )
        assert delta.is_empty()

    def test_modify_then_delete_is_delete_of_original(self):
        delta = DeltaRelation.from_records(
            SCHEMA,
            [
                rec(UpdateKind.MODIFY, 1, ("A", 1), ("A", 2), 1),
                rec(UpdateKind.DELETE, 1, ("A", 2), None, 2),
            ],
        )
        entry = delta.get(1)
        assert entry.kind is ChangeKind.DELETE and entry.old == ("A", 1)

    def test_delete_then_reinsert_is_modify(self):
        delta = DeltaRelation.from_records(
            SCHEMA,
            [
                rec(UpdateKind.DELETE, 1, ("A", 1), None, 1),
                rec(UpdateKind.INSERT, 1, None, ("A", 9), 2),
            ],
        )
        assert delta.get(1).kind is ChangeKind.MODIFY

    def test_chain_inconsistency_detected(self):
        with pytest.raises(DeltaConsolidationError):
            DeltaRelation.from_records(
                SCHEMA,
                [
                    rec(UpdateKind.INSERT, 1, None, ("A", 1), 1),
                    rec(UpdateKind.INSERT, 1, None, ("A", 2), 2),
                ],
            )
        with pytest.raises(DeltaConsolidationError):
            DeltaRelation.from_records(
                SCHEMA,
                [
                    rec(UpdateKind.MODIFY, 1, ("A", 1), ("A", 2), 1),
                    rec(UpdateKind.MODIFY, 1, ("A", 99), ("A", 3), 2),
                ],
            )

    def test_duplicate_tid_entries_rejected(self):
        entries = [
            DeltaEntry(1, None, ("A", 1), 1),
            DeltaEntry(1, None, ("A", 2), 2),
        ]
        with pytest.raises(DeltaConsolidationError):
            DeltaRelation(SCHEMA, entries)


class TestOperators:
    @pytest.fixture
    def delta(self):
        return DeltaRelation(
            SCHEMA,
            [
                DeltaEntry(1, None, ("MAC", 117), 10),  # insert
                DeltaEntry(2, ("QLI", 145), None, 10),  # delete
                DeltaEntry(3, ("DEC", 150), ("DEC", 149), 10),  # modify
            ],
        )

    def test_insertions_include_modify_new_side(self, delta):
        ins = delta.insertions()
        assert sorted(ins.tids()) == [1, 3]
        assert ins.get(3) == ("DEC", 149)

    def test_deletions_include_modify_old_side(self, delta):
        dels = delta.deletions()
        assert sorted(dels.tids()) == [2, 3]
        assert dels.get(3) == ("DEC", 150)

    def test_pure_variants(self, delta):
        assert list(delta.pure_insertions().tids()) == [1]
        assert list(delta.pure_deletions().tids()) == [2]
        assert [e.tid for e in delta.modifications()] == [3]

    def test_filter_since(self, delta):
        assert len(delta.filter_since(9)) == 3
        assert delta.filter_since(10).is_empty()

    def test_apply_unapply_roundtrip(self, delta):
        from repro.relational.relation import Relation

        old = Relation.from_pairs(
            SCHEMA, [(2, ("QLI", 145)), (3, ("DEC", 150)), (4, ("IBM", 75))]
        )
        new = delta.apply_to(old)
        assert sorted(new.tids()) == [1, 3, 4]
        assert new.get(3) == ("DEC", 149)
        back = delta.unapply_from(new)
        assert back == old

    def test_reversed_is_inverse(self, delta):
        from repro.relational.relation import Relation

        old = Relation.from_pairs(SCHEMA, [(2, ("QLI", 145)), (3, ("DEC", 150))])
        assert delta.reversed().apply_to(delta.apply_to(old)) == old

    def test_max_ts(self, delta):
        assert delta.max_ts() == 10
        assert DeltaRelation(SCHEMA).max_ts() == 0

    def test_wide_relation_shape(self, delta):
        wide = delta.as_wide_relation()
        assert wide.schema.names == (
            "name_old",
            "price_old",
            "name_new",
            "price_new",
            "ts",
        )
        assert wide.get(1) == (None, None, "MAC", 117, 10)
        assert wide.get(2) == ("QLI", 145, None, None, 10)
        assert wide.get(3) == ("DEC", 150, "DEC", 149, 10)
