"""Tests for delta capture from table logs and external buffers."""

import pytest

from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.update_log import UpdateKind, UpdateRecord
from repro.delta.capture import DeltaBuffer, delta_since, deltas_since

SCHEMA = Schema.of(("x", AttributeType.INT))


def rec(tid, ts, kind=UpdateKind.INSERT, old=None, new=(1,)):
    return UpdateRecord(kind, tid, old, new, ts, txn_id=1)


class TestTableCapture:
    def test_delta_since_consolidates_window(self, db, stocks, stocks_tids):
        ts = db.now()
        stocks.modify(stocks_tids[120992], updates={"price": 149})
        stocks.modify(stocks_tids[120992], updates={"price": 148})
        delta = delta_since(stocks, ts)
        assert len(delta) == 1
        entry = delta.get(stocks_tids[120992])
        assert entry.old[2] == 150 and entry.new[2] == 148

    def test_deltas_since_skips_unchanged_tables(self, db, stocks):
        other = db.create_table("other", [("x", AttributeType.INT)])
        ts = db.now()
        stocks.insert((9, "X", 1))
        deltas = deltas_since([stocks, other], ts)
        assert set(deltas) == {"stocks"}

    def test_window_respects_since(self, db, stocks):
        stocks.insert((9, "X", 1))
        ts = db.now()
        assert delta_since(stocks, ts).is_empty()


class TestDeltaBuffer:
    def test_push_and_window(self):
        buffer = DeltaBuffer(SCHEMA)
        buffer.push(rec(1, ts=1))
        buffer.push(rec(2, ts=3))
        assert len(buffer) == 2
        assert len(buffer.delta_since(0)) == 2
        assert len(buffer.delta_since(1)) == 1
        assert buffer.delta_since(3).is_empty()

    def test_rejects_decreasing_ts(self):
        buffer = DeltaBuffer(SCHEMA)
        buffer.push(rec(1, ts=5))
        with pytest.raises(ValueError):
            buffer.push(rec(2, ts=4))

    def test_prune(self):
        buffer = DeltaBuffer(SCHEMA)
        buffer.push_all([rec(1, ts=1), rec(2, ts=2), rec(3, ts=3)])
        assert buffer.prune_before(2) == 2
        assert len(buffer) == 1
