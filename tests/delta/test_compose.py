"""Tests for delta composition (consecutive windows folded into one)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeltaConsolidationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.diff import diff
from repro.delta.differential import ChangeKind, DeltaEntry, DeltaRelation

SCHEMA = Schema.of(("v", AttributeType.INT))


def rel(pairs):
    return Relation.from_pairs(SCHEMA, [(tid, (v,)) for tid, v in pairs])


class TestCompose:
    def test_disjoint_tids_union(self):
        first = DeltaRelation(SCHEMA, [DeltaEntry(1, None, (10,), 1)])
        second = DeltaRelation(SCHEMA, [DeltaEntry(2, (5,), None, 2)])
        composed = first.compose(second)
        assert len(composed) == 2

    def test_insert_then_modify_folds(self):
        first = DeltaRelation(SCHEMA, [DeltaEntry(1, None, (10,), 1)])
        second = DeltaRelation(SCHEMA, [DeltaEntry(1, (10,), (20,), 2)])
        entry = first.compose(second).get(1)
        assert entry.kind is ChangeKind.INSERT and entry.new == (20,)

    def test_insert_then_delete_cancels(self):
        first = DeltaRelation(SCHEMA, [DeltaEntry(1, None, (10,), 1)])
        second = DeltaRelation(SCHEMA, [DeltaEntry(1, (10,), None, 2)])
        assert first.compose(second).is_empty()

    def test_modify_back_cancels(self):
        first = DeltaRelation(SCHEMA, [DeltaEntry(1, (5,), (9,), 1)])
        second = DeltaRelation(SCHEMA, [DeltaEntry(1, (9,), (5,), 2)])
        assert first.compose(second).is_empty()

    def test_mismatched_windows_rejected(self):
        first = DeltaRelation(SCHEMA, [DeltaEntry(1, (5,), (9,), 1)])
        second = DeltaRelation(SCHEMA, [DeltaEntry(1, (7,), (8,), 2)])
        with pytest.raises(DeltaConsolidationError):
            first.compose(second)

    def test_timestamps_from_later_delta(self):
        first = DeltaRelation(SCHEMA, [DeltaEntry(1, (5,), (9,), 1)])
        second = DeltaRelation(SCHEMA, [DeltaEntry(1, (9,), (7,), 8)])
        assert first.compose(second).get(1).ts == 8


@given(
    a=st.dictionaries(st.integers(0, 15), st.integers(0, 4), max_size=12),
    b=st.dictionaries(st.integers(0, 15), st.integers(0, 4), max_size=12),
    c=st.dictionaries(st.integers(0, 15), st.integers(0, 4), max_size=12),
)
def test_compose_equals_direct_diff_property(a, b, c):
    """Diff(A,B) ∘ Diff(B,C) == Diff(A,C) for arbitrary states."""
    ra, rb, rc = rel(a.items()), rel(b.items()), rel(c.items())
    composed = diff(ra, rb, 1).compose(diff(rb, rc, 2))
    direct = {
        (e.tid, e.old, e.new) for e in diff(ra, rc)
    }
    got = {(e.tid, e.old, e.new) for e in composed}
    assert got == direct
    assert composed.apply_to(ra) == rc
