"""Tests for the Propagate operator (complete re-evaluation spec)."""

from tests.conftest import run_example1_transaction

from repro.relational import parse_query
from repro.delta.capture import delta_since, deltas_since
from repro.delta.differential import ChangeKind
from repro.delta.propagate import old_resolver, propagate, propagate_between


def test_old_resolver_reconstructs_previous_state(db, stocks, stocks_tids):
    ts = db.now()
    before = stocks.snapshot()
    run_example1_transaction(db, stocks, stocks_tids)
    deltas = deltas_since([stocks], ts)
    resolver = old_resolver(db.relation, deltas)
    assert resolver("stocks") == before
    # Cached: same object on second call.
    assert resolver("stocks") is resolver("stocks")


def test_propagate_select_query(db, stocks, stocks_tids):
    q = parse_query("SELECT name, price FROM stocks WHERE price > 120")
    ts = db.now()
    run_example1_transaction(db, stocks, stocks_tids)
    delta = propagate(q, db.relation, deltas_since([stocks], ts), ts=db.now())
    kinds = sorted(entry.kind.value for entry in delta)
    assert kinds == ["delete", "modify"]  # QLI left; DEC price changed


def test_propagate_empty_when_no_deltas(db, stocks):
    q = parse_query("SELECT name FROM stocks")
    assert propagate(q, db.relation, {}).is_empty()


def test_propagate_aggregate_query(db, stocks, stocks_tids):
    q = parse_query("SELECT SUM(price) AS total FROM stocks")
    ts = db.now()
    run_example1_transaction(db, stocks, stocks_tids)
    delta = propagate(q, db.relation, deltas_since([stocks], ts))
    entry = delta.get(())
    assert entry.kind is ChangeKind.MODIFY
    assert entry.old == (156 + 145 + 150,)
    assert entry.new == (156 + 149 + 117,)


def test_propagate_between_explicit_states(db, stocks, stocks_tids):
    q = parse_query("SELECT name FROM stocks WHERE price > 120")
    before = {"stocks": stocks.snapshot()}
    run_example1_transaction(db, stocks, stocks_tids)
    after = {"stocks": stocks.snapshot()}
    delta = propagate_between(q, before.__getitem__, after.__getitem__)
    assert delta.get(stocks_tids[92394]).kind is ChangeKind.DELETE
