"""Tests for old-state views and old-state index probes."""

import pytest

from repro.relational.indexes import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.delta.views import CurrentStateIndex, OldStateIndex, OldStateView

SCHEMA = Schema.of(("name", AttributeType.STR), ("price", AttributeType.INT))


@pytest.fixture
def current():
    # State AFTER: MAC inserted (tid 4), DEC modified 150->149 (tid 3),
    # QLI deleted (tid 2), DEC@156 untouched (tid 1).
    return Relation.from_pairs(
        SCHEMA,
        [(1, ("DEC", 156)), (3, ("DEC", 149)), (4, ("MAC", 117))],
    )


@pytest.fixture
def delta():
    return DeltaRelation(
        SCHEMA,
        [
            DeltaEntry(4, None, ("MAC", 117), 5),
            DeltaEntry(2, ("QLI", 145), None, 5),
            DeltaEntry(3, ("DEC", 150), ("DEC", 149), 5),
        ],
    )


class TestOldStateView:
    def test_lookup_semantics(self, current, delta):
        view = OldStateView(current, delta)
        assert view.get_or_none(1) == ("DEC", 156)  # untouched
        assert view.get_or_none(2) == ("QLI", 145)  # deleted: old visible
        assert view.get_or_none(3) == ("DEC", 150)  # modified: old value
        assert view.get_or_none(4) is None  # inserted: absent before

    def test_contains(self, current, delta):
        view = OldStateView(current, delta)
        assert 2 in view and 4 not in view

    def test_iteration_and_len(self, current, delta):
        view = OldStateView(current, delta)
        rows = {row.tid: row.values for row in view}
        assert rows == {
            1: ("DEC", 156),
            2: ("QLI", 145),
            3: ("DEC", 150),
        }
        assert len(view) == 3

    def test_materialize_equals_iteration(self, current, delta):
        view = OldStateView(current, delta)
        materialized = view.materialize()
        assert {r.tid for r in materialized} == {1, 2, 3}
        assert materialized.get(3) == ("DEC", 150)

    def test_empty_delta_is_identity(self, current):
        view = OldStateView(current, DeltaRelation(SCHEMA))
        assert view.materialize() == current


class TestOldStateIndex:
    def test_probe_returns_old_rows(self, current, delta):
        index = HashIndex.build(current, (0,))  # by name, current state
        old_index = OldStateIndex(index, delta, current)
        dec_rows = dict(old_index.lookup(("DEC",)))
        assert dec_rows == {1: ("DEC", 156), 3: ("DEC", 150)}

    def test_probe_sees_deleted_rows(self, current, delta):
        index = HashIndex.build(current, (0,))
        old_index = OldStateIndex(index, delta, current)
        assert old_index.lookup(("QLI",)) == [(2, ("QLI", 145))]

    def test_probe_hides_inserted_rows(self, current, delta):
        index = HashIndex.build(current, (0,))
        old_index = OldStateIndex(index, delta, current)
        assert old_index.lookup(("MAC",)) == []

    def test_probe_by_changed_key_column(self, current, delta):
        # Index on price: tid 3's key moved 150 -> 149.
        index = HashIndex.build(current, (1,))
        old_index = OldStateIndex(index, delta, current)
        assert old_index.lookup((149,)) == []  # 149 didn't exist before
        assert old_index.lookup((150,)) == [(3, ("DEC", 150))]

    def test_matches_materialized_old_state(self, current, delta):
        index = HashIndex.build(current, (0,))
        old_index = OldStateIndex(index, delta, current)
        old_state = OldStateView(current, delta).materialize()
        for key in [("DEC",), ("QLI",), ("MAC",), ("ZZZ",)]:
            expected = sorted(
                (row.tid, row.values)
                for row in old_state
                if (row.values[0],) == key
            )
            assert sorted(old_index.lookup(key)) == expected


class TestCurrentStateIndex:
    def test_lookup(self, current):
        index = HashIndex.build(current, (0,))
        wrapper = CurrentStateIndex(index, current)
        assert dict(wrapper.lookup(("DEC",))) == {
            1: ("DEC", 156),
            3: ("DEC", 149),
        }
        assert wrapper.lookup(("QLI",)) == []
