"""Tests for the benchmark harness utilities and metrics."""

import pytest

from repro.bench.harness import format_table, geometric_mean, time_fn
from repro.metrics import Metrics


class TestFormatTable:
    def test_aligned_output(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "long-name", "value": 12345},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text and "12,345" in text
        # All data lines align to the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_float_formatting(self):
        rows = [{"x": 0.00042}, {"x": 3.14159}, {"x": 123456.0}]
        text = format_table(rows)
        assert "0.0004" in text
        assert "3.14" in text
        assert "123,456" in text

    def test_none_renders_dash(self):
        assert "-" in format_table([{"x": None}])

    def test_empty_rows(self):
        assert "no rows" in format_table([], title="E")


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == 5.0
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0  # non-positive skipped

    def test_time_fn_returns_positive(self):
        assert time_fn(lambda: sum(range(100)), repeat=2) > 0


class TestMetrics:
    def test_count_and_get(self):
        metrics = Metrics()
        metrics.count("x")
        metrics.count("x", 4)
        assert metrics["x"] == 5
        assert metrics.get("missing") == 0

    def test_truthiness_when_empty(self):
        # Engine code does `if metrics:` — must hold before any count.
        assert bool(Metrics()) is True
        assert len(Metrics()) == 0

    def test_snapshot_and_diff(self):
        metrics = Metrics()
        metrics.count("a", 2)
        snap = metrics.snapshot()
        metrics.count("a", 3)
        metrics.count("b")
        assert metrics.diff(snap) == {"a": 3, "b": 1}

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.count("x", 1)
        b.count("x", 2)
        b.count("y", 7)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 7

    def test_reset_and_iter(self):
        metrics = Metrics()
        metrics.count("b")
        metrics.count("a")
        assert [name for name, __ in metrics] == ["a", "b"]  # sorted
        metrics.reset()
        assert metrics.snapshot() == {}
