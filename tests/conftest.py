"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Database
from repro.relational import AttributeType, Schema


@pytest.fixture
def db():
    return Database()


STOCKS_PAIRS = [
    ("sid", AttributeType.INT),
    ("name", AttributeType.STR),
    ("price", AttributeType.INT),
]


@pytest.fixture
def stocks_schema():
    return Schema.of(*STOCKS_PAIRS)


@pytest.fixture
def stocks(db):
    """The paper's Example 1 starting state.

    Example 1/2 use three rows; tids are noted on the fixture for
    convenience: DEC@156 -> tid 1, QLI@145 -> tid 2, DEC@150 -> tid 3.
    """
    table = db.create_table("stocks", STOCKS_PAIRS, indexes=[("sid",)])
    table.insert_many(
        [
            (100000, "DEC", 156),
            (92394, "QLI", 145),
            (120992, "DEC", 150),
        ]
    )
    return table


@pytest.fixture
def stocks_tids(stocks):
    """Map of sid -> tid for the Example 1 rows."""
    return {row.values[0]: row.tid for row in stocks.rows()}


def run_example1_transaction(db, stocks, stocks_tids):
    """Apply the paper's Example 1 transaction T.

    Begin Transaction T
        Insert (101088, MAC, 117);
        Modify (120992, DEC, 150) = (120992, DEC, 149);
        Delete (092394);
    End Transaction
    """
    with db.begin() as txn:
        txn.insert_into(stocks, (101088, "MAC", 117))
        txn.modify_in(stocks, stocks_tids[120992], updates={"price": 149})
        txn.delete_from(stocks, stocks_tids[92394])
    return txn
