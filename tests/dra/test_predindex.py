"""Directed edge cases for the predicate-index fan-out layer.

The property suite (test_predindex_property.py) holds the index equal
to the relevance oracle over random inputs; these tests pin the named
edge cases from the fan-out design: overlapping intervals, null and
absent attribute values, a predicate column dropped by a schema
change (index invalidation), unsatisfiable conjunctions, and the
empty-batch no-op path — plus the probe-count shape the bench gates.
"""

import pytest

from repro.metrics import Metrics
from repro.relational import parse_query
from repro.relational.algebra import RelationRef, SPJQuery
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import And, Comparison, Not, eq, gt, le, lt
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.dra.predindex import IntervalIndex, PredicateIndex

SCHEMA = Schema.of(("k", AttributeType.INT), ("v", AttributeType.INT))
SCOPES = {"t": SCHEMA}


def sub(predicate):
    return SPJQuery([RelationRef("t")], predicate)


def batch(*rows, schema=SCHEMA):
    """One insert entry per row."""
    entries = [
        DeltaEntry(tid, None, row, ts=tid + 1) for tid, row in enumerate(rows)
    ]
    return {"t": DeltaRelation(schema, entries)}


def test_overlapping_intervals_route_exactly():
    index = PredicateIndex()
    index.add("mid", sub(And(le(Literal(10), ColumnRef("v")), le(ColumnRef("v"), Literal(20)))), SCOPES)
    index.add("high", sub(And(le(Literal(15), ColumnRef("v")), le(ColumnRef("v"), Literal(25)))), SCOPES)
    index.add("open", sub(le(Literal(18), ColumnRef("v"))), SCOPES)

    assert index.match_batch(batch((1, 12))) == {"mid"}
    assert index.match_batch(batch((1, 17))) == {"mid", "high"}
    assert index.match_batch(batch((1, 19))) == {"mid", "high", "open"}
    assert index.match_batch(batch((1, 30))) == {"open"}
    assert index.match_batch(batch((1, 9))) == set()


def test_interval_boundary_inclusivity():
    index = PredicateIndex()
    index.add("closed", sub(And(le(Literal(5), ColumnRef("v")), le(ColumnRef("v"), Literal(7)))), SCOPES)
    index.add("open", sub(And(lt(Literal(5), ColumnRef("v")), lt(ColumnRef("v"), Literal(7)))), SCOPES)

    assert index.match_batch(batch((1, 5))) == {"closed"}
    assert index.match_batch(batch((1, 6))) == {"closed", "open"}
    assert index.match_batch(batch((1, 7))) == {"closed"}


def test_unsatisfiable_interval_never_matches():
    index = PredicateIndex()
    index.add("never", sub(And(gt(ColumnRef("v"), Literal(10)), lt(ColumnRef("v"), Literal(5)))), SCOPES)
    index.add("point_excl", sub(And(gt(ColumnRef("v"), Literal(5)), lt(ColumnRef("v"), Literal(5)))), SCOPES)
    for v in (0, 5, 7, 10, 12):
        assert index.match_batch(batch((1, v))) == set()


def test_null_attributes_comparisons_reject_not_accepts():
    """None-is-False semantics: a comparison never matches a null, so
    Not(comparison) always does — the scan bucket preserves that."""
    index = PredicateIndex()
    index.add("eq5", sub(eq(ColumnRef("v"), Literal(5))), SCOPES)
    index.add("lt9", sub(lt(ColumnRef("v"), Literal(9))), SCOPES)
    index.add("not5", sub(Not(eq(ColumnRef("v"), Literal(5)))), SCOPES)

    assert index.match_batch(batch((1, None))) == {"not5"}
    assert index.match_batch(batch((1, 5))) == {"eq5", "lt9"}
    assert index.match_batch(batch((1, 6))) == {"lt9", "not5"}


def test_modify_matches_on_either_side():
    """An update leaving the relevant slice is still relevant (its old
    side was inside); one entering it matches on the new side."""
    index = PredicateIndex()
    index.add("hot", sub(eq(ColumnRef("k"), Literal(1))), SCOPES)
    leaving = {"t": DeltaRelation(SCHEMA, [DeltaEntry(0, (1, 10), (2, 10), 1)])}
    entering = {"t": DeltaRelation(SCHEMA, [DeltaEntry(0, (3, 10), (1, 10), 1)])}
    outside = {"t": DeltaRelation(SCHEMA, [DeltaEntry(0, (3, 10), (4, 10), 1)])}
    assert index.match_batch(leaving) == {"hot"}
    assert index.match_batch(entering) == {"hot"}
    assert index.match_batch(outside) == set()


def test_empty_batch_routes_nothing_and_probes_nothing():
    metrics = Metrics()
    index = PredicateIndex(metrics)
    for i in range(50):
        index.add(f"s{i}", sub(eq(ColumnRef("k"), Literal(i))), SCOPES)

    assert index.match_batch({}) == set()
    assert index.match_batch({"t": DeltaRelation(SCHEMA, [])}) == set()
    assert metrics[Metrics.PREDINDEX_PROBES] == 0
    assert metrics[Metrics.PREDINDEX_MATCHES] == 0


def test_equality_probe_count_independent_of_subscriber_count():
    """The sublinearity claim at its core: 1000 equality subscriptions,
    one delta row → probes bounded by the bucket size, not the
    subscriber count."""
    metrics = Metrics()
    index = PredicateIndex(metrics)
    for i in range(1000):
        index.add(f"s{i}", sub(eq(ColumnRef("k"), Literal(i))), SCOPES)

    matched = index.match_batch(batch((7, 0)))
    assert matched == {"s7"}
    assert metrics[Metrics.PREDINDEX_PROBES] <= 2  # one per entry side
    assert metrics[Metrics.PREDINDEX_MATCHES] == 1


def test_dropped_column_quarantines_subscription(db):
    """A schema change that removes a predicate's column invalidates
    the signature; the subscription is quarantined (routed nowhere,
    reported stale) while untouched subscriptions keep routing."""
    db.create_table("t", [("k", AttributeType.INT), ("v", AttributeType.INT)])
    metrics = Metrics()
    index = PredicateIndex(metrics)
    scopes = {"t": db.table("t").schema}
    index.add("on_v", sub(gt(ColumnRef("v"), Literal(5))), scopes)
    index.add("on_k", sub(eq(ColumnRef("k"), Literal(1))), scopes)

    db.drop_table("t")
    db.create_table("t", [("k", AttributeType.INT)])
    new_schema = db.table("t").schema
    dropped = {
        "t": DeltaRelation(new_schema, [DeltaEntry(0, None, (1,), 1)])
    }
    assert index.match_batch(dropped) == {"on_k"}
    assert index.stale() == {"on_v"}
    assert metrics[Metrics.PREDINDEX_INVALIDATIONS] >= 1
    # The quarantined subscription is also invisible to targeted checks.
    assert not index.matches("on_v", dropped)
    # Re-adding against the live schema clears the quarantine.
    index.add("on_v", sub(eq(ColumnRef("k"), Literal(1))), {"t": new_schema})
    assert index.stale() == set()
    assert index.match_batch(dropped) == {"on_k", "on_v"}


def test_surviving_columns_recompile_after_schema_change(db):
    """A recreated table whose columns still satisfy the predicate
    recompiles in place: same routing, new schema object."""
    db.create_table("t", [("k", AttributeType.INT), ("v", AttributeType.INT)])
    index = PredicateIndex()
    index.add("hot", sub(eq(ColumnRef("k"), Literal(3))), {"t": db.table("t").schema})

    db.drop_table("t")
    db.create_table("t", [("v", AttributeType.INT), ("k", AttributeType.INT)])
    new_schema = db.table("t").schema
    # k moved from position 0 to 1: a stale signature would look at v.
    moved = {"t": DeltaRelation(new_schema, [DeltaEntry(0, None, (99, 3), 1)])}
    assert index.match_batch(moved) == {"hot"}
    miss = {"t": DeltaRelation(new_schema, [DeltaEntry(0, None, (3, 99), 1)])}
    assert index.match_batch(miss) == set()
    assert index.stale() == set()


def test_parsed_sql_round_trips_through_index():
    """Predicates that arrive via the SQL front door (the manager and
    server path) index identically to hand-built ASTs."""
    index = PredicateIndex()
    query = parse_query("SELECT k, v FROM t WHERE k = 4 AND v > 10")
    index.add("q", query, SCOPES)
    assert index.match_batch(batch((4, 11))) == {"q"}
    assert index.match_batch(batch((4, 10))) == set()
    assert index.match_batch(batch((5, 11))) == set()


def test_remove_drops_all_structures():
    index = PredicateIndex()
    index.add("a", sub(eq(ColumnRef("k"), Literal(1))), SCOPES)
    index.add("b", sub(gt(ColumnRef("v"), Literal(1))), SCOPES)
    index.add("c", sub(Not(eq(ColumnRef("v"), Literal(1)))), SCOPES)
    assert len(index) == 3
    for sub_id in ("a", "b", "c"):
        assert index.remove(sub_id)
        assert not index.remove(sub_id)
    assert len(index) == 0
    assert index.tables() == []
    assert index.match_batch(batch((1, 2))) == set()


def test_interval_index_stab_is_exact():
    index = IntervalIndex()
    index.add(("a", "t"), (5, 0), (10, 1))   # [5, 10]
    index.add(("b", "t"), (7, 1), None)      # (7, inf)
    index.add(("c", "t"), None, (6, 0))      # (-inf, 6)
    matches, inspected = index.stab(6)
    assert {key for key in matches} == {("a", "t")}
    assert inspected >= 1
    matches, __ = index.stab(5)
    assert {key for key in matches} == {("a", "t"), ("c", "t")}
    matches, __ = index.stab(8)
    assert {key for key in matches} == {("a", "t"), ("b", "t")}
    matches, __ = index.stab(11)
    assert {key for key in matches} == {("b", "t")}
    index.remove(("a", "t"))
    matches, __ = index.stab(8)
    assert {key for key in matches} == {("b", "t")}
