"""Property tests for the columnar kernel evaluator (DESIGN.md §11).

The struct-of-arrays pipelines in :mod:`repro.dra.kernels` must be
observationally identical to the per-row term interpreter — same delta,
entry for entry — over arbitrary states, arbitrary update histories
(negative weights from deletes and the old sides of modifies, NULLs in
both join and filtered columns, empty and single-sided batches), and a
query family covering every kernel shape: spec-compiled local filters,
multi-conjunct locals, hash-join attaches, fused and unfusable
residuals, and the cartesian (no join key) fallback.

The row evaluator is the oracle: each sample runs both paths over the
same prepared plan and operand deltas and compares the results exactly.
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.relational import AttributeType, parse_query
from repro.delta.capture import deltas_since
from repro.dra.algorithm import dra_execute
from repro.dra.prepared import prepare_cq
from repro.metrics import Metrics

SMALL = st.integers(min_value=0, max_value=4)
VALUE = st.one_of(st.none(), SMALL)

#: One template per kernel shape. {t} is a draw-time constant.
QUERIES = [
    # Seed filter only (spec-compiled single comparison).
    "SELECT a, b FROM r WHERE b > {t}",
    # Multi-conjunct local (range → two spec entries).
    "SELECT a, b FROM r WHERE b >= {t} AND b < 4",
    # Hash join, locals on both sides.
    "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b > {t} AND s.c < 3",
    # Join plus a fusable col-col residual (new side right).
    "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b < s.c",
    # Fusable residual written with the literal on the left.
    "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND {t} < s.c",
    # Two residuals on one attach — beyond the single-pair fusion,
    # exercising the kernel's FILTER-stage fallback.
    "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b < s.c AND r.b != s.c",
    # No equi-join key: the cartesian attach path.
    "SELECT r.b, s.c FROM r, s WHERE r.b < s.c",
]


@st.composite
def update_ops(draw, max_ops=12):
    """Abstract ops; indexes resolve against live tids at apply time."""
    n = draw(st.integers(min_value=0, max_value=max_ops))
    ops = []
    for __ in range(n):
        kind = draw(st.sampled_from(["insert", "delete", "modify"]))
        ops.append(
            (kind, draw(VALUE), draw(VALUE), draw(st.integers(0, 10_000)))
        )
    return ops


def build_db(r_rows, s_rows):
    db = Database()
    r = db.create_table(
        "r",
        [("a", AttributeType.INT), ("b", AttributeType.INT)],
        indexes=[("a",)],
    )
    s = db.create_table(
        "s",
        [("a", AttributeType.INT), ("c", AttributeType.INT)],
        indexes=[("a",)],
    )
    r.insert_many(r_rows)
    s.insert_many(s_rows)
    return db, r, s


def apply_ops(db, table, ops, txn_size=4):
    live = [row.tid for row in table.rows()]
    i = 0
    while i < len(ops):
        with db.begin() as txn:
            for kind, x, y, pick in ops[i : i + txn_size]:
                if kind == "insert" or not live:
                    live.append(txn.insert_into(table, (x, y)))
                elif kind == "delete":
                    tid = live.pop(pick % len(live))
                    txn.delete_from(table, tid)
                else:
                    tid = live[pick % len(live)]
                    if txn.read(table, tid) is not None:
                        txn.modify_in(table, tid, values=(x, y))
        i += txn_size


def assert_columnar_matches_row(db, tables, query, since):
    """Both evaluators, same plan and deltas; results must be equal."""
    deltas = deltas_since(tables, since)
    prepared = prepare_cq(query, db)
    row_metrics, col_metrics = Metrics(), Metrics()
    row = dra_execute(
        query, db, deltas=deltas, prepared=prepared, ts=99,
        metrics=row_metrics,
    )
    col = dra_execute(
        query, db, deltas=deltas, prepared=prepared, ts=99,
        metrics=col_metrics, columnar=True,
    )
    assert col.delta == row.delta
    assert col.skipped == row.skipped
    assert col.terms_evaluated == row.terms_evaluated
    # A columnar execution that did work must account for it.
    if not col.skipped and any(not d.is_empty() for d in deltas.values()):
        changed_locally = col.changed_aliases
        if changed_locally:
            assert col_metrics.get(Metrics.KERNEL_CALLS) > 0
    return row, col


ROWS = st.lists(st.tuples(VALUE, VALUE), max_size=8)


class TestColumnarEquivalence:
    @given(
        r_rows=ROWS,
        s_rows=ROWS,
        r_ops=update_ops(),
        s_ops=update_ops(),
        template=st.sampled_from(QUERIES),
        t=SMALL,
    )
    @settings(max_examples=120, deadline=None)
    def test_columnar_equals_row_oracle(
        self, r_rows, s_rows, r_ops, s_ops, template, t
    ):
        db, r, s = build_db(r_rows, s_rows)
        query = parse_query(template.format(t=t))
        since = db.now()
        apply_ops(db, r, r_ops)
        apply_ops(db, s, s_ops)
        assert_columnar_matches_row(db, [r, s], query, since)


class TestDirectedEdgeCases:
    def test_empty_delta_short_circuits(self):
        """No changes → skipped execution, zero kernel calls."""
        db, r, s = build_db([(1, 2)], [(1, 3)])
        query = parse_query("SELECT r.b, s.c FROM r, s WHERE r.a = s.a")
        since = db.now()
        metrics = Metrics()
        result = dra_execute(
            query, db, since=since, ts=99, metrics=metrics, columnar=True
        )
        assert result.skipped
        assert metrics.get(Metrics.KERNEL_CALLS) == 0

    def test_modify_produces_both_signs(self):
        """A modify seeds the kernel with a −1 old row and a +1 new row
        and must come back out as one modify entry."""
        db, r, s = build_db([(1, 0)], [(1, 5)])
        query = parse_query("SELECT r.b, s.c FROM r, s WHERE r.a = s.a")
        since = db.now()
        tid = next(iter(r.current.tids()))
        with db.begin() as txn:
            txn.modify_in(r, tid, values=(1, 9))
        row, col = assert_columnar_matches_row(db, [r, s], query, since)
        (entry,) = list(col.delta)
        assert entry.old is not None and entry.new is not None

    def test_local_filter_drops_one_side_of_a_modify(self):
        """A modify crossing the local predicate boundary keeps only
        one signed side — insert- or delete-shaped result entries."""
        db, r, s = build_db([(1, 0)], [(1, 5)])
        query = parse_query(
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b > 2"
        )
        since = db.now()
        tid = next(iter(r.current.tids()))
        with db.begin() as txn:
            txn.modify_in(r, tid, values=(1, 4))  # 0 → 4 crosses b > 2
        row, col = assert_columnar_matches_row(db, [r, s], query, since)
        (entry,) = list(col.delta)
        assert entry.old is None and entry.new is not None

    def test_nulls_never_match_any_comparison(self):
        """NULL join keys and NULL filtered columns drop out of both
        paths identically (spec filters and residuals alike)."""
        db, r, s = build_db([(None, 3), (1, None)], [(None, 2), (1, 4)])
        query = parse_query(
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b < s.c"
        )
        since = db.now()
        with db.begin() as txn:
            txn.insert_into(r, (None, 1))
            txn.insert_into(r, (1, 2))
            txn.insert_into(s, (1, None))
        row, col = assert_columnar_matches_row(db, [r, s], query, since)
        for entry in col.delta:
            assert None not in (entry.new or entry.old)

    def test_fused_residual_matches_filter_fallback(self):
        """The same residual evaluated fused (one comparison) and
        unfused (two) agrees with the row oracle both ways."""
        rows_r = [(i % 3, i % 5) for i in range(12)]
        rows_s = [(i % 3, (i * 2) % 5) for i in range(9)]
        for sql in (
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b < s.c",
            "SELECT r.b, s.c FROM r, s "
            "WHERE r.a = s.a AND r.b < s.c AND r.b != s.c",
        ):
            db, r, s = build_db(rows_r, rows_s)
            query = parse_query(sql)
            since = db.now()
            tids = list(r.current.tids())
            with db.begin() as txn:
                txn.delete_from(r, tids[0])
                txn.modify_in(r, tids[1], values=(2, 4))
                txn.insert_into(r, (0, 1))
            assert_columnar_matches_row(db, [r, s], query, since)

    def test_both_operands_changed_runs_all_terms(self):
        """Three truth-table terms (Δr, Δs, ΔrΔs) all run columnar and
        sum to the row oracle's delta."""
        db, r, s = build_db([(1, 2), (2, 3)], [(1, 1), (2, 0)])
        query = parse_query(
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND s.c < 3"
        )
        since = db.now()
        with db.begin() as txn:
            txn.insert_into(r, (1, 7))
            txn.insert_into(s, (2, 2))
            txn.delete_from(s, next(iter(s.current.tids())))
        row, col = assert_columnar_matches_row(db, [r, s], query, since)
        assert col.terms_evaluated == 3

    def test_rows_per_kernel_call_accounting(self):
        """KERNEL_ROWS sums each kernel invocation's input batch size;
        a batch-heavy refresh therefore averages > 1 row per call."""
        db, r, s = build_db(
            [(i % 4, i % 3) for i in range(40)],
            [(i % 4, i % 5) for i in range(8)],
        )
        query = parse_query(
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b > 0"
        )
        since = db.now()
        with db.begin() as txn:
            for i in range(30):
                txn.insert_into(r, (i % 4, 1 + i % 2))
        metrics = Metrics()
        dra_execute(
            query, db, since=since, ts=99, metrics=metrics, columnar=True
        )
        calls = metrics.get(Metrics.KERNEL_CALLS)
        rows = metrics.get(Metrics.KERNEL_ROWS)
        assert calls > 0
        assert rows / calls > 1.0
