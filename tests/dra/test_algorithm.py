"""Tests for the DRA driver (Algorithm 1 end to end)."""

import pytest

from tests.conftest import run_example1_transaction

from repro.errors import QueryError, ReproError
from repro.metrics import Metrics
from repro.relational import AttributeType, parse_query
from repro.delta.capture import deltas_since
from repro.delta.differential import ChangeKind
from repro.dra.algorithm import dra_execute


@pytest.fixture
def watch_query():
    return parse_query("SELECT name, price FROM stocks WHERE price > 120")


class TestInputs:
    def test_needs_deltas_or_since(self, db, stocks, watch_query):
        with pytest.raises(QueryError):
            dra_execute(watch_query, db)

    def test_since_reads_table_logs(self, db, stocks, stocks_tids, watch_query):
        ts = db.now()
        run_example1_transaction(db, stocks, stocks_tids)
        result = dra_execute(watch_query, db, since=ts)
        assert len(result.delta) == 2

    def test_ts_defaults_to_now(self, db, stocks, watch_query):
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        result = dra_execute(watch_query, db, since=ts)
        assert all(e.ts == db.now() for e in result.delta)


class TestOutcome:
    def test_no_changes_fast_path(self, db, stocks, watch_query):
        result = dra_execute(watch_query, db, deltas={})
        assert result.skipped and result.delta.is_empty()
        assert result.terms_evaluated == 0

    def test_irrelevant_updates_skipped(self, db, stocks, watch_query):
        ts = db.now()
        stocks.insert((9, "LOW", 10))   # price <= 120: invisible
        result = dra_execute(watch_query, db, since=ts)
        assert result.skipped
        assert result.changed_aliases == ()

    def test_changed_aliases_and_terms(self, db, stocks, watch_query):
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        result = dra_execute(watch_query, db, since=ts)
        assert result.changed_aliases == ("stocks",)
        assert result.terms_evaluated == 1

    def test_complete_result_requires_previous(self, db, stocks, watch_query):
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        result = dra_execute(watch_query, db, since=ts)
        with pytest.raises(ReproError):
            result.complete_result()

    def test_complete_result_formula(self, db, stocks, stocks_tids, watch_query):
        previous = db.query(watch_query)
        ts = db.now()
        run_example1_transaction(db, stocks, stocks_tids)
        result = dra_execute(watch_query, db, since=ts, previous=previous)
        assert result.complete_result() == db.query(watch_query)

    def test_insertions_deletions_views(self, db, stocks, stocks_tids, watch_query):
        ts = db.now()
        run_example1_transaction(db, stocks, stocks_tids)
        result = dra_execute(watch_query, db, since=ts)
        assert result.insertions().values_set() == {("DEC", 149)}
        assert result.deletions().values_set() == {("QLI", 145), ("DEC", 150)}


class TestConstantGate:
    def test_constant_false_query_never_changes(self, db, stocks):
        q = parse_query("SELECT name FROM stocks WHERE 1 > 2")
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        result = dra_execute(q, db, since=ts)
        assert result.delta.is_empty()

    def test_constant_true_conjunct_ignored(self, db, stocks):
        q = parse_query("SELECT name FROM stocks WHERE 2 > 1 AND price > 120")
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        result = dra_execute(q, db, since=ts)
        assert len(result.delta) == 1


class TestProjectionSemantics:
    def test_invisible_modify_produces_no_delta(self, db, stocks, stocks_tids):
        q = parse_query("SELECT name FROM stocks WHERE price > 120")
        ts = db.now()
        # 150 -> 149: still >120, and name unchanged => invisible.
        stocks.modify(stocks_tids[120992], updates={"price": 149})
        result = dra_execute(q, db, since=ts)
        assert result.delta.is_empty()

    def test_visible_modify_after_projection(self, db, stocks, stocks_tids):
        q = parse_query("SELECT name, price FROM stocks WHERE price > 120")
        ts = db.now()
        stocks.modify(stocks_tids[120992], updates={"price": 149})
        result = dra_execute(q, db, since=ts)
        entry = result.delta.get(stocks_tids[120992])
        assert entry.kind is ChangeKind.MODIFY


class TestMetrics:
    def test_counts_delta_rows_not_base_scans(self, db, stocks, watch_query):
        # Single-relation select: DRA must not scan the base table.
        stocks.insert_many([(100 + i, "BULK", 500 + i) for i in range(50)])
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        metrics = Metrics()
        dra_execute(watch_query, db, since=ts, metrics=metrics)
        assert metrics[Metrics.DELTA_ROWS_READ] >= 1
        assert metrics[Metrics.ROWS_SCANNED] == 0
        assert metrics[Metrics.TERMS_EVALUATED] == 1


class TestMultiTableExecution:
    @pytest.fixture
    def jdb(self, db, stocks):
        trades = db.create_table(
            "trades",
            [("sid", AttributeType.INT), ("qty", AttributeType.INT)],
            indexes=[("sid",)],
        )
        trades.insert_many([(100000, 5), (120992, 7)])
        stocks.create_index(["sid"])
        return db, stocks, trades

    def test_term_count_grows_with_changed_relations(self, jdb):
        db, stocks, trades = jdb
        q = parse_query(
            "SELECT s.name, t.qty FROM stocks s, trades t WHERE s.sid = t.sid"
        )
        ts = db.now()
        stocks.insert((7, "MAC", 117))
        trades.insert((7, 3))
        result = dra_execute(q, db, since=ts)
        assert result.terms_evaluated == 3  # 2^2 - 1
        assert sorted(result.changed_aliases) == ["s", "t"]

    def test_one_sided_change_single_term(self, jdb):
        db, stocks, trades = jdb
        q = parse_query(
            "SELECT s.name, t.qty FROM stocks s, trades t WHERE s.sid = t.sid"
        )
        ts = db.now()
        trades.insert((100000, 9))
        result = dra_execute(q, db, since=ts)
        assert result.terms_evaluated == 1
        assert [e.kind for e in result.delta] == [ChangeKind.INSERT]

    def test_self_join_both_aliases_change(self, jdb):
        db, stocks, __ = jdb
        q = parse_query(
            "SELECT a.name FROM stocks a, stocks b "
            "WHERE a.sid = b.sid AND a.price > b.price"
        )
        ts = db.now()
        stocks.insert((7, "MAC", 117))
        result = dra_execute(q, db, since=ts)
        # Both aliases read the same changed table.
        assert sorted(result.changed_aliases) == ["a", "b"]
        assert result.terms_evaluated == 3
