"""Tests for term-operand machinery: index probes, scan fallbacks."""

import pytest

from repro import Database
from repro.metrics import Metrics
from repro.relational import AttributeType, parse_query
from repro.delta.capture import deltas_since
from repro.delta.propagate import propagate
from repro.dra.algorithm import dra_execute


def build(with_indexes):
    db = Database()
    r = db.create_table(
        "r",
        [("k", AttributeType.INT), ("v", AttributeType.INT)],
        indexes=[("k",)] if with_indexes else (),
    )
    s = db.create_table(
        "s",
        [("k", AttributeType.INT), ("w", AttributeType.INT)],
        indexes=[("k",)] if with_indexes else (),
    )
    r.insert_many([(i % 20, i) for i in range(200)])
    s.insert_many([(i % 20, i * 3) for i in range(100)])
    return db, r, s

JOIN = "SELECT r.v, s.w FROM r, s WHERE r.k = s.k"


class TestProbePaths:
    def test_indexed_join_probes_not_scans(self):
        db, r, s = build(with_indexes=True)
        ts = db.now()
        r.insert((5, 999))
        metrics = Metrics()
        result = dra_execute(
            parse_query(JOIN), db, since=ts, metrics=metrics
        )
        assert metrics[Metrics.ROWS_SCANNED] == 0
        assert metrics[Metrics.INDEX_PROBES] >= 1
        assert len(result.delta) == 5  # 5 partners with k=5 in s

    def test_unindexed_join_scans_once_per_operand(self):
        db, r, s = build(with_indexes=False)
        ts = db.now()
        r.insert((5, 999))
        metrics = Metrics()
        result = dra_execute(
            parse_query(JOIN), db, since=ts, metrics=metrics
        )
        # Transient hash build: one scan of s's old state, not of r.
        assert metrics[Metrics.ROWS_SCANNED] == len(s)
        assert len(result.delta) == 5

    def test_scan_cache_shared_across_probes(self):
        db, r, s = build(with_indexes=False)
        ts = db.now()
        with db.begin() as txn:
            for i in range(10):
                txn.insert_into(r, (i, 1000 + i))
        metrics = Metrics()
        dra_execute(parse_query(JOIN), db, since=ts, metrics=metrics)
        # Ten seeds, but the transient index over s is built once.
        assert metrics[Metrics.ROWS_SCANNED] == len(s)

    def test_results_identical_with_and_without_indexes(self):
        outcomes = []
        for with_indexes in (True, False):
            db, r, s = build(with_indexes)
            ts = db.now()
            with db.begin() as txn:
                txn.insert_into(r, (3, 777))
                txn.insert_into(s, (3, 888))
                txn.delete_from(s, next(iter(s.current.tids())))
            deltas = deltas_since([r, s], ts)
            result = dra_execute(parse_query(JOIN), db, deltas=deltas, ts=9)
            outcomes.append({(e.tid, e.old, e.new) for e in result.delta})
            assert result.delta == propagate(
                parse_query(JOIN), db.relation, deltas, ts=9
            )
        assert outcomes[0] == outcomes[1]


class TestCartesianTerms:
    def test_cartesian_term_uses_scan(self):
        db, r, s = build(with_indexes=True)
        q = parse_query("SELECT r.v, s.w FROM r, s WHERE r.v > 195")
        ts = db.now()
        r.insert((99, 500))
        metrics = Metrics()
        result = dra_execute(q, db, since=ts, metrics=metrics)
        # One new r row passing the filter x all 100 s rows.
        assert len(result.delta) == 100
        assert metrics[Metrics.ROWS_SCANNED] == len(s)


class TestCompositeJoinKeys:
    def test_two_edges_between_same_pair(self):
        db = Database()
        a = db.create_table(
            "a",
            [("x", AttributeType.INT), ("y", AttributeType.INT),
             ("v", AttributeType.INT)],
            indexes=[("x", "y")],
        )
        b = db.create_table(
            "b",
            [("x", AttributeType.INT), ("y", AttributeType.INT),
             ("w", AttributeType.INT)],
            indexes=[("x", "y")],
        )
        a.insert_many([(i % 3, i % 2, i) for i in range(30)])
        b.insert_many([(i % 3, i % 2, i * 2) for i in range(20)])
        q = parse_query(
            "SELECT a.v, b.w FROM a, b WHERE a.x = b.x AND a.y = b.y"
        )
        ts = db.now()
        a.insert((1, 1, 999))
        deltas = deltas_since([a, b], ts)
        result = dra_execute(q, db, deltas=deltas, ts=9)
        expected = propagate(q, db.relation, deltas, ts=9)
        assert result.delta == expected
        assert len(result.delta) > 0
