"""Experiment X2: exact reproduction of the paper's Example 2.

The continual query Q = σ_price>120(Stocks). After Example 1's
transaction T:

* the differential result contains the DEC modification (150 -> 149,
  both sides above 120) and the QLI deletion;
* the MAC insertion at price 117 does not appear (fails the predicate);
* deletions(σ_F(ΔStocks)) yields the removed-tuples notification;
* the complete current result equals E_i ∪ insertions − deletions.
"""

import pytest

from tests.conftest import run_example1_transaction

from repro.relational import parse_query
from repro.delta.capture import deltas_since
from repro.delta.differential import ChangeKind
from repro.delta.propagate import propagate
from repro.dra.algorithm import dra_execute


@pytest.fixture
def query():
    return parse_query("SELECT sid, name, price FROM stocks WHERE price > 120")


@pytest.fixture
def executed(db, stocks, stocks_tids, query):
    previous = db.query(query)  # E_i
    ts_last = db.now()
    run_example1_transaction(db, stocks, stocks_tids)
    result = dra_execute(query, db, since=ts_last, previous=previous)
    return db, stocks, stocks_tids, query, previous, ts_last, result


def test_previous_result_matches_paper(db, stocks, query):
    """Q(Stocks) = {(120992, DEC, 150), (092394, QLI, 145), (100000, DEC, 156)}.

    (The paper's prose lists the two rows it goes on to discuss; the
    fixture's third row DEC@156 also satisfies price > 120.)
    """
    values = db.query(query).values_set()
    assert (120992, "DEC", 150) in values
    assert (92394, "QLI", 145) in values


def test_differential_result_contents(executed):
    __, __, stocks_tids, __, __, __, result = executed
    delta = result.delta
    assert len(delta) == 2
    modify = delta.get(stocks_tids[120992])
    assert modify.kind is ChangeKind.MODIFY
    assert modify.old == (120992, "DEC", 150)
    assert modify.new == (120992, "DEC", 149)
    delete = delta.get(stocks_tids[92394])
    assert delete.kind is ChangeKind.DELETE
    assert delete.old == (92394, "QLI", 145)


def test_mac_insertion_invisible(executed):
    """(101088, MAC, 117) fails price > 120 on its only (new) side."""
    __, __, __, __, __, __, result = executed
    assert all(
        entry.new is None or entry.new[1] != "MAC" for entry in result.delta
    )


def test_deleted_tuple_notification(executed):
    """deletions(σ_F(ΔStocks)) shows tuples removed from the result."""
    __, __, __, __, __, __, result = executed
    values = result.deletions().values_set()
    assert values == {(92394, "QLI", 145), (120992, "DEC", 150)}


def test_complete_result_formula_matches_rerun(executed):
    db, __, __, query, __, __, result = executed
    assert result.complete_result() == db.query(query)


def test_equivalent_to_propagate(executed):
    """The paper's equivalence: DRA == Propagate on Example 2."""
    db, stocks, __, query, __, ts_last, result = executed
    expected = propagate(
        query, db.relation, deltas_since([stocks], ts_last), ts=result.ts
    )
    assert result.delta == expected


def test_search_space_limited_by_timestamp(db, stocks, stocks_tids, query):
    """Updates before the last execution never re-enter the delta."""
    stocks.modify(stocks_tids[100000], updates={"price": 160})
    ts_last = db.now()  # CQ executed here
    run_example1_transaction(db, stocks, stocks_tids)
    result = dra_execute(query, db, since=ts_last)
    assert stocks_tids[100000] not in result.delta
