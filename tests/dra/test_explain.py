"""Tests for the DRA explain/trace facility."""

from repro.relational import AttributeType, parse_query
from repro.dra.algorithm import dra_execute


def test_traces_absent_by_default(db, stocks):
    ts = db.now()
    stocks.insert((9, "SUN", 500))
    result = dra_execute(
        parse_query("SELECT name FROM stocks WHERE price > 120"),
        db,
        since=ts,
    )
    assert result.traces is None


def test_traces_one_per_term(db, stocks):
    trades = db.create_table(
        "trades",
        [("sid", AttributeType.INT), ("qty", AttributeType.INT)],
        indexes=[("sid",)],
    )
    stocks.create_index(["sid"])
    trades.insert_many([(100000, 5)])
    q = parse_query(
        "SELECT s.name, t.qty FROM stocks s, trades t WHERE s.sid = t.sid"
    )
    ts = db.now()
    stocks.insert((7, "MAC", 117))
    trades.insert((7, 3))
    result = dra_execute(q, db, since=ts, explain=True)
    assert len(result.traces) == 3
    substitutions = {frozenset(t.substituted) for t in result.traces}
    assert substitutions == {
        frozenset({"s"}),
        frozenset({"t"}),
        frozenset({"s", "t"}),
    }
    for trace in result.traces:
        assert trace.seed_rows >= 1
        assert trace.candidates >= 0


def test_explain_text(db, stocks):
    ts = db.now()
    stocks.insert((9, "SUN", 500))
    result = dra_execute(
        parse_query("SELECT name FROM stocks WHERE price > 120"),
        db,
        since=ts,
        explain=True,
    )
    text = result.explain()
    assert "1 term" in text
    assert "TermTrace" in text
    assert "result delta" in text


def test_explain_on_skipped_execution(db, stocks):
    ts = db.now()
    stocks.insert((9, "LOW", 10))
    result = dra_execute(
        parse_query("SELECT name FROM stocks WHERE price > 120"),
        db,
        since=ts,
        explain=True,
    )
    assert result.skipped
    assert "skipped" in result.explain()
