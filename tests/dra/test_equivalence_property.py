"""Property tests for the paper's equivalence theorem.

Section 4.2: "the differential re-evaluation of these queries is
functionally equivalent to the complete re-evaluation solution." Here
hypothesis generates arbitrary database states, arbitrary general
update histories (inserts, deletes, in-place modifications spread over
multiple transactions), and a family of SPJ queries; for every sample
DRA's output must equal Propagate's, and the assembled complete result
must equal re-running the query from scratch.
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.relational import AttributeType, parse_query
from repro.delta.capture import deltas_since
from repro.delta.propagate import propagate
from repro.dra.algorithm import dra_execute

SMALL = st.integers(min_value=0, max_value=4)


@st.composite
def update_ops(draw, max_ops=15):
    """A batch of abstract ops; indexes resolve against live tids later."""
    n = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    for __ in range(n):
        kind = draw(st.sampled_from(["insert", "delete", "modify"]))
        ops.append((kind, draw(SMALL), draw(SMALL), draw(st.integers(0, 10_000))))
    return ops


def build_r_s(r_rows, s_rows, with_indexes):
    db = Database()
    r = db.create_table(
        "r",
        [("a", AttributeType.INT), ("b", AttributeType.INT)],
        indexes=[("a",)] if with_indexes else (),
    )
    s = db.create_table(
        "s",
        [("a", AttributeType.INT), ("c", AttributeType.INT)],
        indexes=[("a",)] if with_indexes else (),
    )
    r.insert_many(r_rows)
    s.insert_many(s_rows)
    return db, r, s


def apply_ops(db, table, ops, txn_size=4):
    """Apply abstract ops; pick targets deterministically from the draw."""
    live = [row.tid for row in table.rows()]
    i = 0
    while i < len(ops):
        with db.begin() as txn:
            for kind, x, y, pick in ops[i : i + txn_size]:
                if kind == "insert" or not live:
                    live.append(txn.insert_into(table, (x, y)))
                elif kind == "delete":
                    tid = live.pop(pick % len(live))
                    txn.delete_from(table, tid)
                else:
                    tid = live[pick % len(live)]
                    if txn.read(table, tid) is not None:
                        txn.modify_in(table, tid, values=(x, y))
        i += txn_size


def assert_equivalent(db, tables, query, ts_last, previous):
    deltas = deltas_since(tables, ts_last)
    result = dra_execute(query, db, deltas=deltas, previous=previous, ts=99)
    expected = propagate(query, db.relation, deltas, ts=99)
    assert result.delta == expected
    assert result.complete_result() == db.query(query)


ROWS = st.lists(st.tuples(SMALL, SMALL), max_size=10)


class TestSelectEquivalence:
    @given(rows=ROWS, ops=update_ops(), threshold=SMALL)
    @settings(max_examples=60, deadline=None)
    def test_selection_query(self, rows, ops, threshold):
        db, r, __ = build_r_s(rows, [], with_indexes=False)
        query = parse_query(f"SELECT a, b FROM r WHERE b > {threshold}")
        previous = db.query(query)
        ts_last = db.now()
        apply_ops(db, r, ops)
        assert_equivalent(db, [r], query, ts_last, previous)

    @given(rows=ROWS, ops=update_ops(), threshold=SMALL)
    @settings(max_examples=40, deadline=None)
    def test_projection_collapses_changes(self, rows, ops, threshold):
        db, r, __ = build_r_s(rows, [], with_indexes=False)
        query = parse_query(f"SELECT a FROM r WHERE b >= {threshold}")
        previous = db.query(query)
        ts_last = db.now()
        apply_ops(db, r, ops)
        assert_equivalent(db, [r], query, ts_last, previous)

    @given(rows=ROWS, ops=update_ops())
    @settings(max_examples=30, deadline=None)
    def test_distance_predicate(self, rows, ops):
        db, r, __ = build_r_s(rows, [], with_indexes=False)
        query = parse_query("SELECT a, b FROM r WHERE ABS(b - 2) > 1")
        previous = db.query(query)
        ts_last = db.now()
        apply_ops(db, r, ops)
        assert_equivalent(db, [r], query, ts_last, previous)


class TestJoinEquivalence:
    @given(
        r_rows=ROWS,
        s_rows=ROWS,
        r_ops=update_ops(max_ops=8),
        s_ops=update_ops(max_ops=8),
        with_indexes=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_way_equijoin(self, r_rows, s_rows, r_ops, s_ops, with_indexes):
        db, r, s = build_r_s(r_rows, s_rows, with_indexes)
        query = parse_query(
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.b > 1"
        )
        previous = db.query(query)
        ts_last = db.now()
        apply_ops(db, r, r_ops)
        apply_ops(db, s, s_ops)
        assert_equivalent(db, [r, s], query, ts_last, previous)

    @given(
        r_rows=ROWS,
        s_rows=ROWS,
        r_ops=update_ops(max_ops=6),
        s_ops=update_ops(max_ops=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_join_with_residual_predicate(self, r_rows, s_rows, r_ops, s_ops):
        db, r, s = build_r_s(r_rows, s_rows, with_indexes=True)
        query = parse_query(
            "SELECT r.a, s.c FROM r, s WHERE r.a = s.a AND r.b > s.c"
        )
        previous = db.query(query)
        ts_last = db.now()
        apply_ops(db, r, r_ops)
        apply_ops(db, s, s_ops)
        assert_equivalent(db, [r, s], query, ts_last, previous)

    @given(
        r_rows=ROWS,
        s_rows=ROWS,
        r_ops=update_ops(max_ops=5),
        s_ops=update_ops(max_ops=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_cartesian_product(self, r_rows, s_rows, r_ops, s_ops):
        db, r, s = build_r_s(r_rows, s_rows, with_indexes=False)
        query = parse_query("SELECT r.a, s.c FROM r, s WHERE r.b > 2")
        previous = db.query(query)
        ts_last = db.now()
        apply_ops(db, r, r_ops)
        apply_ops(db, s, s_ops)
        assert_equivalent(db, [r, s], query, ts_last, previous)

    @given(rows=ROWS, ops=update_ops(max_ops=6))
    @settings(max_examples=30, deadline=None)
    def test_self_join(self, rows, ops):
        db, r, __ = build_r_s(rows, [], with_indexes=True)
        query = parse_query(
            "SELECT x.b AS xb, y.b AS yb FROM r x, r y "
            "WHERE x.a = y.a AND x.b > y.b"
        )
        previous = db.query(query)
        ts_last = db.now()
        apply_ops(db, r, ops)
        assert_equivalent(db, [r], query, ts_last, previous)


class TestAggregateEquivalence:
    @given(rows=ROWS, ops=update_ops())
    @settings(max_examples=40, deadline=None)
    def test_global_sum_count(self, rows, ops):
        from repro.dra.aggregates import DifferentialAggregate
        from repro.relational import evaluate_aggregate

        db, r, __ = build_r_s(rows, [], with_indexes=False)
        query = parse_query(
            "SELECT SUM(b) AS total, COUNT(*) AS n FROM r WHERE b > 1"
        )
        state = DifferentialAggregate(query, db)
        state.initialize()
        ts_last = db.now()
        apply_ops(db, r, ops)
        state.update(deltas_since([r], ts_last), ts=99)
        assert state.current() == evaluate_aggregate(query, db.relation)

    @given(rows=ROWS, ops=update_ops())
    @settings(max_examples=40, deadline=None)
    def test_grouped_min_max(self, rows, ops):
        from repro.dra.aggregates import DifferentialAggregate
        from repro.relational import evaluate_aggregate

        db, r, __ = build_r_s(rows, [], with_indexes=False)
        query = parse_query(
            "SELECT a, MIN(b) AS lo, MAX(b) AS hi FROM r GROUP BY a"
        )
        state = DifferentialAggregate(query, db)
        state.initialize()
        ts_last = db.now()
        apply_ops(db, r, ops)
        state.update(deltas_since([r], ts_last), ts=99)
        assert state.current() == evaluate_aggregate(query, db.relation)


class TestRepeatedExecutions:
    @given(
        rows=ROWS,
        batches=st.lists(update_ops(max_ops=6), min_size=2, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_chained_differential_executions(self, rows, batches):
        """E_1, E_2, ... each computed from the previous one only."""
        db, r, __ = build_r_s(rows, [], with_indexes=False)
        query = parse_query("SELECT a, b FROM r WHERE b > 1")
        current = db.query(query)
        ts_last = db.now()
        for ops in batches:
            apply_ops(db, r, ops)
            now = db.now()
            deltas = deltas_since([r], ts_last)
            result = dra_execute(
                query, db, deltas=deltas, previous=current, ts=now
            )
            current = result.complete_result()
            ts_last = now
            assert current == db.query(query)
