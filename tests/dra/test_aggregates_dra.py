"""Tests for differential aggregate maintenance."""

import pytest

from repro.errors import ReproError
from repro.relational import AttributeType, evaluate_aggregate, parse_query
from repro.delta.capture import deltas_since
from repro.delta.differential import ChangeKind
from repro.dra.aggregates import DifferentialAggregate


@pytest.fixture
def bankdb(db):
    accounts = db.create_table(
        "accounts",
        [
            ("owner", AttributeType.STR),
            ("branch", AttributeType.STR),
            ("amount", AttributeType.INT),
        ],
    )
    accounts.insert_many(
        [
            ("alice", "north", 100),
            ("bob", "north", 250),
            ("carol", "south", 40),
        ]
    )
    return db, accounts


def check_against_complete(state, db, query):
    assert state.current() == evaluate_aggregate(query, db.relation)


class TestGlobal:
    def test_initialize_matches_complete(self, bankdb):
        db, __ = bankdb
        q = parse_query("SELECT SUM(amount) AS total, COUNT(*) AS n FROM accounts")
        state = DifferentialAggregate(q, db)
        result = state.initialize()
        assert result.get(()) == (390, 3)

    def test_update_requires_initialize(self, bankdb):
        db, accounts = bankdb
        q = parse_query("SELECT SUM(amount) AS total FROM accounts")
        state = DifferentialAggregate(q, db)
        with pytest.raises(ReproError):
            state.update({}, ts=1)

    def test_incremental_sum_count(self, bankdb):
        db, accounts = bankdb
        q = parse_query("SELECT SUM(amount) AS total, COUNT(*) AS n FROM accounts")
        state = DifferentialAggregate(q, db)
        state.initialize()
        ts = db.now()
        accounts.insert(("dave", "south", 60))
        tid = next(r.tid for r in accounts.rows() if r.values[0] == "alice")
        accounts.modify(tid, updates={"amount": 90})
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        entry = delta.get(())
        assert entry.old == (390, 3) and entry.new == (440, 4)
        check_against_complete(state, db, q)

    def test_global_survives_emptying(self, bankdb):
        db, accounts = bankdb
        q = parse_query("SELECT SUM(amount) AS total, COUNT(*) AS n FROM accounts")
        state = DifferentialAggregate(q, db)
        state.initialize()
        ts = db.now()
        for row in list(accounts.rows()):
            accounts.delete(row.tid)
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        assert delta.get(()).new == (None, 0)
        check_against_complete(state, db, q)

    def test_no_change_empty_delta(self, bankdb):
        db, accounts = bankdb
        q = parse_query("SELECT COUNT(*) AS n FROM accounts")
        state = DifferentialAggregate(q, db)
        state.initialize()
        assert state.update({}, ts=db.now()).is_empty()


class TestPredicatedAggregates:
    def test_only_matching_rows_counted(self, bankdb):
        db, accounts = bankdb
        q = parse_query(
            "SELECT SUM(amount) AS total FROM accounts WHERE amount > 50"
        )
        state = DifferentialAggregate(q, db)
        assert state.initialize().get(()) == (350,)
        ts = db.now()
        tid = next(r.tid for r in accounts.rows() if r.values[0] == "carol")
        accounts.modify(tid, updates={"amount": 80})  # crosses into the band
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        assert delta.get(()).new == (430,)
        check_against_complete(state, db, q)


class TestGrouped:
    def test_group_rows_appear_and_disappear(self, bankdb):
        db, accounts = bankdb
        q = parse_query(
            "SELECT branch, COUNT(*) AS n FROM accounts GROUP BY branch"
        )
        state = DifferentialAggregate(q, db)
        state.initialize()
        ts = db.now()
        tid = next(r.tid for r in accounts.rows() if r.values[0] == "carol")
        accounts.delete(tid)  # south empties out
        accounts.insert(("erin", "west", 10))  # new group
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        south = delta.get(("south",))
        assert south.kind is ChangeKind.DELETE
        west = delta.get(("west",))
        assert west.kind is ChangeKind.INSERT and west.new == ("west", 1)
        check_against_complete(state, db, q)

    def test_group_migration_on_key_change(self, bankdb):
        db, accounts = bankdb
        q = parse_query(
            "SELECT branch, SUM(amount) AS total FROM accounts GROUP BY branch"
        )
        state = DifferentialAggregate(q, db)
        state.initialize()
        ts = db.now()
        tid = next(r.tid for r in accounts.rows() if r.values[0] == "bob")
        accounts.modify(tid, updates={"branch": "south"})
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        assert delta.get(("north",)).new == ("north", 100)
        assert delta.get(("south",)).new == ("south", 290)
        check_against_complete(state, db, q)


class TestMinMax:
    def test_min_max_with_extremum_deletion(self, bankdb):
        db, accounts = bankdb
        q = parse_query(
            "SELECT MIN(amount) AS lo, MAX(amount) AS hi FROM accounts"
        )
        state = DifferentialAggregate(q, db)
        assert state.initialize().get(()) == (40, 250)
        ts = db.now()
        tid = next(r.tid for r in accounts.rows() if r.values[2] == 250)
        accounts.delete(tid)  # removes the max
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        assert delta.get(()).new == (40, 100)
        check_against_complete(state, db, q)
