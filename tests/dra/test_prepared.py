"""Tests for the registration-time compilation layer (prepared plans).

The contract of :mod:`repro.dra.prepared` is twofold: a prepared
execution must be indistinguishable from an unprepared one (same delta,
entry for entry), and after the one-time compile a refresh must never
call the predicate planner again.
"""

import pytest

from repro.metrics import Metrics
from repro.relational import AttributeType, parse_query
from repro.relational import planning
from repro.dra.algorithm import dra_execute
from repro.dra.prepared import prepare_cq

JOIN_SQL = (
    "SELECT stocks.name AS name, trades.qty AS qty "
    "FROM stocks, trades "
    "WHERE stocks.sid = trades.sid AND stocks.price > 100"
)


@pytest.fixture
def trades(db, stocks):
    table = db.create_table(
        "trades", [("sid", AttributeType.INT), ("qty", AttributeType.INT)]
    )
    table.insert_many([(100000, 5), (92394, 7), (120992, 2)])
    return table


@pytest.fixture
def join_query():
    return parse_query(JOIN_SQL)


def delta_signature(result):
    return sorted(
        (entry.tid, entry.old, entry.new) for entry in result.delta
    )


class TestEquivalence:
    def test_prepared_matches_unprepared(self, db, stocks, trades, join_query):
        prepared = prepare_cq(join_query, db)
        for sid, price, qty in [(55, 300, 9), (92394, 90, 1), (100000, 101, 4)]:
            ts = db.now()
            stocks.insert((sid, f"S{sid}", price))
            trades.insert((sid, qty))
            bare = dra_execute(join_query, db, since=ts)
            fast = dra_execute(join_query, db, since=ts, prepared=prepared)
            assert delta_signature(fast) == delta_signature(bare)
            assert fast.changed_aliases == bare.changed_aliases
            assert fast.terms_evaluated == bare.terms_evaluated

    def test_never_matches_gate(self, db, stocks):
        query = parse_query("SELECT name FROM stocks WHERE 1 > 2")
        prepared = prepare_cq(query, db)
        assert prepared.never_matches
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        result = dra_execute(query, db, since=ts, prepared=prepared)
        assert result.delta.is_empty()
        assert result.terms_evaluated == 0


class TestNoReplanning:
    def test_prepared_refreshes_never_plan(self, db, stocks, trades, join_query):
        prepared = prepare_cq(join_query, db)
        before = planning.plan_calls
        for i in range(5):
            ts = db.now()
            stocks.insert((1000 + i, "NEW", 200 + i))
            trades.insert((1000 + i, i))
            dra_execute(join_query, db, since=ts, prepared=prepared)
        assert planning.plan_calls == before

    def test_unprepared_replans_every_call(self, db, stocks, trades, join_query):
        before = planning.plan_calls
        ts = db.now()
        stocks.insert((9, "SUN", 500))
        dra_execute(join_query, db, since=ts)
        dra_execute(join_query, db, since=ts)
        assert planning.plan_calls == before + 2

    def test_prepare_charges_counters(self, db, stocks, trades, join_query):
        metrics = Metrics()
        prepare_cq(join_query, db, metrics=metrics)
        assert metrics[Metrics.PLANS_PREPARED] == 1
        assert metrics[Metrics.PREDICATE_PLANS] == 1


class TestAutoIndex:
    def test_join_columns_get_indexes(self, db, stocks, trades, join_query):
        sid_pos = trades.schema.position("sid")
        assert trades.indexes.best_for((sid_pos,)) is None
        prepare_cq(join_query, db)
        assert trades.indexes.best_for((sid_pos,)) is not None

    def test_auto_index_false_mutates_nothing(self, db, stocks, trades, join_query):
        version = trades.indexes.version
        prepare_cq(join_query, db, auto_index=False)
        assert trades.indexes.version == version

    def test_base_scans_counted_without_indexes(
        self, db, stocks, trades, join_query
    ):
        metrics = Metrics()
        prepared = prepare_cq(join_query, db, metrics=metrics, auto_index=False)
        ts = db.now()
        stocks.insert((55, "NEW", 300))
        trades.insert((55, 9))
        dra_execute(join_query, db, since=ts, metrics=metrics, prepared=prepared)
        # Probing unindexed trades.sid degrades to a transient scan.
        assert metrics[Metrics.BASE_SCANS] > 0

    def test_no_base_scans_with_auto_indexes(
        self, db, stocks, trades, join_query
    ):
        metrics = Metrics()
        prepared = prepare_cq(join_query, db, metrics=metrics)
        ts = db.now()
        stocks.insert((55, "NEW", 300))
        trades.insert((55, 9))
        dra_execute(join_query, db, since=ts, metrics=metrics, prepared=prepared)
        assert metrics[Metrics.BASE_SCANS] == 0


class TestStaleness:
    def test_fresh_plan_is_valid(self, db, stocks, trades, join_query):
        prepared = prepare_cq(join_query, db)
        assert prepared.is_valid(db)

    def test_new_index_invalidates(self, db, stocks, trades, join_query):
        prepared = prepare_cq(join_query, db)
        trades.create_index(["qty"])
        assert not prepared.is_valid(db)

    def test_dropped_table_invalidates(self, db, stocks, join_query):
        trades = db.create_table(
            "trades", [("sid", AttributeType.INT), ("qty", AttributeType.INT)]
        )
        prepared = prepare_cq(join_query, db)
        assert prepared.is_valid(db)
        db.drop_table("trades")
        db.create_table(
            "trades", [("sid", AttributeType.INT), ("qty", AttributeType.INT)]
        )
        # Same name and layout, but a different schema object: the plan
        # compiled accessors against the old catalog entry.
        assert not prepared.is_valid(db)
