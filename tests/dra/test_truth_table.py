"""Tests for Algorithm 1 step 1 (the substitution truth table)."""

import pytest

from repro.dra.truth_table import TruthTable


def test_term_count_is_two_to_k_minus_one():
    for k in range(0, 5):
        aliases = [f"r{i}" for i in range(6)]
        table = TruthTable(aliases, aliases[:k])
        assert table.term_count == 2**k - 1
        assert len(list(table.rows())) == table.term_count


def test_rows_are_nonempty_subsets_of_changed():
    table = TruthTable(["a", "b", "c"], ["a", "c"])
    rows = list(table.rows())
    assert frozenset({"a"}) in rows
    assert frozenset({"c"}) in rows
    assert frozenset({"a", "c"}) in rows
    assert len(rows) == 3
    assert all(row for row in rows)  # no empty row


def test_rows_ordered_smallest_first():
    table = TruthTable(["a", "b", "c"], ["a", "b", "c"])
    sizes = [len(row) for row in table.rows()]
    assert sizes == sorted(sizes)


def test_binary_rows_match_paper_form():
    table = TruthTable(["a", "b"], ["a", "b"])
    binary = table.as_binary_rows()
    assert sorted(binary) == [(0, 1), (1, 0), (1, 1)]


def test_changed_preserves_query_order():
    table = TruthTable(["a", "b", "c"], ["c", "a"])
    assert table.changed == ("a", "c")


def test_unknown_changed_alias_rejected():
    with pytest.raises(ValueError):
        TruthTable(["a"], ["zz"])


def test_no_changes_no_terms():
    table = TruthTable(["a", "b"], [])
    assert table.term_count == 0
    assert list(table.rows()) == []
