"""Tests for irrelevant-update detection (paper Section 5.2)."""

from repro.relational import parse_query
from repro.delta.capture import deltas_since
from repro.dra.relevance import is_relevant, relevant_entry_counts


def scopes_for(db, query):
    return {ref.alias: db.table(ref.table).schema for ref in query.relations}


def test_update_outside_selection_band_is_irrelevant(db, stocks):
    q = parse_query("SELECT name FROM stocks WHERE price > 120")
    ts = db.now()
    stocks.insert((9, "LOW", 10))
    deltas = deltas_since([stocks], ts)
    assert not is_relevant(q, scopes_for(db, q), deltas)


def test_update_inside_band_is_relevant(db, stocks):
    q = parse_query("SELECT name FROM stocks WHERE price > 120")
    ts = db.now()
    stocks.insert((9, "HI", 500))
    deltas = deltas_since([stocks], ts)
    assert is_relevant(q, scopes_for(db, q), deltas)


def test_modify_leaving_band_is_relevant(db, stocks, stocks_tids):
    """old side passes, new side fails: the row leaves the result."""
    q = parse_query("SELECT name FROM stocks WHERE price > 120")
    ts = db.now()
    stocks.modify(stocks_tids[120992], updates={"price": 10})
    deltas = deltas_since([stocks], ts)
    assert is_relevant(q, scopes_for(db, q), deltas)


def test_modify_entirely_below_band_is_irrelevant(db, stocks):
    q = parse_query("SELECT name FROM stocks WHERE price > 120")
    tid = stocks.insert((9, "LOW", 10))
    ts = db.now()
    stocks.modify(tid, updates={"price": 20})
    deltas = deltas_since([stocks], ts)
    assert not is_relevant(q, scopes_for(db, q), deltas)


def test_counts_per_alias(db, stocks):
    q = parse_query("SELECT name FROM stocks WHERE price > 120")
    ts = db.now()
    stocks.insert((8, "LOW", 10))
    stocks.insert((9, "HI", 500))
    deltas = deltas_since([stocks], ts)
    counts = relevant_entry_counts(q, scopes_for(db, q), deltas)
    assert counts["stocks"] == (1, 2)


def test_no_local_predicate_everything_relevant(db, stocks):
    q = parse_query("SELECT name FROM stocks")
    ts = db.now()
    stocks.insert((9, "ANY", 1))
    deltas = deltas_since([stocks], ts)
    counts = relevant_entry_counts(q, scopes_for(db, q), deltas)
    assert counts["stocks"] == (1, 1)


def test_empty_deltas_irrelevant(db, stocks):
    q = parse_query("SELECT name FROM stocks")
    assert not is_relevant(q, scopes_for(db, q), {})
