"""Property suite: PredicateIndex routing ≡ the naive relevance oracle.

The fan-out layer's whole contract is exactness: for any schema, any
set of subscription predicates (equalities, ranges, conjunctions,
disjunctions, negations), and any delta batch (inserts, deletes,
modifies, null attribute values), :meth:`PredicateIndex.match_batch`
must return precisely the subscriptions the paper's Section 5.2
relevance test (:func:`repro.dra.relevance.is_relevant`) would select
by probing every subscription one at a time. Hypothesis drives the
randomization; the oracle is the spec.
"""

from hypothesis import given, settings, strategies as st

from repro.metrics import Metrics
from repro.relational.algebra import RelationRef, SPJQuery
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import (
    Comparison,
    Not,
    Or,
    TruePredicate,
    conjunction,
)
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.dra.predindex import PredicateIndex
from repro.dra.relevance import is_relevant

OPS = ["=", "!=", "<", "<=", ">", ">="]


@st.composite
def schemas(draw):
    """2–5 columns, mixed INT/STR, named c0..c4."""
    n = draw(st.integers(min_value=2, max_value=5))
    types = [
        draw(st.sampled_from([AttributeType.INT, AttributeType.STR]))
        for __ in range(n)
    ]
    return Schema.of(*[(f"c{i}", t) for i, t in enumerate(types)])


def _value_strategy(column_type):
    if column_type is AttributeType.INT:
        return st.integers(min_value=-5, max_value=15)
    return st.sampled_from(["a", "b", "c", "d", "e"])


@st.composite
def atoms(draw, schema):
    """One column-vs-literal comparison, literal on either side."""
    position = draw(st.integers(0, len(schema) - 1))
    attribute = schema.attributes[position]
    op = draw(st.sampled_from(OPS))
    value = draw(_value_strategy(attribute.type))
    ref = ColumnRef(attribute.name)
    if draw(st.booleans()):
        return Comparison(op, ref, Literal(value))
    return Comparison(op, Literal(value), ref)


@st.composite
def local_predicates(draw, schema):
    """A conjunction of 0–3 conjuncts: atoms, ORs of atoms, NOTs."""
    n = draw(st.integers(min_value=0, max_value=3))
    conjuncts = []
    for __ in range(n):
        shape = draw(st.sampled_from(["atom", "atom", "atom", "or", "not"]))
        if shape == "atom":
            conjuncts.append(draw(atoms(schema)))
        elif shape == "or":
            conjuncts.append(Or(draw(atoms(schema)), draw(atoms(schema))))
        else:
            conjuncts.append(Not(draw(atoms(schema))))
    return conjunction(conjuncts)


@st.composite
def delta_batches(draw, schema):
    """A consolidated batch over one table: nulls included."""
    n = draw(st.integers(min_value=0, max_value=8))

    def row():
        return tuple(
            draw(
                st.one_of(
                    st.none(), _value_strategy(attribute.type)
                )
            )
            for attribute in schema.attributes
        )

    entries = []
    for tid in range(n):
        kind = draw(st.sampled_from(["insert", "delete", "modify"]))
        old = None if kind == "insert" else row()
        new = None if kind == "delete" else row()
        entries.append(DeltaEntry(tid, old, new, ts=tid + 1))
    return DeltaRelation(schema, entries)


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_index_matches_oracle_single_table(data):
    schema = data.draw(schemas())
    n_subs = data.draw(st.integers(min_value=1, max_value=8))
    scopes = {"t": schema}

    index = PredicateIndex(Metrics())
    queries = {}
    for i in range(n_subs):
        predicate = data.draw(local_predicates(schema))
        query = SPJQuery([RelationRef("t")], predicate)
        queries[f"sub{i}"] = query
        index.add(f"sub{i}", query, scopes)

    delta = data.draw(delta_batches(schema))
    deltas = {"t": delta}

    expected = {
        sub_id
        for sub_id, query in queries.items()
        if is_relevant(query, scopes, deltas)
    }
    assert index.match_batch(deltas) == expected

    # The targeted single-subscription check agrees entry by entry.
    for sub_id in queries:
        assert index.matches(sub_id, deltas) == (sub_id in expected)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_index_matches_oracle_self_join(data):
    """Two aliases over one table: a subscription is affected when any
    alias's local slice is touched — exactly the oracle's disjunction
    over aliases."""
    schema = data.draw(schemas())
    scopes_template = {"a": schema, "b": schema}

    index = PredicateIndex()
    queries = {}
    n_subs = data.draw(st.integers(min_value=1, max_value=5))
    join = Comparison("=", ColumnRef("c0", "a"), ColumnRef("c0", "b"))
    for i in range(n_subs):
        local_a = data.draw(local_predicates(schema))
        local_b = data.draw(local_predicates(schema))
        qualified = conjunction(
            [join, _qualify(local_a, "a"), _qualify(local_b, "b")]
        )
        query = SPJQuery(
            [RelationRef("t", "a"), RelationRef("t", "b")], qualified
        )
        queries[f"sub{i}"] = query
        index.add(f"sub{i}", query, scopes_template)

    delta = data.draw(delta_batches(schema))
    deltas = {"t": delta}
    expected = {
        sub_id
        for sub_id, query in queries.items()
        if is_relevant(query, scopes_template, deltas)
    }
    assert index.match_batch(deltas) == expected


def _qualify_expr(expression, alias):
    if isinstance(expression, ColumnRef):
        return ColumnRef(expression.name, alias)
    return expression


def _qualify(predicate, alias):
    """Rewrite a single-relation predicate's refs to a fixed alias."""
    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.op,
            _qualify_expr(predicate.left, alias),
            _qualify_expr(predicate.right, alias),
        )
    if isinstance(predicate, Or):
        return Or(*[_qualify(child, alias) for child in predicate.children])
    if isinstance(predicate, Not):
        return Not(_qualify(predicate.child, alias))
    if isinstance(predicate, TruePredicate):
        return predicate
    children = [_qualify(child, alias) for child in predicate.conjuncts()]
    return conjunction(children)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_index_stable_under_removal(data):
    """Removing a subscription removes exactly its matches — the index
    stays exact for the survivors."""
    schema = data.draw(schemas())
    scopes = {"t": schema}
    index = PredicateIndex()
    queries = {}
    for i in range(data.draw(st.integers(min_value=2, max_value=6))):
        query = SPJQuery(
            [RelationRef("t")], data.draw(local_predicates(schema))
        )
        queries[f"sub{i}"] = query
        index.add(f"sub{i}", query, scopes)

    removed = data.draw(st.sampled_from(sorted(queries)))
    assert index.remove(removed)
    del queries[removed]
    assert removed not in index

    delta = data.draw(delta_batches(schema))
    deltas = {"t": delta}
    expected = {
        sub_id
        for sub_id, query in queries.items()
        if is_relevant(query, scopes, deltas)
    }
    assert index.match_batch(deltas) == expected
