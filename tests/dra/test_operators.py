"""Tests for the paper-named operators DiffSelect, DiffProj, DiffJoin.

Each is checked against its Propagate instantiation — the paper's
functional-equivalence theorem for the individual operators.
"""

import pytest

from repro.relational import AttributeType, parse_query
from repro.relational.expressions import col, lit
from repro.relational.predicates import gt
from repro.relational.schema import Schema
from repro.delta.capture import deltas_since
from repro.delta.differential import ChangeKind, DeltaEntry, DeltaRelation
from repro.delta.propagate import propagate
from repro.dra.operators import diff_join, diff_project, diff_select

SCHEMA = Schema.of(("name", AttributeType.STR), ("price", AttributeType.INT))


@pytest.fixture
def delta():
    return DeltaRelation(
        SCHEMA,
        [
            DeltaEntry(1, None, ("MAC", 117), 1),          # insert, fails F
            DeltaEntry(2, None, ("SUN", 300), 1),          # insert, passes F
            DeltaEntry(3, ("QLI", 145), None, 1),          # delete, passed F
            DeltaEntry(4, ("LOW", 10), None, 1),           # delete, failed F
            DeltaEntry(5, ("DEC", 150), ("DEC", 149), 1),  # modify T->T
            DeltaEntry(6, ("HAL", 130), ("HAL", 90), 1),   # modify T->F
            DeltaEntry(7, ("IBM", 80), ("IBM", 200), 1),   # modify F->T
            DeltaEntry(8, ("ZIP", 5), ("ZIP", 7), 1),      # modify F->F
        ],
    )


class TestDiffSelect:
    def test_four_modification_cases(self, delta):
        out = diff_select(delta, gt(col("price"), lit(120)))
        assert out.get(5).kind is ChangeKind.MODIFY  # both sides pass
        assert out.get(6).kind is ChangeKind.DELETE  # left the result
        assert out.get(6).old == ("HAL", 130)
        assert out.get(7).kind is ChangeKind.INSERT  # entered the result
        assert out.get(7).new == ("IBM", 200)
        assert out.get(8) is None  # never in the result

    def test_insert_delete_cases(self, delta):
        out = diff_select(delta, gt(col("price"), lit(120)))
        assert out.get(1) is None
        assert out.get(2).kind is ChangeKind.INSERT
        assert out.get(3).kind is ChangeKind.DELETE
        assert out.get(4) is None

    def test_true_predicate_passes_everything(self, delta):
        from repro.relational.predicates import TruePredicate

        assert len(diff_select(delta, TruePredicate())) == len(delta)


class TestDiffProject:
    def test_projection_drops_invisible_modifies(self, delta):
        out = diff_project(delta, ["name"])
        # Modifies that change only price vanish under π_name.
        assert out.get(5) is None and out.get(8) is None
        assert out.get(2).new == ("SUN",)
        assert out.get(3).old == ("QLI",)

    def test_projection_schema(self, delta):
        out = diff_project(delta, ["price"])
        assert out.schema.names == ("price",)
        assert out.get(5).old == (150,) and out.get(5).new == (149,)

    def test_projection_keeps_tids(self, delta):
        out = diff_project(delta, ["name"])
        assert all(entry.tid in delta for entry in out)


class TestDiffJoin:
    def make_db(self):
        from repro import Database

        db = Database()
        stocks = db.create_table(
            "stocks",
            [("sid", AttributeType.INT), ("name", AttributeType.STR), ("price", AttributeType.INT)],
            indexes=[("sid",)],
        )
        trades = db.create_table(
            "trades",
            [("sid", AttributeType.INT), ("qty", AttributeType.INT)],
            indexes=[("sid",)],
        )
        stocks.insert_many([(1, "DEC", 156), (2, "QLI", 145), (3, "IBM", 80)])
        trades.insert_many([(1, 5), (3, 7), (1, 2)])
        return db, stocks, trades

    def test_diff_join_matches_propagate(self):
        db, stocks, trades = self.make_db()
        q = parse_query(
            "SELECT s.name, t.qty FROM stocks s, trades t "
            "WHERE s.sid = t.sid AND s.price > 100"
        )
        ts = db.now()
        with db.begin() as txn:
            txn.insert_into(trades, (2, 9))     # new partner for QLI
            txn.insert_into(stocks, (4, "SUN", 500))
            txn.insert_into(trades, (4, 1))     # both sides new
        deltas = deltas_since([stocks, trades], ts)
        got = diff_join(q, db, deltas, ts=db.now())
        expected = propagate(q, db.relation, deltas, ts=db.now())
        assert got == expected
        assert len(got) == 2

    def test_diff_join_handles_modify_breaking_join(self):
        db, stocks, trades = self.make_db()
        q = parse_query(
            "SELECT s.name, t.qty FROM stocks s, trades t WHERE s.sid = t.sid"
        )
        ts = db.now()
        tid = next(r.tid for r in trades.rows() if r.values == (3, 7))
        trades.modify(tid, updates={"sid": 2})  # IBM loses, QLI gains
        deltas = deltas_since([stocks, trades], ts)
        got = diff_join(q, db, deltas, ts=db.now())
        expected = propagate(q, db.relation, deltas, ts=db.now())
        assert got == expected
        kinds = sorted(e.kind.value for e in got)
        assert kinds == ["delete", "insert"]

    def test_diff_join_requires_two_relations(self):
        from repro.errors import QueryError

        db, stocks, trades = self.make_db()
        q = parse_query("SELECT name FROM stocks")
        with pytest.raises(QueryError):
            diff_join(q, db, {})
