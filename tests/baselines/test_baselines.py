"""Tests for the three comparison baselines (and E9's correctness demo)."""

import pytest

from repro.metrics import Metrics
from repro.relational import parse_query
from repro.baselines.naive import NaivePoller
from repro.baselines.reeval import ReevaluationRefresher
from repro.baselines.terry import AppendOnlyViolation, TerryContinuousQuery
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 500"


@pytest.fixture
def market(db):
    market = StockMarket(db, seed=21)
    market.populate(200)
    return market


class TestReevaluation:
    def test_matches_truth_under_general_updates(self, db, market):
        q = parse_query(WATCH)
        refresher = ReevaluationRefresher(q, db)
        for __ in range(3):
            market.tick(40, p_insert=0.2, p_delete=0.2)
            delta = refresher.refresh()
            assert refresher.result == db.query(q)
        assert refresher.refreshes == 3

    def test_delta_reflects_changes_only(self, db, market):
        q = parse_query(WATCH)
        refresher = ReevaluationRefresher(q, db)
        delta = refresher.refresh()
        assert delta.is_empty()  # nothing changed

    def test_scans_base_every_refresh(self, db, market):
        metrics = Metrics()
        q = parse_query(WATCH)
        refresher = ReevaluationRefresher(q, db, metrics=metrics)
        base = metrics[Metrics.ROWS_SCANNED]
        refresher.refresh()
        assert metrics[Metrics.ROWS_SCANNED] == base + 200


class TestTerry:
    def test_correct_on_append_only(self, db, market):
        q = parse_query(WATCH)
        terry = TerryContinuousQuery(q, db, strict=True)
        market.tick(50, p_insert=1.0)  # pure appends
        new = terry.refresh()
        assert terry.result == db.query(q)
        assert all(v[2] > 500 for v in new.values_set())

    def test_incremental_only_new_matches_reported(self, db, market):
        q = parse_query(WATCH)
        terry = TerryContinuousQuery(q, db, strict=True)
        market.tick(30, p_insert=1.0)
        first = terry.refresh()
        market.tick(30, p_insert=1.0)
        second = terry.refresh()
        assert not set(first.tids()) & set(second.tids())

    def test_strict_mode_raises_on_modify(self, db, market):
        q = parse_query(WATCH)
        terry = TerryContinuousQuery(q, db, strict=True)
        market.tick(10)  # modifications
        with pytest.raises(AppendOnlyViolation):
            terry.refresh()

    def test_nonstrict_mode_goes_stale(self, db, market):
        """E9's motivation: deletions are invisible to continuous
        queries, so the result set is a superset of the truth."""
        q = parse_query(WATCH)
        terry = TerryContinuousQuery(q, db, strict=False)
        market.tick(80, p_delete=0.8, p_insert=0.2)
        terry.refresh()
        truth = db.query(q)
        assert terry.ignored_updates > 0
        assert len(terry.result) > len(truth)
        # Every true row is present (it never loses data)...
        stale_tids = set(terry.result.tids())
        assert set(truth.tids()) <= stale_tids or len(truth) == 0

    def test_join_on_append_only(self, db):
        market = StockMarket(db, seed=22, with_trades=True)
        market.populate(50, trades_per_stock=1)
        q = parse_query(
            "SELECT s.name, t.shares FROM stocks s, trades t "
            "WHERE s.sid = t.sid AND s.price > 500"
        )
        terry = TerryContinuousQuery(q, db, strict=True)
        with db.begin() as txn:
            txn.insert_into(market.stocks, (9001, "NEW", 900))
            txn.insert_into(market.trades, (9001, 10, 9000))
        terry.refresh()
        assert terry.result == db.query(q)


class TestNaive:
    def test_poll_ships_everything(self, db, market):
        q = parse_query(WATCH)
        poller = NaivePoller(q, db)
        result = poller.poll()
        assert result == db.query(q)
        assert poller.polls == 1

    def test_poll_filtered_shows_only_new_values(self, db, market):
        q = parse_query(WATCH)
        poller = NaivePoller(q, db)
        ts = db.now()
        market.modify_in_band(5, 900, 1000)
        fresh = poller.poll_filtered()
        # Every reported row is genuinely new by value.
        assert all(v[2] >= 900 for v in fresh.values_set())

    def test_poll_filtered_still_scans_base(self, db, market):
        metrics = Metrics()
        q = parse_query(WATCH)
        poller = NaivePoller(q, db, metrics=metrics)
        base = metrics[Metrics.ROWS_SCANNED]
        poller.poll_filtered()
        assert metrics[Metrics.ROWS_SCANNED] == base + 200
