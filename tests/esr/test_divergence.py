"""Tests for divergence-controlled epsilon queries (ESR substrate)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.errors import ReproError
from repro.esr.divergence import EpsilonScan, UpdateIntent
from repro.relational import AttributeType


def build_accounts(n, seed=1):
    rng = random.Random(seed)
    db = Database()
    accounts = db.create_table(
        "accounts",
        [("owner", AttributeType.STR), ("amount", AttributeType.INT)],
    )
    tids = accounts.insert_many(
        (f"c{i}", rng.randrange(100, 1000)) for i in range(n)
    )
    return db, accounts, tids


class TestUpdateIntent:
    def test_dry_run_resolves_old_values(self):
        db, accounts, tids = build_accounts(3)
        intent = UpdateIntent().modify(tids[0], {"amount": 1}).delete(tids[1])
        effects = intent.dry_run(accounts)
        assert effects[0][0] == tids[0]
        assert effects[0][2][1] == 1
        assert effects[1][2] is None

    def test_dry_run_chains_within_intent(self):
        db, accounts, tids = build_accounts(1)
        intent = (
            UpdateIntent()
            .modify(tids[0], {"amount": 5})
            .modify(tids[0], {"amount": 9})
        )
        effects = intent.dry_run(accounts)
        assert effects[1][1][1] == 5  # second op sees the first's result

    def test_dry_run_skips_dead_tids(self):
        db, accounts, tids = build_accounts(1)
        accounts.delete(tids[0])
        intent = UpdateIntent().modify(tids[0], {"amount": 5})
        assert intent.dry_run(accounts) == []

    def test_apply_is_one_transaction(self):
        db, accounts, tids = build_accounts(2)
        batches = []
        accounts.subscribe(lambda t, r: batches.append(len(r)))
        UpdateIntent().modify(tids[0], {"amount": 1}).insert(("x", 2)).apply(
            db, accounts
        )
        assert batches == [2]


class TestDivergenceControl:
    def test_zero_epsilon_is_serializable(self):
        """ε = 0: every conflicting update blocks; the answer is exact."""
        db, accounts, tids = build_accounts(500)
        scan = EpsilonScan(db, accounts, "amount", epsilon=0.0, chunk_size=50)
        intents = [
            UpdateIntent().modify(tids[i], {"amount": 5_000})
            for i in range(0, 100, 10)
        ]
        report = scan.run(intents)
        # Conflicting intents (targets in the read prefix) deferred;
        # the reported answer equals the scan-end exact value.
        assert report.error == 0
        assert report.imported == 0
        assert report.deferred_final > 0

    def test_generous_epsilon_admits_everything(self):
        db, accounts, tids = build_accounts(500)
        scan = EpsilonScan(
            db, accounts, "amount", epsilon=10**9, chunk_size=50
        )
        intents = [
            UpdateIntent().modify(tids[i], {"amount": 5_000})
            for i in range(0, 100, 10)
        ]
        report = scan.run(intents)
        assert report.deferred_final == 0
        assert report.admitted == len(intents)
        assert report.error <= report.imported <= 10**9

    def test_error_bounded_by_epsilon(self):
        db, accounts, tids = build_accounts(1_000, seed=5)
        epsilon = 2_000.0
        scan = EpsilonScan(db, accounts, "amount", epsilon, chunk_size=100)
        rng = random.Random(9)
        intents = [
            UpdateIntent().modify(
                tids[rng.randrange(len(tids))],
                {"amount": rng.randrange(100, 1000)},
            )
            for __ in range(60)
        ]
        report = scan.run(intents)
        assert report.error <= report.imported + 1e-9
        assert report.imported <= epsilon + 1e-9

    def test_updates_ahead_of_cursor_are_free(self):
        """Changes the scan has not yet reached import nothing."""
        db, accounts, tids = build_accounts(500)
        scan = EpsilonScan(db, accounts, "amount", epsilon=0.0, chunk_size=50)
        # All targets live near the end of the tid order: by the time
        # any chunk boundary offers them, most are still unread.
        intents = [
            UpdateIntent().modify(tids[-1 - i], {"amount": 777})
            for i in range(5)
        ]
        report = scan.run(intents)
        assert report.admitted == 5
        assert report.error == 0  # scan read the new values itself

    def test_inserts_never_conflict(self):
        db, accounts, tids = build_accounts(300)
        scan = EpsilonScan(db, accounts, "amount", epsilon=0.0, chunk_size=50)
        intents = [UpdateIntent().insert((f"new{i}", 100)) for i in range(5)]
        report = scan.run(intents)
        assert report.admitted == 5
        # Fresh tids land ahead of the cursor: the scan counts them.
        assert report.error == 0

    def test_validation(self):
        db, accounts, __ = build_accounts(1)
        with pytest.raises(ReproError):
            EpsilonScan(db, accounts, "amount", epsilon=-1.0)
        with pytest.raises(ReproError):
            EpsilonScan(db, accounts, "amount", epsilon=1.0, chunk_size=0)


@given(
    seed=st.integers(0, 1_000),
    epsilon=st.sampled_from([0.0, 500.0, 5_000.0, 10**9]),
    n_intents=st.integers(0, 30),
)
@settings(max_examples=40, deadline=None)
def test_esr_guarantee_property(seed, epsilon, n_intents):
    """|reported − exact_at_scan_end| ≤ imported ≤ ε, always."""
    rng = random.Random(seed)
    db, accounts, tids = build_accounts(200, seed=seed)
    intents = []
    for __ in range(n_intents):
        roll = rng.random()
        if roll < 0.5:
            intents.append(
                UpdateIntent().modify(
                    tids[rng.randrange(len(tids))],
                    {"amount": rng.randrange(100, 1000)},
                )
            )
        elif roll < 0.75:
            intents.append(UpdateIntent().delete(tids[rng.randrange(len(tids))]))
        else:
            intents.append(UpdateIntent().insert((f"n{rng.random()}", 500)))
    scan = EpsilonScan(db, accounts, "amount", epsilon, chunk_size=37)
    report = scan.run(intents)
    assert report.error <= report.imported + 1e-9
    assert report.imported <= epsilon + 1e-9
    assert report.admitted + report.deferred_final == n_intents


def test_concurrency_grows_with_epsilon():
    """The paper's point: bigger ε admits more concurrent updates."""
    admitted = {}
    for epsilon in (0.0, 1_000.0, 50_000.0):
        db, accounts, tids = build_accounts(800, seed=3)
        rng = random.Random(4)
        intents = [
            UpdateIntent().modify(
                tids[rng.randrange(200)],  # front of the scan: conflicty
                {"amount": rng.randrange(100, 2000)},
            )
            for __ in range(40)
        ]
        scan = EpsilonScan(db, accounts, "amount", epsilon, chunk_size=100)
        admitted[epsilon] = scan.run(intents).admitted
    assert admitted[0.0] <= admitted[1_000.0] <= admitted[50_000.0]
    assert admitted[50_000.0] > admitted[0.0]
