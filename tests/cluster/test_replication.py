"""Replicated placement, failure detection, and zero-downtime failover.

The invariant everywhere: no matter which single host dies — or when,
including mid-scatter — every retained subscription result stays
bit-identical to a from-scratch evaluation over the router's
authoritative database, refresh cycles keep completing (no
ClusterError surfaces), and each fault is counted exactly once.
"""

import pytest

from repro.cluster import ClusterRouter, FaultInjector, LocalBackend
from repro.errors import ClusterError
from repro.metrics import Metrics
from repro.net.messages import ScatterMessage

JOIN_SQL = (
    "SELECT p.client, s.name, s.price, p.shares "
    "FROM positions p, stocks s "
    "WHERE p.sid = s.sid AND s.price > 105"
)
FILTER_SQL = "SELECT name, price FROM stocks WHERE price > 103"

ALL_CQS = {"watch": FILTER_SQL, "big": JOIN_SQL}


def make_cluster(
    shards=3,
    replicas=1,
    seed=7,
    wal_root=None,
    fault_hook=None,
    populate=True,
    subscribe=True,
    **kwargs,
):
    backend = LocalBackend(wal_root=wal_root, fault_hook=fault_hook)
    router = ClusterRouter(
        shards=shards,
        seed=seed,
        backend=backend,
        replicas=replicas,
        request_timeout=5.0,
        retries=1,
        sleep=lambda delay: None,  # tests never really sleep
        **kwargs,
    )
    router.declare_table(
        "stocks", [("sid", int), ("name", str), ("price", float)]
    )
    router.declare_table(
        "positions",
        [("pid", int), ("client", str), ("sid", int), ("shares", int)],
        partition_key="client",
    )
    router.start()
    if populate:
        db = router.db
        with db.begin() as txn:
            for i in range(12):
                txn.insert_into(db.table("stocks"), (i, f"S{i}", 100.0 + i))
            for i in range(30):
                txn.insert_into(
                    db.table("positions"),
                    (i, f"c{i % 7}", i % 12, 10 * (i + 1)),
                )
    if subscribe:
        for name, sql in ALL_CQS.items():
            router.subscribe("c", name, sql)
        router.refresh()
    return router


def tick_stock(router, sid, price):
    db = router.db
    stocks = db.table("stocks")
    with db.begin() as txn:
        for row in list(stocks.current):
            if row.values[0] == sid:
                txn.modify_in(
                    stocks, row.tid, (sid, row.values[1], float(price))
                )


def assert_converged(router, client="c"):
    for name, sql in ALL_CQS.items():
        oracle = sorted(r.values for r in router.db.query(sql))
        got = sorted(r.values for r in router.result(client, name))
        assert got == oracle, f"{name} diverged"


class TestPlacement:
    def test_every_group_gets_distinct_replica_hosts(self):
        router = make_cluster(shards=4, replicas=2, subscribe=False)
        placement = router.stats()["placement"]
        assert sorted(placement) == [0, 1, 2, 3]
        for group, hosts in placement.items():
            assert hosts[0] == group  # initial primary is the group's own host
            assert len(hosts) == 3  # primary + 2 replicas
            assert len(set(hosts)) == len(hosts)  # all distinct

    def test_replicas_capped_by_host_count(self):
        router = make_cluster(shards=2, replicas=5, subscribe=False)
        for hosts in router.stats()["placement"].values():
            assert len(hosts) == 2  # can't exceed the fleet

    def test_zero_replicas_is_the_old_layout(self):
        router = make_cluster(replicas=0, subscribe=False)
        for group, hosts in router.stats()["placement"].items():
            assert hosts == [group]

    def test_negative_replicas_rejected(self):
        with pytest.raises(ClusterError):
            ClusterRouter(shards=2, replicas=-1)

    def test_replicas_hold_no_subscriptions(self):
        router = make_cluster(shards=3, replicas=1)
        backend = router.backend
        placement = router.stats()["placement"]
        for group, hosts in placement.items():
            primary_subs = backend.host(hosts[0]).stores[group].sql_keys()
            for replica in hosts[1:]:
                store = backend.host(replica).stores[group]
                assert store.sql_keys() == []
            # The primary serves every key the group owns.
            owned = [
                key
                for key, owners in router._owners.items()
                if group in owners
            ]
            assert sorted(primary_subs) == sorted(owned)

    def test_stats_and_prometheus_expose_roles(self):
        router = make_cluster(shards=3, replicas=1)
        stats = router.stats()
        roles = set()
        for info in stats["shards"].values():
            for group_info in info["groups"].values():
                roles.add(group_info["role"])
        assert roles == {"primary", "replica"}
        text = router.prometheus()
        assert 'role="primary"' in text
        assert 'role="replica"' in text
        assert 'role="router"' in text


class TestFailover:
    def test_kill_primary_fails_over_within_the_cycle(self):
        router = make_cluster(shards=3, replicas=1)
        router.kill_shard(0)
        tick_stock(router, 3, 200.0)
        router.refresh()  # must not raise
        assert_converged(router)
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.FAILOVERS) == 1
        assert snapshot.get(Metrics.SHARD_FALLBACKS, 0) == 0
        # Group 0's new primary is a different live host.
        placement = router.stats()["placement"]
        assert placement[0][0] != 0
        assert 0 not in placement[0]

    def test_mid_scatter_hang_fails_over_same_cycle(self):
        injector = FaultInjector()
        router = make_cluster(shards=3, replicas=1, fault_hook=injector)
        injector.hang(
            1,
            phase="send",
            times=2,  # first try + one retry = host down
            match=lambda m: isinstance(m, ScatterMessage),
        )
        tick_stock(router, 4, 250.0)
        router.refresh()  # no abort: the cycle completes
        assert_converged(router)
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SCATTER_TIMEOUTS) == 2
        assert snapshot.get(Metrics.SCATTER_RETRIES) == 1
        assert snapshot.get(Metrics.SUSPECTS) == 1
        assert snapshot.get(Metrics.FAILOVERS) == 1
        assert router.stats()["shards"][1]["alive"] is False

    def test_reply_loss_retries_without_failover(self):
        injector = FaultInjector()
        router = make_cluster(shards=3, replicas=1, fault_hook=injector)
        # The shard applies the frame, then the reply is lost — the
        # retry must hit the seq-dedup cache, not re-apply.
        injector.crash(
            2,
            phase="reply",
            times=1,
            match=lambda m: isinstance(m, ScatterMessage),
        )
        tick_stock(router, 6, 400.0)
        router.refresh()
        assert_converged(router)
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SCATTER_RETRIES) == 1
        assert snapshot.get(Metrics.FAILOVERS, 0) == 0
        assert len(injector.fired) == 1

    def test_stream_continues_after_failover(self):
        router = make_cluster(shards=3, replicas=1)
        deltas = []
        router.subscribe(
            "d",
            "feed",
            FILTER_SQL,
            on_delta=lambda cq, delta, ts: deltas.append(len(delta)),
        )
        router.kill_shard(0)
        for sid, price in ((3, 300.0), (4, 50.0), (5, 500.0)):
            tick_stock(router, sid, price)
            router.refresh()
        assert_converged(router)
        assert deltas  # the subscriber kept hearing updates
        oracle = sorted(r.values for r in router.db.query(FILTER_SQL))
        got = sorted(r.values for r in router.result("d", "feed"))
        assert got == oracle

    def test_background_rereplication_restores_capacity(self):
        router = make_cluster(shards=3, replicas=1)
        router.kill_shard(0)
        tick_stock(router, 3, 200.0)
        router.refresh()
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.REREPLICATIONS, 0) >= 1
        placement = router.stats()["placement"]
        for hosts in placement.values():
            assert len(hosts) == 2  # back at primary + 1 on 2 live hosts
            assert 0 not in hosts

    def test_cascading_failures_down_to_one_host(self):
        router = make_cluster(shards=3, replicas=1)
        router.kill_shard(0)
        tick_stock(router, 3, 200.0)
        router.refresh()
        assert_converged(router)
        router.kill_shard(1)
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)
        # Two failovers (one per killed primary), still serving.
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.FAILOVERS, 0) >= 2
        placement = router.stats()["placement"]
        for hosts in placement.values():
            assert hosts == [2]


class TestPinnedZones:
    def test_failover_auto_releases_the_dead_hosts_zone(self):
        router = make_cluster(shards=3, replicas=1)
        router.kill_shard(0)
        tick_stock(router, 3, 200.0)
        router.refresh()  # failover + re-replication complete
        report = router.collect_garbage()
        assert report.pinned == {}
        assert router.stats()["pinned"] == {}

    def test_unreplicated_kill_pins_until_recovery(self, tmp_path):
        router = make_cluster(
            shards=3, replicas=0, wal_root=str(tmp_path)
        )
        router.kill_shard(1)
        tick_stock(router, 3, 200.0)
        router.refresh()
        report = router.collect_garbage()
        zone = "shard:1"
        assert zone in report.pinned
        assert report.pinned[zone]["groups"] == [1]
        assert report.pinned[zone]["retained_rows"] > 0
        assert zone in router.stats()["pinned"]
        # Rejoin releases the pin (and replays the held window).
        assert router.recover_shard(1) is True
        report = router.collect_garbage()
        assert report.pinned == {}
        router.refresh()
        assert_converged(router)

    def test_gc_report_is_still_a_pruned_dict(self):
        router = make_cluster(shards=3, replicas=1)
        tick_stock(router, 3, 200.0)
        router.refresh()
        report = router.collect_garbage()
        assert isinstance(report, dict)
        for table, count in report.items():
            assert isinstance(table, str) and isinstance(count, int)


class TestRejoin:
    def test_failed_over_host_rejoins_as_spare(self, tmp_path):
        router = make_cluster(
            shards=3, replicas=1, wal_root=str(tmp_path)
        )
        router.kill_shard(0)
        tick_stock(router, 3, 200.0)
        router.refresh()
        assert_converged(router)
        # Everything failed over and re-replicated: the rejoin is a
        # planned catch-up (True), never a baseline fallback.
        assert router.recover_shard(0) is True
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SHARD_FALLBACKS, 0) == 0
        stats = router.stats()
        assert stats["shards"][0]["alive"] is True
        # At full strength the rejoiner idles as a spare — and a spare
        # must not pin the logs.
        assert stats["shards"][0]["groups"] == {}
        assert stats["shards"][0]["zone"] is None
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)

    def test_spare_is_reenlisted_on_the_next_failure(self, tmp_path):
        router = make_cluster(
            shards=3, replicas=1, wal_root=str(tmp_path)
        )
        router.kill_shard(0)
        tick_stock(router, 3, 200.0)
        router.refresh()
        router.recover_shard(0)
        router.kill_shard(2)
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)
        placement = router.stats()["placement"]
        assert any(0 in hosts for hosts in placement.values())
        tick_stock(router, 5, 400.0)
        router.refresh()
        assert_converged(router)

    def test_lost_group_rejoins_primary_via_replay(self, tmp_path):
        # replicas=1 on two hosts leaves no spare: killing one loses
        # its replica capacity and its primaries fail over; killing
        # with no survivors for a group exercises the lost path.
        router = make_cluster(
            shards=2, replicas=0, wal_root=str(tmp_path)
        )
        router.kill_shard(1)
        tick_stock(router, 3, 200.0)
        router.refresh()
        assert router.recover_shard(1) is True
        router.refresh()
        assert_converged(router)
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SHARD_REPLAYS) == 1


class TestRemoveShard:
    def test_remove_is_the_inverse_of_add(self):
        router = make_cluster(shards=3, replicas=1)
        new_id = router.add_shard()
        tick_stock(router, 3, 200.0)
        router.refresh()
        assert_converged(router)
        router.remove_shard(new_id)
        assert_converged(router)
        assert new_id not in router.backend.alive()
        assert new_id not in router.stats()["placement"]
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)

    def test_remove_rehomes_subscriptions_and_slices(self):
        router = make_cluster(shards=4, replicas=1)
        tick_stock(router, 3, 200.0)  # pending window: drain must serve it
        router.remove_shard(2)
        assert_converged(router)
        placement = router.stats()["placement"]
        assert 2 not in placement
        assert all(2 not in hosts for hosts in placement.values())
        [info] = [i for i in router.describe() if i["cq"] == "big"]
        assert info["shards"] == sorted(placement)
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)

    def test_remove_guards(self):
        router = make_cluster(shards=2, replicas=0)
        router.kill_shard(1)
        with pytest.raises(ClusterError):
            router.remove_shard(1)  # dead hosts are recover_shard's job
        with pytest.raises(ClusterError):
            router.remove_shard(0)  # never remove the last live shard
        with pytest.raises(ClusterError):
            router.remove_shard(99)  # not in the cluster

    def test_remove_without_replicas(self):
        router = make_cluster(shards=3, replicas=0)
        tick_stock(router, 3, 200.0)
        router.remove_shard(1)
        assert_converged(router)
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)

    def test_remove_sole_holder_of_failed_over_group(self):
        """Removing a shard that is the only holder of a *foreign*
        group (one that failed over onto it) must seed a replacement
        replica on a survivor and promote it — not blow up mid-drain.

        Construction: with 2 hosts and replicas=1, killing host 0
        leaves host 1 sole holder of group 0 (no spare to top up
        onto); a third host then joins and host 1 is drained."""
        router = make_cluster(shards=2, replicas=1)
        router.kill_shard(0)
        tick_stock(router, 3, 200.0)
        router.refresh()
        assert router.stats()["placement"][0] == [1]  # sole holder
        new_id = router.add_shard()
        router.remove_shard(1)
        placement = router.stats()["placement"]
        assert all(1 not in hosts for hosts in placement.values())
        assert placement[0] == [new_id]  # promoted replacement
        assert_converged(router)
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)

    def test_remove_keeps_load_bookkeeping_consistent(self):
        """_replica_targets ranks hosts by the incrementally maintained
        _load/_host_cost maps; a planned removal must leave them exactly
        consistent with _placement (no phantom entries for the removed
        host or the dissolved group's surviving replica hosts)."""
        router = make_cluster(shards=4, replicas=1)
        tick_stock(router, 3, 200.0)
        router.refresh()
        router.remove_shard(2)
        expected_load = {}
        for hosts in router._placement.values():
            for host in hosts:
                expected_load[host] = expected_load.get(host, 0) + 1
        assert router._load == expected_load
        assert 2 not in router._host_cost
        assert all(key[0] != 2 and key[1] != 2 for key in router._store_cost)
        assert router._host_cost == {
            host: pytest.approx(
                sum(
                    score
                    for (h, _g), score in router._store_cost.items()
                    if h == host
                )
            )
            for host in {k[0] for k in router._store_cost}
        }
        # The next placement decision sees the consistent state.
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)


class TestAddShardReplicated:
    def test_new_group_gets_replicas_too(self):
        router = make_cluster(shards=3, replicas=1)
        new_id = router.add_shard()
        placement = router.stats()["placement"]
        assert len(placement[new_id]) == 2
        assert placement[new_id][0] == new_id
        tick_stock(router, 3, 200.0)
        router.refresh()
        assert_converged(router)
        # The grown cluster still survives losing the new primary.
        router.kill_shard(new_id)
        tick_stock(router, 4, 300.0)
        router.refresh()
        assert_converged(router)
