"""Consistent-hash ring and partition-slice properties.

The placement layer must be deterministic (seeded), balanced enough to
share load, and *minimally disruptive*: adding a node may only move
keys onto the new node, never shuffle keys between survivors. The
partition helpers must slice a delta without inventing or losing
entries — a cross-slice modify splits into a delete and an insert.
"""

import pytest

from repro.cluster import HashRing, Partition, partition_delta
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType

SCHEMA = Schema(
    [
        Attribute("pid", AttributeType.INT),
        Attribute("client", AttributeType.STR),
        Attribute("shares", AttributeType.INT),
    ]
)


class TestHashRing:
    def test_seeded_placement_is_deterministic(self):
        a = HashRing([0, 1, 2], seed=42)
        b = HashRing([0, 1, 2], seed=42)
        keys = [f"key-{i}" for i in range(200)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_different_seeds_place_differently(self):
        a = HashRing([0, 1, 2], seed=1)
        b = HashRing([0, 1, 2], seed=2)
        keys = [f"key-{i}" for i in range(200)]
        assert [a.lookup(k) for k in keys] != [b.lookup(k) for k in keys]

    def test_every_node_gets_a_share(self):
        ring = HashRing([0, 1, 2, 3], seed=7)
        owners = {ring.lookup(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_balance_is_roughly_even(self):
        ring = HashRing([0, 1, 2, 3], seed=7)
        counts = {n: 0 for n in ring.nodes()}
        total = 4000
        for i in range(total):
            counts[ring.lookup(f"key-{i}")] += 1
        for node, count in counts.items():
            share = count / total
            assert 0.10 <= share <= 0.45, (node, share)

    def test_adding_a_node_only_moves_keys_onto_it(self):
        ring = HashRing([0, 1, 2], seed=9)
        keys = [f"key-{i}" for i in range(600)]
        before = {k: ring.lookup(k) for k in keys}
        ring.add_node(3)
        moved = 0
        for k in keys:
            after = ring.lookup(k)
            if after != before[k]:
                assert after == 3, (k, before[k], after)
                moved += 1
        assert 0 < moved < len(keys) // 2

    def test_removing_a_node_redistributes_only_its_keys(self):
        ring = HashRing([0, 1, 2, 3], seed=9)
        keys = [f"key-{i}" for i in range(600)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove_node(3)
        for k in keys:
            if before[k] != 3:
                assert ring.lookup(k) == before[k]
            else:
                assert ring.lookup(k) != 3

    def test_membership_protocol(self):
        ring = HashRing(seed=0)
        assert len(ring) == 0
        ring.add_node(5)
        assert 5 in ring and len(ring) == 1
        assert ring.lookup("anything") == 5


def entry(tid, old, new, ts=1):
    return DeltaEntry(tid, old, new, ts)


class TestPartitionSlices:
    def _partitions(self, nodes=(0, 1, 2), seed=3):
        ring = HashRing(list(nodes), seed=seed)
        position = SCHEMA.position("client")
        return ring, {
            n: Partition("positions", "client", position, ring, n)
            for n in nodes
        }

    def test_row_accepted_by_exactly_one_partition(self):
        __, parts = self._partitions()
        for i in range(50):
            row = (i, f"client-{i}", 10)
            owners = [n for n, p in parts.items() if p.accepts(row)]
            assert len(owners) == 1, row

    def test_missing_row_is_accepted_nowhere(self):
        __, parts = self._partitions()
        assert not any(p.accepts(None) for p in parts.values())

    def test_none_key_value_still_lands_on_exactly_one_shard(self):
        __, parts = self._partitions()
        row = (1, None, 10)
        owners = [n for n, p in parts.items() if p.accepts(row)]
        assert len(owners) == 1

    def test_partition_delta_covers_every_entry_once(self):
        ring, __ = self._partitions()
        delta = DeltaRelation(
            SCHEMA,
            [
                entry(i, None, (i, f"client-{i}", 10), ts=i + 1)
                for i in range(40)
            ],
        )
        slices = partition_delta(
            delta, "positions", SCHEMA.position("client"), ring
        )
        total = sum(len(s) for s in slices.values())
        assert total == len(delta)
        seen = set()
        for piece in slices.values():
            for e in piece:
                assert e.tid not in seen
                seen.add(e.tid)

    def test_cross_slice_modify_splits_into_delete_and_insert(self):
        ring, parts = self._partitions()
        # Find two client values owned by different nodes.
        a = next(
            f"client-{i}" for i in range(100)
            if ring.lookup(f"positions:client-{i}") == 0
        )
        b = next(
            f"client-{i}" for i in range(100)
            if ring.lookup(f"positions:client-{i}") == 1
        )
        old, new = (1, a, 10), (1, b, 10)
        delta = DeltaRelation(SCHEMA, [entry(7, old, new)])
        slices = partition_delta(
            delta, "positions", SCHEMA.position("client"), ring
        )
        e0 = next(iter(slices[0]))
        e1 = next(iter(slices[1]))
        assert e0.old == old and e0.new is None
        assert e1.old is None and e1.new == new
        assert 2 not in slices

    def test_same_slice_modify_stays_whole(self):
        ring, __ = self._partitions()
        value = next(
            f"client-{i}" for i in range(100)
            if ring.lookup(f"positions:client-{i}") == 2
        )
        old, new = (1, value, 10), (1, value, 99)
        delta = DeltaRelation(SCHEMA, [entry(7, old, new)])
        slices = partition_delta(
            delta, "positions", SCHEMA.position("client"), ring
        )
        assert set(slices) == {2}
        e = next(iter(slices[2]))
        assert e.old == old and e.new == new


class TestWeightedRing:
    """Per-node weights scale vnode counts: a weight-2 node owns about
    twice the key space, and changing a node's weight stays minimally
    disruptive (keys only move onto the heavier node)."""

    def test_weight_two_owns_about_double_share(self):
        ring = HashRing(seed=7)
        for node in (0, 1, 2):
            ring.add_node(node)
        ring.add_node(3, weight=2.0)
        counts = {n: 0 for n in ring.nodes()}
        total = 6000
        for i in range(total):
            counts[ring.lookup(f"key-{i}")] += 1
        light = sum(counts[n] for n in (0, 1, 2)) / 3
        assert 1.5 <= counts[3] / light <= 2.6, counts

    def test_weight_defaults_to_one_and_is_queryable(self):
        ring = HashRing([0, 1], seed=3)
        ring.add_node(2, weight=2.5)
        assert ring.weight(0) == 1.0
        assert ring.weight(2) == 2.5
        assert ring.weights() == {0: 1.0, 1: 1.0, 2: 2.5}

    def test_invalid_weight_rejected(self):
        ring = HashRing(seed=1)
        with pytest.raises(ValueError):
            ring.add_node(0, weight=0.0)
        with pytest.raises(ValueError):
            ring.add_node(0, weight=-1.0)

    def test_heavier_join_only_moves_keys_onto_it(self):
        """The first ``vnodes`` tokens of a weighted node are the same
        as its unweighted tokens, so a heavy joiner still only *takes*
        keys — survivors never swap keys among themselves."""
        ring = HashRing([0, 1, 2], seed=9)
        keys = [f"key-{i}" for i in range(800)]
        before = {k: ring.lookup(k) for k in keys}
        ring.add_node(3, weight=3.0)
        moved = 0
        for k in keys:
            after = ring.lookup(k)
            if after != before[k]:
                assert after == 3, (k, before[k], after)
                moved += 1
        # A weight-3 joiner takes roughly 3/6 of the space.
        assert len(keys) // 4 < moved < 3 * len(keys) // 4

    def test_weighted_placement_superset_of_unweighted(self):
        """Raising a node's weight never moves its existing keys off:
        every key the unweighted node owned, the weighted one owns."""
        plain = HashRing([0, 1, 2], seed=5)
        heavy = HashRing(seed=5)
        heavy.add_node(0)
        heavy.add_node(1)
        heavy.add_node(2, weight=2.0)
        for i in range(600):
            key = f"key-{i}"
            if plain.lookup(key) == 2:
                assert heavy.lookup(key) == 2

    def test_remove_forgets_weight(self):
        ring = HashRing(seed=2)
        ring.add_node(0, weight=2.0)
        ring.add_node(1)
        ring.remove_node(0)
        assert ring.weights() == {1: 1.0}
        ring.add_node(0)  # rejoins at default weight, no stale state
        assert ring.weight(0) == 1.0
