"""Overlapped scatter/gather: arrival order must never matter.

The overlapped refresh path dispatches every frame up front and
gathers replies as hosts answer; these tests prove the two properties
that make that safe:

* **Equivalence** — with a seeded shuffle deliberately reordering
  every gather batch, results and notification order are bit-identical
  to the sequential (``overlap=False``) baseline, commit for commit.
* **Bounded by the slowest host** — with every shard of a
  ``ProcessBackend`` fleet slowed by ``d``, an overlapped cycle
  finishes in about ``d``, not ``shards × d`` (the sequential sum).

Plus weighted placement plumb-through: router-level ``weights=``,
``add_shard(weight=)``, and weight survival across kill/rejoin.
"""

import time

import pytest

from repro.cluster import (
    ClusterRouter,
    FaultInjector,
    LocalBackend,
    ProcessBackend,
)
from repro.cluster.dispatch import supports_overlap
from repro.metrics import Metrics

JOIN_SQL = (
    "SELECT p.client, s.name, s.price, p.shares "
    "FROM positions p, stocks s "
    "WHERE p.sid = s.sid AND s.price > 105"
)
FILTER_SQL = "SELECT name, price FROM stocks WHERE price > 103"

ALL_CQS = {"watch": FILTER_SQL, "big": JOIN_SQL}


def make_cluster(
    shards=3,
    replicas=0,
    seed=7,
    overlap=True,
    shuffle_seed=None,
    wal_root=None,
    fault_hook=None,
    recorder=None,
    **kwargs,
):
    backend = LocalBackend(
        wal_root=wal_root, fault_hook=fault_hook, shuffle_seed=shuffle_seed
    )
    router = ClusterRouter(
        shards=shards,
        seed=seed,
        backend=backend,
        replicas=replicas,
        overlap=overlap,
        request_timeout=5.0,
        retries=1,
        sleep=lambda delay: None,
        **kwargs,
    )
    router.declare_table(
        "stocks", [("sid", int), ("name", str), ("price", float)]
    )
    router.declare_table(
        "positions",
        [("pid", int), ("client", str), ("sid", int), ("shares", int)],
        partition_key="client",
    )
    router.start()
    db = router.db
    with db.begin() as txn:
        for i in range(12):
            txn.insert_into(db.table("stocks"), (i, f"S{i}", 100.0 + i))
        for i in range(30):
            txn.insert_into(
                db.table("positions"),
                (i, f"c{i % 7}", i % 12, 10 * (i + 1)),
            )
    for name, sql in ALL_CQS.items():
        if recorder is None:
            router.subscribe("c", name, sql)
        else:
            router.subscribe(
                "c",
                name,
                sql,
                on_delta=(
                    lambda cq, d, ts: recorder.append(
                        (cq, ts, [(e.old, e.new) for e in d])
                    )
                ),
            )
    return router


def run_script(router):
    """One fixed multi-round workload: ticks, inserts, moves, deletes."""
    db = router.db
    stocks = db.table("stocks")
    positions = db.table("positions")
    router.refresh()
    for round_no in range(6):
        with db.begin() as txn:
            for row in list(stocks.current):
                sid = row.values[0]
                if sid % 3 == round_no % 3:
                    txn.modify_in(
                        stocks,
                        row.tid,
                        (sid, row.values[1], 90.0 + 10 * round_no + sid),
                    )
            txn.insert_into(
                stocks, (100 + round_no, f"N{round_no}", 104.0 + round_no)
            )
            for row in list(positions.current):
                pid, client, sid, shares = row.values
                if pid % 5 == round_no % 5:
                    # A partition-key change: the row moves slices.
                    txn.modify_in(
                        positions,
                        row.tid,
                        (pid, f"c{(pid + round_no) % 7}", sid, shares),
                    )
            if round_no == 3:
                doomed = [
                    r.tid for r in positions.current if r.values[0] < 4
                ]
                for tid in doomed:
                    txn.delete_from(positions, tid)
        router.refresh()
    return {
        name: list(r.values for r in router.result("c", name))
        for name in ALL_CQS
    }


class TestOutOfOrderEquivalence:
    """Shuffled gather arrival vs the sequential baseline."""

    @pytest.mark.parametrize("shuffle_seed", [1, 12, 123])
    def test_results_and_notifications_bit_identical(self, shuffle_seed):
        baseline_events = []
        baseline = make_cluster(overlap=False, recorder=baseline_events)
        assert not supports_overlap(object())
        expected = run_script(baseline)

        shuffled_events = []
        router = make_cluster(
            shuffle_seed=shuffle_seed, recorder=shuffled_events
        )
        got = run_script(router)

        # Row-for-row identical retained results (same order, not just
        # same set), and the notification stream — which CQ fired, at
        # which timestamp, with which delta — matches event for event.
        assert got == expected
        assert shuffled_events == baseline_events
        assert shuffled_events, "script produced no notifications"

    def test_replicated_shuffled_soak_zero_fallbacks(self, tmp_path):
        """Replicas + failover under shuffled arrival: kill a primary
        mid-stream, keep refreshing, rejoin — never a baseline
        fallback, always converged."""
        router = make_cluster(
            replicas=1,
            shuffle_seed=99,
            wal_root=str(tmp_path),
        )
        db = router.db
        stocks = db.table("stocks")
        router.refresh()
        for round_no in range(10):
            with db.begin() as txn:
                for row in list(stocks.current):
                    sid = row.values[0]
                    if sid % 4 == round_no % 4:
                        txn.modify_in(
                            stocks,
                            row.tid,
                            (sid, row.values[1], 95.0 + round_no + sid),
                        )
            if round_no == 3:
                router.kill_shard(0)
            router.refresh()
            for name, sql in ALL_CQS.items():
                oracle = router.db.query(sql)
                assert router.result("c", name) == oracle, name
            if round_no == 7:
                assert router.recover_shard(0) is True
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SHARD_FALLBACKS, 0) == 0
        assert snapshot.get(Metrics.FAILOVERS, 0) >= 1

    def test_injected_crash_counts_match_sequential(self):
        """A one-shot reply-phase crash on a live host retries and
        pairs exactly-once — identical counter deltas to the blocking
        path (no fail-fast: the host object is still alive)."""
        from repro.net.messages import ScatterMessage

        counts = {}
        for mode, shuffle in (("seq", None), ("overlap", 5)):
            injector = FaultInjector()
            router = make_cluster(
                replicas=1,
                overlap=(mode == "overlap"),
                shuffle_seed=shuffle,
                fault_hook=injector,
            )
            router.refresh()
            injector.crash(
                1,
                phase="reply",
                times=1,
                match=lambda m: isinstance(m, ScatterMessage),
            )
            db = router.db
            stocks = db.table("stocks")
            with db.begin() as txn:
                for row in list(stocks.current):
                    txn.modify_in(
                        stocks,
                        row.tid,
                        (row.values[0], row.values[1], 200.0),
                    )
            before = router.metrics.snapshot()
            router.refresh()
            for name, sql in ALL_CQS.items():
                assert router.result("c", name) == router.db.query(sql)
            counts[mode] = {
                k: v
                for k, v in router.metrics.diff(before).items()
                if k.startswith("cluster_")
                and k
                not in (
                    Metrics.SCATTERS,
                    Metrics.CLUSTER_MERGES,
                    Metrics.SCATTER_SKIPPED,
                )
            }
            assert injector.fired == [(1, "reply")]
        assert counts["overlap"] == counts["seq"]


class TestWallClockBoundedBySlowest:
    def test_cycle_takes_about_d_not_shards_times_d(self, tmp_path):
        """Every one of 4 real shard processes sleeps ``d`` per frame:
        the sequential sum is ``4d``; the overlapped cycle must finish
        well under half of that."""
        d = 0.3
        router = ClusterRouter(
            shards=4,
            seed=3,
            backend=ProcessBackend(
                wal_root=str(tmp_path), slow={i: d for i in range(4)}
            ),
        )
        router.declare_table(
            "positions",
            [("pid", int), ("client", str), ("shares", int)],
            partition_key="client",
        )
        router.start()
        db = router.db
        with db.begin() as txn:
            for i in range(24):
                txn.insert_into(
                    db.table("positions"), (i, f"c{i % 11}", 10 * i)
                )
        sql = "SELECT client, shares FROM positions WHERE shares >= 0"
        router.subscribe("c", "all", sql)
        router.refresh()
        try:
            with db.begin() as txn:
                for row in list(db.table("positions").current):
                    pid, client, shares = row.values
                    txn.modify_in(
                        db.table("positions"),
                        row.tid,
                        (pid, client, shares + 1),
                    )
            start = time.monotonic()
            router.refresh()
            elapsed = time.monotonic() - start
            # One frame per shard, every shard sleeps d: the slowest
            # host bounds the cycle. 2.5d leaves CI headroom while
            # staying far below the 4d sequential sum.
            assert elapsed < 2.5 * d, f"cycle took {elapsed:.2f}s"
            assert router.result("c", "all") == router.db.query(sql)
        finally:
            router.close()


class TestWeightedPlacement:
    def test_router_weights_reach_the_ring(self):
        router = make_cluster(weights={0: 2.0})
        assert router.ring.weight(0) == 2.0
        assert router.ring.weight(1) == 1.0

    def test_weighted_shard_homes_about_double_the_keys(self):
        router = make_cluster(shards=4, weights={0: 2.0})
        homes = {n: 0 for n in router.ring.nodes()}
        for i in range(4000):
            homes[router.ring.lookup(f"sql-key-{i}")] += 1
        light = sum(homes[n] for n in (1, 2, 3)) / 3
        assert 1.5 <= homes[0] / light <= 2.6, homes

    def test_add_shard_with_weight(self):
        router = make_cluster()
        new_id = router.add_shard(weight=2.0)
        assert router.ring.weight(new_id) == 2.0
        router.refresh()
        for name, sql in ALL_CQS.items():
            assert router.result("c", name) == router.db.query(sql)

    def test_rejoin_preserves_weight(self, tmp_path):
        router = make_cluster(
            replicas=1, weights={0: 2.0}, wal_root=str(tmp_path)
        )
        router.refresh()
        router.kill_shard(0)
        router.refresh()
        assert router.ring.weight(0) == 2.0  # ring never forgot it
        assert router.recover_shard(0) is True
        router.refresh()
        assert router.ring.weight(0) == 2.0
        for name, sql in ALL_CQS.items():
            assert router.result("c", name) == router.db.query(sql)

    def test_remove_shard_forgets_weight(self):
        router = make_cluster(shards=4, replicas=1, weights={3: 2.0})
        router.refresh()
        router.remove_shard(3)
        assert 3 not in router.ring.weights()
        router.refresh()
        for name, sql in ALL_CQS.items():
            assert router.result("c", name) == router.db.query(sql)
