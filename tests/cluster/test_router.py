"""ClusterRouter behaviour: routing, merging, recovery, edge cases.

The invariant under test everywhere: after any sequence of commits,
refreshes, kills, recoveries, and topology changes, every retained
subscription result equals a from-scratch evaluation of its query over
the router's authoritative database.
"""

import pytest

from repro.cluster import ClusterRouter, LocalBackend
from repro.errors import ClusterError, RegistrationError
from repro.metrics import Metrics
from repro.obs.export import parse_prometheus_text

JOIN_SQL = (
    "SELECT p.client, s.name, s.price, p.shares "
    "FROM positions p, stocks s "
    "WHERE p.sid = s.sid AND s.price > 105"
)
FILTER_SQL = "SELECT name, price FROM stocks WHERE price > 103"


def make_cluster(shards=3, seed=7, wal_root=None, populate=True):
    backend = LocalBackend(wal_root=wal_root) if wal_root else None
    router = ClusterRouter(shards=shards, seed=seed, backend=backend)
    router.declare_table(
        "stocks", [("sid", int), ("name", str), ("price", float)]
    )
    router.declare_table(
        "positions",
        [("pid", int), ("client", str), ("sid", int), ("shares", int)],
        partition_key="client",
    )
    router.start()
    if populate:
        db = router.db
        with db.begin() as txn:
            for i in range(12):
                txn.insert_into(db.table("stocks"), (i, f"S{i}", 100.0 + i))
            for i in range(30):
                txn.insert_into(
                    db.table("positions"),
                    (i, f"c{i % 7}", i % 12, 10 * (i + 1)),
                )
    return router


def tick_stock(router, sid, price):
    db = router.db
    stocks = db.table("stocks")
    with db.begin() as txn:
        for row in list(stocks.current):
            if row.values[0] == sid:
                txn.modify_in(
                    stocks, row.tid, (sid, row.values[1], float(price))
                )


def assert_converged(router, client, cq, sql):
    oracle = sorted(r.values for r in router.db.query(sql))
    got = sorted(r.values for r in router.result(client, cq))
    assert got == oracle


class TestRoutingAndMerge:
    def test_replicated_cq_lives_on_one_shard(self):
        router = make_cluster()
        router.subscribe("c", "watch", FILTER_SQL)
        [info] = router.describe()
        assert len(info["shards"]) == 1
        assert not info["parallel"]

    def test_partitioned_cq_spans_every_shard(self):
        router = make_cluster()
        router.subscribe("c", "big", JOIN_SQL)
        [info] = router.describe()
        assert info["shards"] == [0, 1, 2]
        assert info["parallel"]

    def test_cross_shard_join_matches_oracle(self):
        router = make_cluster()
        deltas = []
        router.subscribe(
            "alice",
            "big",
            JOIN_SQL,
            on_delta=lambda cq, d, ts: deltas.append(len(d)),
        )
        router.refresh()
        tick_stock(router, 7, 200.0)
        notified = router.refresh()
        assert notified == 1
        assert deltas and deltas[-1] > 0
        assert_converged(router, "alice", "big", JOIN_SQL)
        assert router.metrics.get(Metrics.CLUSTER_MERGES) >= 1

    def test_members_share_one_group_and_both_converge(self):
        router = make_cluster()
        router.subscribe("alice", "a", FILTER_SQL)
        router.subscribe("bob", "b", FILTER_SQL)
        tick_stock(router, 2, 500.0)
        assert router.refresh() == 2
        assert_converged(router, "alice", "a", FILTER_SQL)
        assert_converged(router, "bob", "b", FILTER_SQL)

    def test_partition_key_update_merges_as_row_move(self):
        """A position moving between clients may cross slices: the
        gather merge recombines delete+insert into one modify."""
        router = make_cluster()
        sql = (
            "SELECT p.client, p.shares, s.name "
            "FROM positions p, stocks s WHERE p.sid = s.sid"
        )
        router.subscribe("c", "moves", sql)
        router.refresh()
        db = router.db
        positions = db.table("positions")
        moved = 0
        with db.begin() as txn:
            for row in list(positions.current):
                pid, client, sid, shares = row.values
                if pid < 10:
                    txn.modify_in(
                        positions, row.tid, (pid, f"x{pid}", sid, shares)
                    )
                    moved += 1
        assert moved
        router.refresh()
        assert_converged(router, "c", "moves", sql)

    def test_irrelevant_commit_scatters_nowhere(self):
        router = make_cluster()
        router.subscribe("c", "watch", FILTER_SQL)
        router.refresh()
        before = router.metrics.get(Metrics.SCATTERS)
        # Stays far below every registered predicate's threshold.
        tick_stock(router, 1, 50.0)
        router.refresh()
        assert router.metrics.get(Metrics.SCATTERS) == before
        assert router.metrics.get(Metrics.SCATTER_SKIPPED) >= 1
        assert_converged(router, "c", "watch", FILTER_SQL)

    def test_unsubscribe_retires_footprint(self):
        router = make_cluster()
        router.subscribe("c", "watch", FILTER_SQL)
        router.refresh()
        router.unsubscribe("c", "watch")
        before = router.metrics.get(Metrics.SCATTERS)
        tick_stock(router, 1, 900.0)
        router.refresh()
        assert router.metrics.get(Metrics.SCATTERS) == before
        with pytest.raises(RegistrationError):
            router.result("c", "watch")


class TestValidation:
    def test_two_partitioned_tables_rejected(self):
        router = ClusterRouter(shards=2)
        router.declare_table("a", [("k", str), ("v", int)], partition_key="k")
        router.declare_table("b", [("k", str), ("v", int)], partition_key="k")
        router.start()
        with pytest.raises(RegistrationError):
            router.subscribe(
                "c", "bad", "SELECT a.v FROM a, b WHERE a.k = b.k"
            )

    def test_undeclared_table_rejected(self):
        router = make_cluster(populate=False)
        with pytest.raises(ClusterError):
            router.subscribe("c", "bad", "SELECT x FROM nowhere")

    def test_subscribe_before_start_rejected(self):
        router = ClusterRouter(shards=2)
        router.declare_table("t", [("x", int)])
        with pytest.raises(ClusterError):
            router.subscribe("c", "q", "SELECT x FROM t")

    def test_declare_after_start_rejected(self):
        router = ClusterRouter(shards=1)
        router.declare_table("t", [("x", int)])
        router.start()
        with pytest.raises(ClusterError):
            router.declare_table("u", [("y", int)])

    def test_duplicate_registration_rejected(self):
        router = make_cluster()
        router.subscribe("c", "q", FILTER_SQL)
        with pytest.raises(RegistrationError):
            router.subscribe("c", "q", FILTER_SQL)


class TestEdgeCases:
    def test_empty_scatter_cycles_advance_zones_without_evaluation(self):
        """Commits no footprint cares about turn into heartbeats: every
        shard's zone still advances past them (the clock rides the
        heartbeat), and no shard evaluates a single term."""
        router = make_cluster()
        router.subscribe("c", "watch", FILTER_SQL)
        router.refresh()
        stats = router.stats()
        terms_before = stats["shard_totals"].get("terms_evaluated", 0)
        skipped_before = router.metrics.get(Metrics.SCATTER_SKIPPED)
        db = router.db
        for i in range(3):
            with db.begin() as txn:
                txn.insert_into(
                    db.table("stocks"), (100 + i, f"penny{i}", 1.0 + i)
                )
            commit_ts = db.now()
            router.refresh()
            stats = router.stats()
            for info in stats["shards"].values():
                assert info["zone"] >= commit_ts
        assert stats["shard_totals"].get("terms_evaluated", 0) == terms_before
        assert router.metrics.get(Metrics.SCATTER_SKIPPED) > skipped_before

    def test_empty_scatter_cycles_let_cluster_wide_gc_advance(self):
        router = make_cluster()
        router.subscribe("c", "watch", FILTER_SQL)
        router.refresh()
        db = router.db
        with db.begin() as txn:
            txn.insert_into(db.table("stocks"), (200, "penny", 2.0))
        router.refresh()
        pruned = router.collect_garbage()
        # The authoritative log of the hot table was prunable because
        # every shard zone advanced past the populate commits.
        assert pruned.get("stocks", 0) > 0

    def test_footprint_spanning_all_shards(self):
        """A partition-parallel CQ routes every relevant batch to every
        shard, and each shard contributes disjoint partial deltas."""
        router = make_cluster()
        router.subscribe("c", "big", JOIN_SQL)
        router.refresh()
        before = router.metrics.get(Metrics.SCATTERS)
        db = router.db
        with db.begin() as txn:
            for i in range(40, 52):
                txn.insert_into(
                    db.table("positions"), (i, f"c{i}", i % 12, 11)
                )
        router.refresh()
        assert router.metrics.get(Metrics.SCATTERS) - before == 3
        assert_converged(router, "c", "big", JOIN_SQL)

    def test_shard_joining_after_subscriptions_exist(self):
        """add_shard hands off moved sql_keys and re-slices partitions;
        results keep converging afterwards."""
        router = make_cluster(shards=2, seed=11)
        sqls = {}
        for i in range(6):
            sql = f"SELECT name, price FROM stocks WHERE price > {101 + i}"
            sqls[f"q{i}"] = sql
            router.subscribe("c", f"q{i}", sql)
        router.subscribe("c", "join", JOIN_SQL)
        router.refresh()
        new_id = router.add_shard()
        assert new_id == 2
        # The parallel key now spans the grown fleet.
        info = {d["cq"]: d for d in router.describe()}
        assert info["join"]["shards"] == [0, 1, 2]
        # Keys are owned exactly where the grown ring says.
        for d in info.values():
            if not d["parallel"]:
                assert d["shards"] == [router.ring.lookup(d["sql_key"])]
        tick_stock(router, 3, 600.0)
        tick_stock(router, 9, 50.0)
        router.refresh()
        for cq, sql in sqls.items():
            assert_converged(router, "c", cq, sql)
        assert_converged(router, "c", "join", JOIN_SQL)

    def test_residual_confirmation_is_exercised(self):
        """The gather merge re-checks output-visible literal conjuncts;
        on tid-disjoint partials this never drops a correct entry."""
        router = make_cluster()
        router.subscribe("c", "big", JOIN_SQL)
        assert router._residuals[
            next(iter(router._residuals))
        ], "the join's price conjunct should compile to a residual"
        tick_stock(router, 7, 200.0)
        tick_stock(router, 11, 90.0)
        router.refresh()
        assert_converged(router, "c", "big", JOIN_SQL)


class TestRecovery:
    def test_kill_then_replay(self, tmp_path):
        router = make_cluster(wal_root=str(tmp_path))
        router.subscribe("alice", "big", JOIN_SQL)
        router.subscribe("bob", "watch", FILTER_SQL)
        router.refresh()
        router.kill_shard(1)
        tick_stock(router, 3, 300.0)
        router.refresh()
        tick_stock(router, 7, 400.0)
        router.refresh()
        assert router.recover_shard(1) is True
        router.refresh()
        assert router.metrics.get(Metrics.SHARD_REPLAYS) == 1
        assert router.metrics.get(Metrics.SHARD_FALLBACKS) == 0
        assert_converged(router, "alice", "big", JOIN_SQL)
        assert_converged(router, "bob", "watch", FILTER_SQL)

    def test_released_zone_forces_fallback(self, tmp_path):
        router = make_cluster(wal_root=str(tmp_path))
        router.subscribe("alice", "big", JOIN_SQL)
        router.refresh()
        router.kill_shard(2, release_zone=True)
        tick_stock(router, 5, 500.0)
        router.refresh()
        router.collect_garbage()
        assert router.recover_shard(2) is False
        router.refresh()
        assert router.metrics.get(Metrics.SHARD_FALLBACKS) == 1
        assert_converged(router, "alice", "big", JOIN_SQL)

    def test_dead_shard_zone_pins_router_logs(self, tmp_path):
        router = make_cluster(wal_root=str(tmp_path))
        router.subscribe("c", "watch", FILTER_SQL)
        router.refresh()
        router.kill_shard(0)
        tick_stock(router, 4, 700.0)
        router.refresh()
        pruned = router.collect_garbage()
        boundary = router.zones.boundary("shard:0")
        assert router.db.table("stocks").log.pruned_through <= boundary

    def test_double_kill_and_bad_recover_rejected(self, tmp_path):
        router = make_cluster(wal_root=str(tmp_path))
        router.kill_shard(0)
        with pytest.raises(ClusterError):
            router.kill_shard(0)
        with pytest.raises(ClusterError):
            router.recover_shard(1)

    def test_memory_only_backend_cannot_recover(self):
        router = make_cluster()
        router.kill_shard(0)
        with pytest.raises(ClusterError):
            router.recover_shard(0)


class TestObservability:
    def test_stats_aggregates_per_shard_counters(self):
        router = make_cluster()
        router.subscribe("c", "big", JOIN_SQL)
        tick_stock(router, 7, 200.0)
        router.refresh()
        stats = router.stats()
        assert set(stats["shards"]) == {0, 1, 2}
        assert stats["shard_totals"].get("executions", 0) >= 1
        assert stats["subscriptions"] == 1
        for info in stats["shards"].values():
            assert info["alive"]

    def test_prometheus_has_per_shard_labels_and_parses(self):
        router = make_cluster()
        router.subscribe("c", "big", JOIN_SQL)
        tick_stock(router, 7, 200.0)
        router.refresh()
        text = router.prometheus()
        parsed = parse_prometheus_text(text)
        shard_labels = {
            labels
            for samples in parsed.values()
            for labels in samples
            if any(k == "shard" for k, __ in labels)
        }
        shards_seen = {
            dict(labels)["shard"] for labels in shard_labels
        }
        assert shards_seen == {"0", "1", "2"}
        assert any(
            dict(labels).get("role") == "router"
            for samples in parsed.values()
            for labels in samples
        )
