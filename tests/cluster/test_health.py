"""HealthMonitor state machine and FaultInjector scripting."""

import pytest

from repro.cluster.health import (
    ALIVE,
    DEAD,
    SUSPECT,
    FaultInjector,
    HealthMonitor,
)
from repro.errors import ClusterError, ShardTimeout
from repro.net.messages import ScatterMessage, ShardHeartbeatMessage


class TestHealthMonitor:
    def test_unknown_host_is_alive(self):
        monitor = HealthMonitor()
        assert monitor.state(7) == ALIVE

    def test_failures_walk_alive_suspect_dead(self):
        monitor = HealthMonitor(suspect_after=1, dead_after=3)
        assert monitor.failure(0) == SUSPECT
        assert monitor.failure(0) == SUSPECT
        assert monitor.failure(0) == DEAD

    def test_success_heals_a_suspect(self):
        monitor = HealthMonitor(suspect_after=1, dead_after=2)
        monitor.failure(0)
        assert monitor.state(0) == SUSPECT
        monitor.success(0)
        assert monitor.state(0) == ALIVE
        # The failure streak reset too: one new miss is suspicion
        # again, not death.
        assert monitor.failure(0) == SUSPECT

    def test_mark_dead_and_forget(self):
        monitor = HealthMonitor()
        monitor.mark_dead(3)
        assert monitor.state(3) == DEAD
        monitor.forget(3)
        assert monitor.state(3) == ALIVE

    def test_backoff_grows_exponentially_and_caps(self):
        monitor = HealthMonitor(
            backoff_base=0.1, backoff_cap=1.0, jitter=0.0
        )
        assert monitor.backoff(1) == pytest.approx(0.1)
        assert monitor.backoff(2) == pytest.approx(0.2)
        assert monitor.backoff(3) == pytest.approx(0.4)
        assert monitor.backoff(10) == pytest.approx(1.0)  # capped

    def test_backoff_jitter_is_bounded_and_seeded(self):
        a = HealthMonitor(backoff_base=0.1, jitter=0.5, seed=42)
        b = HealthMonitor(backoff_base=0.1, jitter=0.5, seed=42)
        for attempt in range(1, 6):
            delay_a = a.backoff(attempt)
            assert delay_a == b.backoff(attempt)  # deterministic
            base = min(0.1 * 2 ** (attempt - 1), a.backoff_cap)
            assert base <= delay_a <= base * 1.5

    def test_snapshot_reports_non_alive_hosts(self):
        monitor = HealthMonitor(suspect_after=1, dead_after=2)
        monitor.failure(1)
        monitor.mark_dead(2)
        monitor.success(0)
        snapshot = monitor.snapshot()
        assert snapshot[1] == SUSPECT
        assert snapshot[2] == DEAD
        assert 0 not in snapshot  # alive hosts stay out of the report


class TestFaultInjector:
    def test_hang_raises_shard_timeout_then_expires(self):
        injector = FaultInjector()
        injector.hang(1, times=2)
        message = ShardHeartbeatMessage(1, 1, 1)
        with pytest.raises(ShardTimeout):
            injector(1, message, "send")
        with pytest.raises(ShardTimeout):
            injector(1, message, "send")
        injector(1, message, "send")  # budget spent: passes through
        assert len(injector.fired) == 2

    def test_crash_raises_cluster_error(self):
        injector = FaultInjector()
        injector.crash(0, times=1)
        with pytest.raises(ClusterError):
            injector(0, ShardHeartbeatMessage(0, 1, 1), "send")

    def test_faults_are_scoped_to_host_and_phase(self):
        injector = FaultInjector()
        injector.hang(1, phase="reply", times=1)
        message = ShardHeartbeatMessage(1, 1, 1)
        injector(0, message, "reply")  # other host: untouched
        injector(1, message, "send")  # other phase: untouched
        with pytest.raises(ShardTimeout):
            injector(1, message, "reply")

    def test_match_predicate_selects_message_types(self):
        injector = FaultInjector()
        injector.hang(
            2, times=5, match=lambda m: isinstance(m, ScatterMessage)
        )
        injector(2, ShardHeartbeatMessage(2, 1, 1), "send")  # no match
        with pytest.raises(ShardTimeout):
            injector(2, ScatterMessage(2, 2, 2), "send")
        assert len(injector.fired) == 1
