"""Partition-aware CQManager registration.

A manager running inside one shard owns only a slice of a partitioned
table. Declaring the partition at registration makes the manager drop
mis-routed delta entries before they reach the differential engine —
the local guarantee the cluster's scatter correctness builds on.
"""

import pytest

from repro.cluster import HashRing, Partition
from repro.core import CQManager, EvaluationStrategy
from repro.core import Engine
from repro.errors import RegistrationError
from repro.metrics import Metrics
from repro.relational import AttributeType, Schema
from repro import Database

PAIRS = [
    ("pid", AttributeType.INT),
    ("client", AttributeType.STR),
    ("shares", AttributeType.INT),
]
SQL = "SELECT pid, client, shares FROM positions WHERE shares > 100"


def make_manager():
    db = Database()
    db.create_table("positions", Schema.of(*PAIRS))
    mgr = CQManager(
        db, strategy=EvaluationStrategy.PERIODIC, metrics=Metrics()
    )
    ring = HashRing([0, 1], seed=5)
    partition = Partition("positions", "client", 1, ring, node=0)
    return db, mgr, ring, partition


def owned_clients(ring, node, n=40):
    return [
        f"client-{i}"
        for i in range(n)
        if (ring.lookup(f"positions:client-{i}") == node)
    ]


class TestPartitionRegistration:
    def test_partition_on_foreign_table_rejected(self):
        db, mgr, ring, __ = make_manager()
        bad = Partition("elsewhere", "client", 1, ring, node=0)
        with pytest.raises(RegistrationError):
            mgr.register_query("q", SQL, partition=bad)

    def test_reevaluate_engine_rejects_partitions(self):
        __, mgr, __, partition = make_manager()
        with pytest.raises(RegistrationError):
            mgr.register_query(
                "q",
                SQL,
                engine=Engine.REEVALUATE,
                keep_result=True,
                partition=partition,
            )

    def test_foreign_slice_deltas_are_dropped(self):
        db, mgr, ring, partition = make_manager()
        mgr.register_query("q", SQL, partition=partition)
        mgr.drain()
        mine = owned_clients(ring, 0)[:3]
        theirs = owned_clients(ring, 1)[:3]
        table = db.table("positions")
        with db.begin() as txn:
            for i, client in enumerate(mine + theirs):
                txn.insert_into(table, (i, client, 500))
        mgr.poll(advance_to=db.now() + 1)
        result = mgr.get("q").previous_result
        clients = {row.values[1] for row in result}
        assert clients == set(mine)

    def test_unpartitioned_registration_sees_everything(self):
        db, mgr, ring, __ = make_manager()
        mgr.register_query("q", SQL)
        mgr.drain()
        table = db.table("positions")
        with db.begin() as txn:
            for i in range(6):
                txn.insert_into(table, (i, f"client-{i}", 500))
        mgr.poll(advance_to=db.now() + 1)
        result = mgr.get("q").previous_result
        assert len(result) == 6

    def test_partition_survives_modify_into_slice(self):
        """A row moving *into* the owned slice arrives as an insert
        (the insert half of the split cross-slice modify)."""
        db, mgr, ring, partition = make_manager()
        mgr.register_query("q", SQL, partition=partition)
        mgr.drain()
        mine = owned_clients(ring, 0)[0]
        theirs = owned_clients(ring, 1)[0]
        table = db.table("positions")
        with db.begin() as txn:
            tid = txn.insert_into(table, (1, theirs, 500))
        mgr.poll(advance_to=db.now() + 1)
        assert len(mgr.get("q").previous_result) == 0
        with db.begin() as txn:
            txn.modify_in(table, tid, (1, mine, 500))
        mgr.poll(advance_to=db.now() + 1)
        result = mgr.get("q").previous_result
        assert [row.values[1] for row in result] == [mine]
