"""CycleEngine failure-path unit tests against a scripted backend.

The chaos soaks drive the engine through a real router; these tests
pin the engine's *timer bookkeeping* on the narrow sequences that a
soak only hits probabilistically — in particular the
torn-while-backing-off window: a request times out, backs off, and
the host's process dies during the backoff, so the conn is reaped and
every later re-post fails. The engine must fail the host fast (one
retry count, one fail-fast, one ``_on_host_down``), never swallow the
torn event behind the backoff guard and busy-spin on a stale
``retry_at`` that re-fires forever without ever reaching the
exhaustion check.
"""

import pytest

from repro.cluster.dispatch import CycleEngine
from repro.errors import ClusterError
from repro.metrics import Metrics
from repro.net.messages import ShardHeartbeatMessage


class _StubHealth:
    def __init__(self, backoff=0.0):
        self._backoff = backoff
        self.successes = []

    def backoff(self, attempt):
        return self._backoff

    def success(self, host):
        self.successes.append(host)


class _StubRouter:
    def __init__(self, backend, backoff=0.0, retries=1, timeout=5.0):
        self.backend = backend
        self.metrics = Metrics()
        self.health = _StubHealth(backoff)
        self._request_timeout = timeout
        self._retries = retries
        self._dead = set()
        self.failures = []
        self.downed = []

    def _record_failure(self, host):
        self.failures.append(host)

    def _on_host_down(self, host):
        self.downed.append(host)
        self._dead.add(host)


class _TornOnRetryBackend:
    """Post #1 lands, then the pipe tears: the first attempt comes
    back as a torn-connection event while the process still looks
    alive (so the engine backs off), and every re-post raises
    ``ClusterError`` with the process gone — the reaped-conn state a
    real ``ProcessBackend`` reaches when the host dies during the
    backoff window."""

    LIVELOCK_VALVE = 25

    def __init__(self):
        self.posts = 0
        self._torn_delivered = False

    def post(self, host, message):
        self.posts += 1
        if self.posts > self.LIVELOCK_VALVE:
            raise RuntimeError("livelock: engine re-posting forever")
        if self.posts > 1:
            raise ClusterError("conn gone")

    def collect(self, timeout):
        if self.posts == 1 and not self._torn_delivered:
            self._torn_delivered = True
            return [(0, 7, ClusterError("pipe torn"))]
        return []

    def host_alive(self, host):
        return self.posts <= 1

    def alive(self):
        return [0] if self.host_alive(0) else []


class _TornTwiceBackend:
    """The torn event arrives *while the request is already backing
    off* (huge backoff, so the retry never fires first) and the
    process is gone by then: the engine must treat it as a real
    failure and fail fast, not ignore it and sleep out the backoff."""

    COLLECT_VALVE = 25

    def __init__(self):
        self.posts = 0
        self.collects = 0

    def post(self, host, message):
        self.posts += 1

    def collect(self, timeout):
        self.collects += 1
        if self.collects > self.COLLECT_VALVE:
            raise RuntimeError("livelock: engine waiting out a dead host")
        if self.collects <= 2:
            # First torn: host still alive -> backoff. Second torn:
            # host dead -> must fail fast despite the pending retry.
            return [(0, 7, ClusterError("pipe torn"))]
        return []

    def host_alive(self, host):
        return self.collects < 2

    def alive(self):
        return [0] if self.host_alive(0) else []


def _run_engine(backend, **router_kwargs):
    router = _StubRouter(backend, **router_kwargs)
    engine = CycleEngine(router, max_wait=0.01)
    engine.submit(0, 0, ShardHeartbeatMessage(0, 7, 1))
    engine.run()
    return router, engine


class TestTornDuringBackoff:
    def test_failed_repost_fails_fast_instead_of_livelocking(self):
        """timeout/torn -> backoff -> process dies -> retry re-post
        raises: the engine must clear the stale retry timer, route the
        failure through fail-fast, and hand the host to
        ``_on_host_down`` — not busy-spin re-firing the dead timer."""
        backend = _TornOnRetryBackend()
        router, engine = _run_engine(backend)
        assert router.downed == [0]
        assert backend.posts == 2  # the original + exactly one re-post
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SCATTER_RETRIES) == 1
        assert snapshot.get(Metrics.SCATTER_FAILFASTS) == 1
        assert engine.replies == {}

    def test_torn_event_for_backing_off_request_is_not_swallowed(self):
        """A torn event arriving mid-backoff with the process gone is
        a real failure: cancel the retry and fail over now, instead of
        waiting out the rest of the backoff schedule."""
        backend = _TornTwiceBackend()
        router, engine = _run_engine(backend, backoff=30.0)
        assert router.downed == [0]
        assert backend.posts == 1  # never re-posted to a dead host
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SCATTER_FAILFASTS) == 1
        # Both torn events were charged to the health machine.
        assert router.failures == [0, 0]

    def test_reply_after_backoff_still_pairs(self):
        """Control: the healthy retry path is unchanged — a torn event
        on a live host backs off, the retry posts, and its reply
        settles normally."""

        class _HealsBackend:
            def __init__(self):
                self.posts = 0
                self._torn_delivered = False

            def post(self, host, message):
                self.posts += 1

            def collect(self, timeout):
                if not self._torn_delivered:
                    self._torn_delivered = True
                    return [(0, 7, ClusterError("flaky pipe"))]
                if self.posts >= 2:
                    return [(0, 7, "reply")]
                return []

            def host_alive(self, host):
                return True

            def alive(self):
                return [0]

        backend = _HealsBackend()
        router, engine = _run_engine(backend)
        assert router.downed == []
        assert backend.posts == 2
        assert engine.replies == {(0, 0): "reply"}
        assert router.health.successes == [0]
