"""Wire-codec round trips for the cluster protocol messages.

Scatter and gather frames carry the heaviest payloads in the protocol
(per-table delta slices, baseline relations, subscription specs), so
every field must survive encode/decode bit-exactly — the process
backend ships every cycle through this codec.
"""

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.net.codec import decode_payload, encode_payload
from repro.net.messages import (
    GatherReplyMessage,
    ScatterMessage,
    ShardHeartbeatMessage,
    ShardHelloMessage,
)

SCHEMA = Schema.of(
    ("sid", AttributeType.INT),
    ("name", AttributeType.STR),
    ("price", AttributeType.FLOAT),
)


def roundtrip(message):
    return decode_payload(encode_payload(message))


def sample_delta():
    return DeltaRelation(
        SCHEMA,
        [
            DeltaEntry(1, None, (1, "AAA", 10.0), 3),
            DeltaEntry(2, (2, "BBB", 20.0), None, 4),
            DeltaEntry(5, (5, "CCC", 30.0), (5, "CCC", 33.0), 5),
        ],
    )


def sample_relation():
    rel = Relation(SCHEMA)
    rel.add(1, (1, "AAA", 10.0))
    rel.add((2, (3, 4)), (9, "JOIN", 0.5))
    return rel


class TestShardHello:
    def test_round_trip(self):
        msg = ShardHelloMessage(
            2,
            17,
            tables=["positions", "stocks"],
            subscriptions=["SELECT ..."],
        )
        out = roundtrip(msg)
        assert isinstance(out, ShardHelloMessage)
        assert out.shard_id == 2
        assert out.horizon == 17
        assert out.tables == ["positions", "stocks"]
        assert out.subscriptions == ["SELECT ..."]

    def test_empty_defaults(self):
        out = roundtrip(ShardHelloMessage(0, 0))
        assert out.tables == [] and out.subscriptions == []


class TestScatter:
    def test_full_round_trip(self):
        msg = ScatterMessage(
            1,
            9,
            42,
            deltas={"stocks": sample_delta()},
            baselines={"positions": sample_relation()},
            subscribe=[{"cq": "k1", "sql": "SELECT sid FROM stocks"}],
            unsubscribe=["k0"],
            collect=True,
        )
        out = roundtrip(msg)
        assert isinstance(out, ScatterMessage)
        assert out.shard_id == 1 and out.seq == 9 and out.ts == 42
        assert out.collect is True
        assert out.subscribe == [{"cq": "k1", "sql": "SELECT sid FROM stocks"}]
        assert out.unsubscribe == ["k0"]
        delta = out.deltas["stocks"]
        assert sorted(e.tid for e in delta) == [1, 2, 5]
        by_tid = {e.tid: e for e in delta}
        assert by_tid[1].new == (1, "AAA", 10.0) and by_tid[1].old is None
        assert by_tid[2].old == (2, "BBB", 20.0) and by_tid[2].new is None
        assert by_tid[5].ts == 5
        baseline = out.baselines["positions"]
        assert baseline.get((2, (3, 4))) == (9, "JOIN", 0.5)
        assert len(baseline) == 2

    def test_minimal_scatter(self):
        out = roundtrip(ScatterMessage(0, 1, 2))
        assert out.deltas == {} and out.baselines == {}
        assert out.subscribe == [] and out.unsubscribe == []
        assert out.collect is False


class TestGatherReply:
    def test_entries_and_counters_round_trip(self):
        msg = GatherReplyMessage(
            3,
            9,
            42,
            41,
            entries=[("sql-key", sample_delta(), 40)],
            counters={"refreshes": 7, "terms_evaluated": 3},
        )
        out = roundtrip(msg)
        assert isinstance(out, GatherReplyMessage)
        assert out.shard_id == 3 and out.seq == 9
        assert out.ts == 42 and out.horizon == 41
        assert out.counters == {"refreshes": 7, "terms_evaluated": 3}
        [(key, delta, ts)] = out.entries
        assert key == "sql-key" and ts == 40
        assert sorted(e.tid for e in delta) == [1, 2, 5]

    def test_empty_reply(self):
        out = roundtrip(GatherReplyMessage(0, 1, 2, 2))
        assert out.entries == [] and out.counters == {}


class TestShardHeartbeat:
    def test_round_trip(self):
        out = roundtrip(ShardHeartbeatMessage(4, 11, 99, collect=True))
        assert isinstance(out, ShardHeartbeatMessage)
        assert out.shard_id == 4 and out.seq == 11
        assert out.ts == 99 and out.collect is True
