"""ProcessBackend: shards as real OS processes over the wire codec.

One consolidated scenario (spawning interpreters is expensive on the
CI box): scatter/gather through real serialization, a terminate-based
crash, and journal recovery, all converging to the oracle.
"""

import pytest

from repro.cluster import ClusterRouter, ProcessBackend
from repro.errors import ClusterError
from repro.metrics import Metrics

SQL = "SELECT name, price FROM stocks WHERE price > 102"


def test_process_shards_scatter_crash_and_recover(tmp_path):
    router = ClusterRouter(
        shards=2, seed=3, backend=ProcessBackend(wal_root=str(tmp_path))
    )
    router.declare_table(
        "stocks", [("sid", int), ("name", str), ("price", float)]
    )
    router.start()
    db = router.db
    stocks = db.table("stocks")
    with db.begin() as txn:
        for i in range(6):
            txn.insert_into(stocks, (i, f"S{i}", 100.0 + i))
    router.subscribe("c", "q", SQL)
    router.refresh()
    with db.begin() as txn:
        for row in list(stocks.current):
            if row.values[0] == 1:
                txn.modify_in(stocks, row.tid, (1, "S1", 500.0))
    router.refresh()
    oracle = sorted(r.values for r in db.query(SQL))
    assert sorted(r.values for r in router.result("c", "q")) == oracle

    # Crash (SIGTERM, no handshake) while the stream keeps moving.
    router.kill_shard(0)
    with pytest.raises(ClusterError):
        router.kill_shard(0)
    with db.begin() as txn:
        txn.insert_into(stocks, (9, "S9", 900.0))
    router.refresh()
    assert router.recover_shard(0) is True
    router.refresh()
    assert router.metrics.get(Metrics.SHARD_REPLAYS) == 1
    oracle = sorted(r.values for r in db.query(SQL))
    assert sorted(r.values for r in router.result("c", "q")) == oracle
    router.close()
    assert router.backend.alive() == []
