"""ProcessBackend: shards as real OS processes over the wire codec.

Consolidated scenarios (spawning interpreters is expensive on the CI
box): scatter/gather through real serialization, a terminate-based
crash, journal recovery, reply deadlines against a wedged (SIGSTOPped)
worker, and replicated failover across real processes — all converging
to the oracle.
"""

import os
import signal

import pytest

from repro.cluster import ClusterRouter, ProcessBackend, TableDecl
from repro.errors import ClusterError, ShardTimeout
from repro.metrics import Metrics
from repro.net.messages import ShardHeartbeatMessage

SQL = "SELECT name, price FROM stocks WHERE price > 102"


def test_process_shards_scatter_crash_and_recover(tmp_path):
    router = ClusterRouter(
        shards=2, seed=3, backend=ProcessBackend(wal_root=str(tmp_path))
    )
    router.declare_table(
        "stocks", [("sid", int), ("name", str), ("price", float)]
    )
    router.start()
    db = router.db
    stocks = db.table("stocks")
    with db.begin() as txn:
        for i in range(6):
            txn.insert_into(stocks, (i, f"S{i}", 100.0 + i))
    router.subscribe("c", "q", SQL)
    router.refresh()
    with db.begin() as txn:
        for row in list(stocks.current):
            if row.values[0] == 1:
                txn.modify_in(stocks, row.tid, (1, "S1", 500.0))
    router.refresh()
    oracle = sorted(r.values for r in db.query(SQL))
    assert sorted(r.values for r in router.result("c", "q")) == oracle

    # Crash (SIGTERM, no handshake) while the stream keeps moving.
    router.kill_shard(0)
    with pytest.raises(ClusterError):
        router.kill_shard(0)
    with db.begin() as txn:
        txn.insert_into(stocks, (9, "S9", 900.0))
    router.refresh()
    assert router.recover_shard(0) is True
    router.refresh()
    assert router.metrics.get(Metrics.SHARD_REPLAYS) == 1
    oracle = sorted(r.values for r in db.query(SQL))
    assert sorted(r.values for r in router.result("c", "q")) == oracle
    router.close()
    assert router.backend.alive() == []


def test_wedged_worker_times_out_and_retry_stays_exactly_once(tmp_path):
    """A SIGSTOPped worker is the failure detection's worst case: the
    process is alive, the pipe is open, nothing answers. The deadline
    must fire (ShardTimeout, not a hang), and after the worker resumes,
    the stale reply it eventually wrote must be drained so the next
    request pairs with its own reply."""
    backend = ProcessBackend(wal_root=str(tmp_path), timeout=5.0)
    decls = [TableDecl("stocks", [("sid", int), ("price", float)])]
    backend.spawn(0, decls)
    try:
        reply = backend.send(0, ShardHeartbeatMessage(0, 1, 1))
        assert reply.seq == 1

        pid = backend._procs[0].pid
        os.kill(pid, signal.SIGSTOP)
        try:
            with pytest.raises(ShardTimeout):
                backend.send(
                    0, ShardHeartbeatMessage(0, 2, 2), timeout=0.2
                )
        finally:
            os.kill(pid, signal.SIGCONT)

        # The resumed worker answered seq 2 into the pipe; the next
        # send drains that stale reply and pairs with its own.
        reply = backend.send(0, ShardHeartbeatMessage(0, 3, 3))
        assert reply.seq == 3
        assert backend.stale_replies == 1

        # A frame without an integer seq can never be paired with its
        # reply (``None == None`` would match any stale seqless frame),
        # so the backend refuses to send it at all.
        seqless = ShardHeartbeatMessage(0, 4, 4)
        seqless.seq = None
        with pytest.raises(ClusterError, match="integer seq"):
            backend.send(0, seqless)
        reply = backend.send(0, ShardHeartbeatMessage(0, 5, 5))
        assert reply.seq == 5
    finally:
        backend.close()
    assert backend.alive() == []


def test_replicated_failover_across_real_processes(tmp_path):
    """Kill a primary's OS process mid-stream: the router promotes the
    replica over the pipe protocol and the cycle completes."""
    router = ClusterRouter(
        shards=2,
        seed=3,
        replicas=1,
        backend=ProcessBackend(wal_root=str(tmp_path), timeout=30.0),
    )
    router.declare_table(
        "stocks", [("sid", int), ("name", str), ("price", float)]
    )
    router.start()
    db = router.db
    stocks = db.table("stocks")
    with db.begin() as txn:
        for i in range(6):
            txn.insert_into(stocks, (i, f"S{i}", 100.0 + i))
    router.subscribe("c", "q", SQL)
    router.refresh()

    router.kill_shard(0)
    with db.begin() as txn:
        txn.insert_into(stocks, (9, "S9", 900.0))
    router.refresh()  # same-cycle failover, no ClusterError
    assert router.metrics.get(Metrics.FAILOVERS) == 1
    oracle = sorted(r.values for r in db.query(SQL))
    assert sorted(r.values for r in router.result("c", "q")) == oracle

    with db.begin() as txn:
        txn.insert_into(stocks, (10, "S10", 50.0))
        txn.insert_into(stocks, (11, "S11", 1100.0))
    router.refresh()
    oracle = sorted(r.values for r in db.query(SQL))
    assert sorted(r.values for r in router.result("c", "q")) == oracle
    router.close()
    assert router.backend.alive() == []
