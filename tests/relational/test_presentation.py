"""Tests for presentation helpers: sorted_rows, top-N delivery."""

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(("name", AttributeType.STR), ("price", AttributeType.INT))


def make(rows):
    return Relation.from_pairs(SCHEMA, rows)


class TestTop:
    def test_descending_default(self):
        rel = make([(1, ("a", 10)), (2, ("b", 30)), (3, ("c", 20))])
        top = rel.top(2, by="price")
        assert [row.values[1] for row in top] == [30, 20]

    def test_ascending(self):
        rel = make([(1, ("a", 10)), (2, ("b", 30)), (3, ("c", 20))])
        top = rel.top(2, by="price", descending=False)
        assert [row.values[1] for row in top] == [10, 20]

    def test_n_larger_than_relation(self):
        rel = make([(1, ("a", 10))])
        assert len(rel.top(99, by="price")) == 1

    def test_nulls_sort_last(self):
        rel = make([(1, ("a", None)), (2, ("b", 5))])
        top = rel.top(2, by="price")
        assert top[0].values[1] == 5
        assert top[1].values[1] is None

    def test_zero_and_negative_n(self):
        rel = make([(1, ("a", 10))])
        assert rel.top(0, by="price") == []
        assert rel.top(-3, by="price") == []

    def test_string_ordering(self):
        rel = make([(1, ("zeta", 1)), (2, ("alpha", 2))])
        top = rel.top(1, by="name", descending=False)
        assert top[0].values[0] == "alpha"


class TestSortedRows:
    def test_deterministic_over_mixed_tids(self):
        rel = Relation.from_pairs(
            SCHEMA, [((2, 1), ("x", 1)), (1, ("y", 2)), ((1, 9), ("z", 3))]
        )
        first = [row.tid for row in rel.sorted_rows()]
        second = [row.tid for row in rel.sorted_rows()]
        assert first == second
        assert len(first) == 3
