"""Tests for the SQL-subset tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.relational.sql.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.text for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:3])

    def test_identifiers_preserve_case(self):
        token = tokenize("Stocks")[0]
        assert token.kind is TokenKind.IDENT and token.text == "Stocks"

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0 and tokens[1].position == 3


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.value == 42 and isinstance(token.value, int)

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.value == 3.25 and isinstance(token.value, float)

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5

    def test_trailing_dot_is_symbol(self):
        # `stocks.price`: the dot must not be eaten by a number.
        assert texts("a.b") == ["a", ".", "b"]


class TestStrings:
    def test_simple_string(self):
        assert tokenize("'IBM'")[0].value == "IBM"

    def test_escaped_quote(self):
        assert tokenize("'o''brien'")[0].value == "o'brien"

    def test_unterminated_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")


class TestSymbols:
    def test_two_char_symbols_win(self):
        assert texts("a <= b >= c <> d != e") == [
            "a", "<=", "b", ">=", "c", "<>", "d", "!=", "e",
        ]

    def test_arithmetic_symbols(self):
        assert texts("(a + b) * 2 / 1 - 3") == [
            "(", "a", "+", "b", ")", "*", "2", "/", "1", "-", "3",
        ]

    def test_unknown_character_raises(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2
