"""Tests for hash indexes and index sets."""

import pytest

from repro.metrics import Metrics
from repro.relational.indexes import HashIndex, IndexSet
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(
    ("sid", AttributeType.INT),
    ("name", AttributeType.STR),
    ("price", AttributeType.INT),
)


@pytest.fixture
def relation():
    return Relation.from_pairs(
        SCHEMA,
        [
            (1, (100, "DEC", 156)),
            (2, (200, "QLI", 145)),
            (3, (300, "DEC", 150)),
        ],
    )


class TestHashIndex:
    def test_build_and_lookup(self, relation):
        index = HashIndex.build(relation, (1,))
        assert index.lookup(("DEC",)) == {1, 3}
        assert index.lookup(("ZZZ",)) == frozenset()

    def test_on_columns(self, relation):
        index = HashIndex.on_columns(SCHEMA, ["name", "price"])
        assert index.positions == (1, 2)

    def test_needs_key_columns(self):
        with pytest.raises(ValueError):
            HashIndex(())

    def test_insert_remove(self, relation):
        index = HashIndex.build(relation, (1,))
        index.remove(1, (100, "DEC", 156))
        assert index.lookup(("DEC",)) == {3}
        index.remove(3, (300, "DEC", 150))
        assert index.lookup(("DEC",)) == frozenset()
        assert index.bucket_count() == 1  # QLI remains

    def test_update_moves_between_buckets(self, relation):
        index = HashIndex.build(relation, (1,))
        index.update(1, (100, "DEC", 156), (100, "QLI", 156))
        assert 1 in index.lookup(("QLI",))
        assert index.lookup(("DEC",)) == {3}

    def test_update_same_key_is_noop(self, relation):
        index = HashIndex.build(relation, (1,))
        index.update(1, (100, "DEC", 156), (100, "DEC", 999))
        assert index.lookup(("DEC",)) == {1, 3}

    def test_len_counts_entries(self, relation):
        index = HashIndex.build(relation, (1,))
        assert len(index) == 3

    def test_lookup_counts_probes(self, relation):
        metrics = Metrics()
        index = HashIndex.build(relation, (1,))
        index.lookup(("DEC",), metrics)
        index.lookup(("QLI",), metrics)
        assert metrics[Metrics.INDEX_PROBES] == 2


class TestIndexSet:
    def test_routing_on_updates(self, relation):
        indexes = IndexSet()
        by_name = HashIndex.build(relation, (1,))
        by_sid = HashIndex.build(relation, (0,))
        indexes.add(by_name)
        indexes.add(by_sid)
        indexes.on_insert(4, (400, "MAC", 117))
        assert 4 in by_name.lookup(("MAC",))
        assert 4 in by_sid.lookup((400,))
        indexes.on_modify(4, (400, "MAC", 117), (400, "MAC2", 117))
        assert 4 in by_name.lookup(("MAC2",))
        indexes.on_delete(4, (400, "MAC2", 117))
        assert 4 not in by_name.lookup(("MAC2",))
        assert 4 not in by_sid.lookup((400,))

    def test_best_for_matches_any_order(self, relation):
        indexes = IndexSet()
        index = HashIndex.build(relation, (1, 2))
        indexes.add(index)
        assert indexes.best_for((2, 1)) is index
        assert indexes.best_for((0,)) is None

    def test_single_column(self, relation):
        indexes = IndexSet()
        index = HashIndex.build(relation, (0,))
        indexes.add(index)
        assert indexes.single_column(0) is index
        assert indexes.single_column(1) is None
