"""Tests for compile-time type checking of expressions and predicates."""

import pytest

from repro.errors import ExpressionError
from repro.relational.binding import EnvBinder, SingleRowBinder
from repro.relational.expressions import Abs, Negate, col, lit
from repro.relational.predicates import eq, gt
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(
    ("name", AttributeType.STR),
    ("price", AttributeType.INT),
    ("ratio", AttributeType.FLOAT),
    ("hot", AttributeType.BOOL),
)
BINDER = SingleRowBinder(SCHEMA)


class TestExpressionTyping:
    def test_column_types_inferred(self):
        assert col("price").infer_type(BINDER) is AttributeType.INT
        assert col("name").infer_type(BINDER) is AttributeType.STR

    def test_literal_types_inferred(self):
        assert lit(5).infer_type(BINDER) is AttributeType.INT
        assert lit("x").infer_type(BINDER) is AttributeType.STR
        assert lit(None).infer_type(BINDER) is None

    def test_arithmetic_promotes_to_float(self):
        assert (col("price") + lit(1)).infer_type(BINDER) is AttributeType.INT
        assert (col("price") + col("ratio")).infer_type(BINDER) is AttributeType.FLOAT
        assert (col("price") / lit(2)).infer_type(BINDER) is AttributeType.FLOAT

    def test_arithmetic_over_string_rejected(self):
        with pytest.raises(ExpressionError):
            (col("name") + lit(1)).infer_type(BINDER)

    def test_arithmetic_over_bool_rejected(self):
        with pytest.raises(ExpressionError):
            (col("hot") * lit(2)).infer_type(BINDER)

    def test_abs_and_negate_require_numeric(self):
        assert Abs(col("ratio")).infer_type(BINDER) is AttributeType.FLOAT
        with pytest.raises(ExpressionError):
            Abs(col("name")).infer_type(BINDER)
        with pytest.raises(ExpressionError):
            Negate(col("hot")).infer_type(BINDER)


class TestComparisonTyping:
    def test_numeric_cross_comparison_allowed(self):
        gt(col("price"), col("ratio")).compile(BINDER)

    def test_same_type_comparison_allowed(self):
        eq(col("name"), lit("IBM")).compile(BINDER)
        eq(col("hot"), lit(True)).compile(BINDER)

    def test_string_vs_int_rejected_at_compile(self):
        with pytest.raises(ExpressionError):
            gt(col("name"), lit(5)).compile(BINDER)

    def test_bool_vs_int_rejected(self):
        with pytest.raises(ExpressionError):
            eq(col("hot"), lit(1)).compile(BINDER)

    def test_null_literal_comparisons_permissive(self):
        # Unknown type on one side: compiles; evaluates to False.
        compiled = eq(col("name"), lit(None)).compile(BINDER)
        assert compiled(("IBM", 1, 1.0, True)) is False

    def test_ill_typed_sql_rejected_at_query_time(self, db, stocks):
        with pytest.raises(ExpressionError):
            db.query("SELECT name FROM stocks WHERE name > 5")

    def test_ill_typed_sql_in_env_binder(self, db, stocks):
        trades = db.create_table(
            "trades",
            [("sid", AttributeType.INT), ("note", AttributeType.STR)],
        )
        with pytest.raises(ExpressionError):
            db.query(
                "SELECT s.name FROM stocks s, trades t WHERE s.price = t.note"
            )

    def test_arithmetic_type_error_in_where(self, db, stocks):
        with pytest.raises(ExpressionError):
            db.query("SELECT name FROM stocks WHERE name + 1 > 2")
