"""Tests for aggregate accumulators and complete aggregate evaluation."""

import pytest

from repro.errors import ExpressionError, QueryError
from repro.relational.aggregates import (
    AggregateQuery,
    AggregateSpec,
    AvgAccumulator,
    CountAccumulator,
    MaxAccumulator,
    MinAccumulator,
    SumAccumulator,
    evaluate_aggregate,
)
from repro.relational.algebra import RelationRef, SPJQuery
from repro.relational.expressions import col, lit
from repro.relational.predicates import gt
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(
    ("branch", AttributeType.STR),
    ("amount", AttributeType.INT),
)


def resolver_for(rows):
    rel = Relation.from_pairs(SCHEMA, list(enumerate(rows)))
    return {"accounts": rel}.__getitem__


class TestAccumulators:
    def test_sum_add_remove(self):
        acc = SumAccumulator()
        acc.add(5)
        acc.add(7)
        acc.remove(5)
        assert acc.result() == 7

    def test_sum_empty_is_null(self):
        acc = SumAccumulator()
        assert acc.result() is None
        acc.add(3)
        acc.remove(3)
        assert acc.result() is None

    def test_sum_ignores_null(self):
        acc = SumAccumulator()
        acc.add(None)
        assert acc.result() is None and acc.is_empty()

    def test_count_star_counts_nulls(self):
        acc = CountAccumulator(star=True)
        acc.add(None)
        acc.add(1)
        assert acc.result() == 2

    def test_count_column_skips_nulls(self):
        acc = CountAccumulator()
        acc.add(None)
        acc.add(1)
        assert acc.result() == 1
        acc.remove(1)
        assert acc.result() == 0

    def test_avg(self):
        acc = AvgAccumulator()
        for v in (10, 20, 30):
            acc.add(v)
        acc.remove(30)
        assert acc.result() == 15.0

    def test_min_max_basic(self):
        lo, hi = MinAccumulator(), MaxAccumulator()
        for v in (5, 1, 9):
            lo.add(v)
            hi.add(v)
        assert lo.result() == 1 and hi.result() == 9

    def test_max_removal_of_extremum_rescans(self):
        acc = MaxAccumulator()
        for v in (5, 9, 9, 3):
            acc.add(v)
        acc.remove(9)
        assert acc.result() == 9  # one 9 remains
        acc.remove(9)
        assert acc.result() == 5

    def test_min_removal_then_add(self):
        acc = MinAccumulator()
        acc.add(4)
        acc.remove(4)
        assert acc.result() is None
        acc.add(8)
        assert acc.result() == 8


class TestSpecs:
    def test_default_names(self):
        assert AggregateSpec("SUM", col("amount")).name == "sum_amount"
        assert AggregateSpec("COUNT", None).name == "count"

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("MEDIAN", col("amount"))

    def test_non_count_requires_column(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("SUM", None)

    def test_result_types(self):
        assert (
            AggregateSpec("COUNT", None).result_type(None)
            is AttributeType.INT
        )
        assert (
            AggregateSpec("AVG", col("x")).result_type(AttributeType.INT)
            is AttributeType.FLOAT
        )
        assert (
            AggregateSpec("SUM", col("x")).result_type(AttributeType.FLOAT)
            is AttributeType.FLOAT
        )


class TestEvaluation:
    def core(self, predicate=None):
        return SPJQuery(
            [RelationRef("accounts")],
            predicate if predicate is not None else gt(col("amount"), lit(-1)),
        )

    def test_global_aggregates(self):
        q = AggregateQuery(
            self.core(),
            [
                AggregateSpec("SUM", col("amount"), "total"),
                AggregateSpec("COUNT", None, "n"),
                AggregateSpec("MIN", col("amount"), "lo"),
            ],
        )
        out = evaluate_aggregate(
            q, resolver_for([("a", 10), ("a", 20), ("b", 5)])
        )
        assert len(out) == 1
        assert out.get(()) == (35, 3, 5)

    def test_global_aggregate_over_empty_input(self):
        q = AggregateQuery(
            self.core(gt(col("amount"), lit(1000))),
            [AggregateSpec("SUM", col("amount"), "total"), AggregateSpec("COUNT", None, "n")],
        )
        out = evaluate_aggregate(q, resolver_for([("a", 10)]))
        assert out.get(()) == (None, 0)

    def test_group_by(self):
        q = AggregateQuery(
            self.core(),
            [AggregateSpec("SUM", col("amount"), "total")],
            group_by=[col("branch")],
        )
        out = evaluate_aggregate(
            q, resolver_for([("a", 10), ("a", 20), ("b", 5)])
        )
        assert out.get(("a",)) == ("a", 30)
        assert out.get(("b",)) == ("b", 5)

    def test_group_by_respects_predicate(self):
        q = AggregateQuery(
            self.core(gt(col("amount"), lit(8))),
            [AggregateSpec("COUNT", None, "n")],
            group_by=[col("branch")],
        )
        out = evaluate_aggregate(
            q, resolver_for([("a", 10), ("a", 2), ("b", 5)])
        )
        assert out.get(("a",)) == ("a", 1)
        assert ("b",) not in out

    def test_output_schema(self):
        q = AggregateQuery(
            self.core(),
            [AggregateSpec("AVG", col("amount"), "mean")],
            group_by=[col("branch")],
        )
        schema = q.output_schema(SCHEMA)
        assert schema.names == ("branch", "mean")
        assert schema.type_of("mean") is AttributeType.FLOAT

    def test_requires_aggregates(self):
        with pytest.raises(QueryError):
            AggregateQuery(self.core(), [])

    def test_to_sql(self):
        q = AggregateQuery(
            self.core(),
            [AggregateSpec("SUM", col("amount"), "total")],
            group_by=[col("branch")],
        )
        sql = q.to_sql()
        assert sql.startswith("SELECT branch, SUM(amount) AS total FROM")
        assert sql.endswith("GROUP BY branch")
