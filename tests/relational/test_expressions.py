"""Tests for scalar expressions and their compilation."""

import pytest

from repro.errors import ExpressionError, UnknownAttributeError
from repro.relational.binding import SingleRowBinder
from repro.relational.expressions import (
    Abs,
    Arithmetic,
    ColumnRef,
    Literal,
    Negate,
    col,
    lit,
)
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(("a", AttributeType.INT), ("b", AttributeType.INT))
BINDER = SingleRowBinder(SCHEMA)


def run(expr, row):
    return expr.compile(BINDER)(row)


class TestBasics:
    def test_literal(self):
        assert run(lit(42), (0, 0)) == 42

    def test_column_ref(self):
        assert run(col("b"), (1, 2)) == 2

    def test_unknown_column(self):
        with pytest.raises(UnknownAttributeError):
            col("zzz").compile(BINDER)

    def test_col_parses_dotted_shorthand(self):
        ref = col("stocks.price")
        assert ref.qualifier == "stocks" and ref.name == "price"

    def test_qualifier_must_match_alias(self):
        binder = SingleRowBinder(SCHEMA, alias="s")
        assert ColumnRef("a", "s").compile(binder)((5, 6)) == 5
        with pytest.raises(UnknownAttributeError):
            ColumnRef("a", "t").compile(binder)

    def test_empty_name_rejected(self):
        with pytest.raises(ExpressionError):
            ColumnRef("")


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,expected", [("+", 9), ("-", 3), ("*", 18), ("/", 2.0)]
    )
    def test_operators(self, op, expected):
        assert run(Arithmetic(op, col("a"), col("b")), (6, 3)) == expected

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            Arithmetic("%", col("a"), col("b"))

    def test_null_propagates(self):
        assert run(col("a") + col("b"), (None, 3)) is None

    def test_operator_overloads(self):
        expr = (col("a") + lit(1)) * lit(2)
        assert run(expr, (5, 0)) == 12

    def test_nested(self):
        expr = Arithmetic("+", Arithmetic("*", col("a"), lit(10)), col("b"))
        assert run(expr, (3, 4)) == 34


class TestUnary:
    def test_abs(self):
        assert run(Abs(col("a") - lit(75)), (70, 0)) == 5

    def test_abs_null(self):
        assert run(Abs(col("a")), (None, 0)) is None

    def test_negate(self):
        assert run(Negate(col("a")), (4, 0)) == -4

    def test_negate_null(self):
        assert run(Negate(col("a")), (None, 0)) is None


class TestStructure:
    def test_equality(self):
        assert col("a") + lit(1) == col("a") + lit(1)
        assert col("a") + lit(1) != col("a") + lit(2)

    def test_hashable(self):
        assert len({col("a"), col("a"), col("b")}) == 2

    def test_to_sql(self):
        assert (col("a") + lit(1)).to_sql() == "(a + 1)"
        assert Abs(col("x", "s")).to_sql() == "ABS(s.x)"
        assert lit("o'brien").to_sql() == "'o''brien'"

    def test_column_refs_enumeration(self):
        expr = Abs(col("a") - col("b"))
        assert {ref.name for ref in expr.column_refs()} == {"a", "b"}
