"""Tests for attribute types: validation, coercion, wire sizes."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import (
    AttributeType,
    infer_type,
    value_wire_size,
)


class TestValidate:
    def test_int_accepts_int(self):
        assert AttributeType.INT.validate(42) == 42

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.validate(True)

    def test_int_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.validate(1.5)

    def test_float_coerces_int(self):
        value = AttributeType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_accepts_float(self):
        assert AttributeType.FLOAT.validate(2.5) == 2.5

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.FLOAT.validate(False)

    def test_str_accepts_str(self):
        assert AttributeType.STR.validate("DEC") == "DEC"

    def test_str_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.STR.validate(7)

    def test_bool_accepts_bool(self):
        assert AttributeType.BOOL.validate(True) is True

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.BOOL.validate(1)

    @pytest.mark.parametrize(
        "attr_type",
        [AttributeType.INT, AttributeType.FLOAT, AttributeType.STR, AttributeType.BOOL],
    )
    def test_none_always_accepted(self, attr_type):
        # Differential relations use nulls for the missing side.
        assert attr_type.validate(None) is None


class TestInference:
    def test_infer_each_type(self):
        assert infer_type(1) is AttributeType.INT
        assert infer_type(1.0) is AttributeType.FLOAT
        assert infer_type("x") is AttributeType.STR
        assert infer_type(True) is AttributeType.BOOL

    def test_infer_rejects_unknown(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])


class TestNumericAndSizes:
    def test_is_numeric(self):
        assert AttributeType.INT.is_numeric()
        assert AttributeType.FLOAT.is_numeric()
        assert not AttributeType.STR.is_numeric()
        assert not AttributeType.BOOL.is_numeric()

    def test_wire_size_of_values(self):
        assert value_wire_size(None) == 1
        assert value_wire_size(True) == 1
        assert value_wire_size(12345) == 8
        assert value_wire_size(1.5) == 8
        assert value_wire_size("abc") == 4 + 3

    def test_wire_size_utf8(self):
        assert value_wire_size("é") == 4 + 2
