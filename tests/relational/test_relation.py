"""Tests for Relation: container behaviour and complete algebra ops."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.relational.relation import Relation, Row
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(("k", AttributeType.INT), ("v", AttributeType.STR))


def make(pairs):
    return Relation.from_pairs(SCHEMA, pairs)


class TestContainer:
    def test_add_get_len(self):
        rel = make([(1, (10, "a")), (2, (20, "b"))])
        assert len(rel) == 2
        assert rel.get(1) == (10, "a")
        assert rel.get_or_none(3) is None

    def test_add_overwrites_same_tid(self):
        rel = make([(1, (10, "a"))])
        rel.add(1, (11, "b"))
        assert len(rel) == 1
        assert rel.get(1) == (11, "b")

    def test_add_validates(self):
        rel = make([])
        with pytest.raises(SchemaError):
            rel.add(1, ("not-int", "a"))

    def test_remove_and_discard(self):
        rel = make([(1, (10, "a"))])
        rel.remove(1)
        assert 1 not in rel
        rel.discard(1)  # no-op, no raise

    def test_iteration_yields_rows(self):
        rel = make([(1, (10, "a"))])
        rows = list(rel)
        assert rows == [Row(1, (10, "a"))]

    def test_copy_is_independent(self):
        rel = make([(1, (10, "a"))])
        clone = rel.copy()
        clone.add(2, (20, "b"))
        assert len(rel) == 1 and len(clone) == 2

    def test_equality_is_content_based(self):
        assert make([(1, (10, "a"))]) == make([(1, (10, "a"))])
        assert make([(1, (10, "a"))]) != make([(2, (10, "a"))])
        assert make([(1, (10, "a"))]) != make([(1, (11, "a"))])


class TestAlgebra:
    def test_select(self):
        rel = make([(1, (10, "a")), (2, (20, "b")), (3, (30, "c"))])
        out = rel.select(lambda values: values[0] > 15)
        assert sorted(row.tid for row in out) == [2, 3]

    def test_project_keeps_tids(self):
        rel = make([(1, (10, "a")), (2, (20, "a"))])
        out = rel.project(["v"])
        assert out.get(1) == ("a",)
        assert out.get(2) == ("a",)
        assert len(out) == 2  # duplicates survive because tids differ

    def test_distinct_values(self):
        rel = make([(1, (10, "a")), (2, (10, "a")), (3, (20, "b"))])
        assert len(rel.distinct_values()) == 2

    def test_join_composite_tids(self):
        right_schema = Schema.of(("k2", AttributeType.INT), ("v2", AttributeType.STR))
        left = make([(1, (10, "a")), (2, (20, "b"))])
        right = Relation.from_pairs(right_schema, [(7, (10, "x")), (8, (30, "y"))])
        out = left.join(right, lambda lv, rv: lv[0] == rv[0])
        assert len(out) == 1
        assert out.get((1, 7)) == (10, "a", 10, "x")

    def test_equijoin_matches_nested_loop(self):
        right_schema = Schema.of(("k2", AttributeType.INT), ("v2", AttributeType.STR))
        left = make([(i, (i % 3, str(i))) for i in range(1, 8)])
        right = Relation.from_pairs(
            right_schema, [(100 + i, (i % 3, "r")) for i in range(1, 5)]
        )
        theta = left.join(right, lambda lv, rv: lv[0] == rv[0])
        hashed = left.equijoin(right, (0,), (0,))
        assert theta == hashed

    def test_union_tid_keyed(self):
        a = make([(1, (10, "a")), (2, (20, "b"))])
        b = make([(2, (21, "B")), (3, (30, "c"))])
        out = a.union(b)
        assert len(out) == 3
        assert out.get(2) == (21, "B")  # other side wins on collision

    def test_difference_tid_keyed(self):
        a = make([(1, (10, "a")), (2, (20, "b"))])
        b = make([(2, (99, "?"))])
        out = a.difference(b)
        assert sorted(row.tid for row in out) == [1]

    def test_intersect(self):
        a = make([(1, (10, "a")), (2, (20, "b"))])
        b = make([(2, (99, "?")), (3, (1, "z"))])
        assert [row.tid for row in a.intersect(b)] == [2]

    def test_union_requires_compatible_schema(self):
        other = Relation(Schema.of(("only", AttributeType.STR)))
        with pytest.raises(SchemaError):
            make([]).union(other)


class TestPresentation:
    def test_table_string_contains_data(self):
        text = make([(1, (10, "abc"))]).to_table_string()
        assert "abc" in text and "k" in text and "v" in text

    def test_table_string_truncates(self):
        rel = make([(i, (i, "x")) for i in range(30)])
        text = rel.to_table_string(limit=5)
        assert "more rows" in text

    def test_none_rendered_as_dash(self):
        rel = make([(1, (None, None))])
        assert "-" in rel.to_table_string()


@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(-5, 5)),
        max_size=40,
    )
)
def test_union_difference_roundtrip_property(pairs):
    """(A ∪ B) − B has no tids of B and all tids of A − B."""
    schema = Schema.of(("x", AttributeType.INT))
    a = Relation(schema)
    b = Relation(schema)
    for tid, x in pairs:
        (a if x % 2 == 0 else b).add(tid, (x,))
    union = a.union(b)
    out = union.difference(b)
    assert all(row.tid not in b for row in out)
    for row in a:
        assert (row.tid in out) == (row.tid not in b)
