"""Tests for name resolution across one or many relation scopes."""

import pytest

from repro.errors import AmbiguousAttributeError, UnknownAttributeError
from repro.relational.binding import EnvBinder, SingleRowBinder, qualifiers_used
from repro.relational.expressions import ColumnRef, col
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

STOCKS = Schema.of(("sid", AttributeType.INT), ("price", AttributeType.INT))
TRADES = Schema.of(("sid", AttributeType.INT), ("qty", AttributeType.INT))
SCOPES = {"s": STOCKS, "t": TRADES}


class TestEnvBinder:
    def test_qualified_resolution(self):
        binder = EnvBinder(SCOPES)
        assert binder.resolve(ColumnRef("price", "s")) == ("s", 1)
        assert binder.resolve(ColumnRef("qty", "t")) == ("t", 1)

    def test_unqualified_unique_resolution(self):
        binder = EnvBinder(SCOPES)
        assert binder.resolve(ColumnRef("qty")) == ("t", 1)

    def test_ambiguous_unqualified(self):
        binder = EnvBinder(SCOPES)
        with pytest.raises(AmbiguousAttributeError):
            binder.resolve(ColumnRef("sid"))

    def test_unknown_name(self):
        binder = EnvBinder(SCOPES)
        with pytest.raises(UnknownAttributeError):
            binder.resolve(ColumnRef("volume"))

    def test_unknown_qualifier(self):
        binder = EnvBinder(SCOPES)
        with pytest.raises(UnknownAttributeError):
            binder.resolve(ColumnRef("price", "zz"))

    def test_accessor_reads_env(self):
        binder = EnvBinder(SCOPES)
        accessor = ColumnRef("price", "s").compile(binder)
        env = {"s": (7, 120), "t": (7, 3)}
        assert accessor(env) == 120


class TestSingleRowBinder:
    def test_accessor_reads_tuple(self):
        accessor = col("price").compile(SingleRowBinder(STOCKS))
        assert accessor((9, 55)) == 55

    def test_alias_checking(self):
        binder = SingleRowBinder(STOCKS, alias="s")
        accessor = ColumnRef("price", "s").compile(binder)
        assert accessor((9, 55)) == 55


def test_qualifiers_used():
    refs = [ColumnRef("price", "s"), ColumnRef("qty")]
    assert qualifiers_used(refs, SCOPES) == {"s", "t"}
