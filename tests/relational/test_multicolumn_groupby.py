"""Tests for multi-column GROUP BY (complete + differential)."""

import pytest

from repro.relational import AttributeType, evaluate_aggregate, parse_query
from repro.delta.capture import deltas_since
from repro.dra.aggregates import DifferentialAggregate

SQL = (
    "SELECT branch, kind, SUM(amount) AS total, COUNT(*) AS n "
    "FROM ledger GROUP BY branch, kind"
)


@pytest.fixture
def ledger(db):
    table = db.create_table(
        "ledger",
        [
            ("branch", AttributeType.STR),
            ("kind", AttributeType.STR),
            ("amount", AttributeType.INT),
        ],
    )
    table.insert_many(
        [
            ("north", "savings", 100),
            ("north", "savings", 50),
            ("north", "checking", 25),
            ("south", "checking", 75),
        ]
    )
    return table


def test_complete_evaluation(db, ledger):
    out = db.query(SQL)
    assert out.get(("north", "savings")) == ("north", "savings", 150, 2)
    assert out.get(("north", "checking")) == ("north", "checking", 25, 1)
    assert out.get(("south", "checking")) == ("south", "checking", 75, 1)
    assert len(out) == 3


def test_differential_composite_group_migration(db, ledger):
    query = parse_query(SQL)
    state = DifferentialAggregate(query, db)
    state.initialize()
    ts = db.now()
    # Move a row across one dimension of the composite key.
    tid = next(
        r.tid for r in ledger.rows() if r.values == ("north", "checking", 25)
    )
    ledger.modify(tid, updates={"branch": "south"})
    delta = state.update(deltas_since([ledger], ts), ts=db.now())
    assert delta.get(("north", "checking")).new is None  # group vanished
    assert delta.get(("south", "checking")).new == ("south", "checking", 100, 2)
    assert state.current() == evaluate_aggregate(query, db.relation)


def test_group_by_with_having_on_composite(db, ledger):
    sql = SQL + " HAVING total >= 75"
    out = db.query(sql)
    assert set(out.tids()) == {("north", "savings"), ("south", "checking")}


def test_manager_runs_composite_group_cq(db, ledger):
    from repro.core import CQManager, DeliveryMode

    mgr = CQManager(db)
    mgr.register_sql("ledger-rollup", SQL, mode=DeliveryMode.COMPLETE)
    mgr.drain()
    ledger.insert(("west", "savings", 10))
    notes = mgr.drain()
    assert notes[0].result == db.query(SQL)
