"""Tests for the SQL-subset parser."""

import pytest

from repro.errors import SQLSyntaxError, UnsupportedQueryError
from repro.relational.aggregates import AggregateQuery
from repro.relational.algebra import SPJQuery
from repro.relational.expressions import Abs, col, lit
from repro.relational.predicates import And, Comparison, Not, Or
from repro.relational.sql import parse_query


class TestProjection:
    def test_select_star(self):
        q = parse_query("SELECT * FROM stocks")
        assert isinstance(q, SPJQuery)
        assert q.projection is None

    def test_column_list_with_aliases(self):
        q = parse_query("SELECT name, price AS px, price p2 FROM stocks")
        assert [c.name for c in q.projection] == ["name", "px", "p2"]

    def test_qualified_columns(self):
        q = parse_query("SELECT s.name FROM stocks s")
        assert q.projection[0].ref.qualifier == "s"

    def test_distinct_rejected_with_hint(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT DISTINCT name FROM stocks")


class TestFrom:
    def test_aliases(self):
        q = parse_query("SELECT * FROM stocks AS s, trades t")
        assert q.aliases == ("s", "t")
        assert q.table_names == ("stocks", "trades")

    def test_default_alias_is_table(self):
        q = parse_query("SELECT * FROM stocks")
        assert q.aliases == ("stocks",)


class TestWhere:
    def test_simple_comparison(self):
        q = parse_query("SELECT * FROM stocks WHERE price > 120")
        assert q.predicate == Comparison(">", col("price"), lit(120))

    def test_and_or_precedence(self):
        q = parse_query(
            "SELECT * FROM t WHERE a > 1 AND b < 2 OR c = 3"
        )
        # AND binds tighter: (a>1 AND b<2) OR c=3
        assert isinstance(q.predicate, Or)
        assert len(q.predicate.children) == 2
        assert isinstance(q.predicate.children[0], And)

    def test_parenthesized_predicate(self):
        q = parse_query("SELECT * FROM t WHERE a > 1 AND (b < 2 OR c = 3)")
        assert isinstance(q.predicate, And)
        assert isinstance(q.predicate.children[1], Or)

    def test_parenthesized_arithmetic(self):
        q = parse_query("SELECT * FROM t WHERE (a + b) * 2 > 10")
        assert isinstance(q.predicate, Comparison)

    def test_not(self):
        q = parse_query("SELECT * FROM t WHERE NOT a > 1")
        assert isinstance(q.predicate, Not)

    def test_between(self):
        q = parse_query("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        conjuncts = q.predicate.conjuncts()
        assert len(conjuncts) == 2

    def test_abs_function(self):
        q = parse_query(
            "SELECT * FROM stocks WHERE ABS(price - 75) > 5"
        )
        comparison = q.predicate
        assert isinstance(comparison.left, Abs)

    def test_paper_q3(self):
        # Q3: "IBM stock transactions that differ by more than $5 from $75"
        q = parse_query(
            "SELECT * FROM stocks WHERE name = 'IBM' AND ABS(price - 75) > 5"
        )
        assert len(q.predicate.conjuncts()) == 2

    def test_string_and_negative_literals(self):
        q = parse_query("SELECT * FROM t WHERE name = 'x' AND delta > -5")
        assert len(q.predicate.conjuncts()) == 2

    def test_join_condition(self):
        q = parse_query(
            "SELECT s.name FROM stocks s, trades t WHERE s.sid = t.sid"
        )
        assert q.predicate.is_equijoin_pair()


class TestAggregates:
    def test_global_aggregate(self):
        q = parse_query("SELECT SUM(amount) AS total FROM accounts")
        assert isinstance(q, AggregateQuery)
        assert q.aggregates[0].func == "SUM"
        assert q.aggregates[0].name == "total"
        assert not q.group_by

    def test_count_star(self):
        q = parse_query("SELECT COUNT(*) AS n FROM accounts")
        assert q.aggregates[0].ref is None

    def test_count_star_only_for_count(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT SUM(*) FROM accounts")

    def test_group_by(self):
        q = parse_query(
            "SELECT branch, SUM(amount) AS total FROM accounts GROUP BY branch"
        )
        assert [r.name for r in q.group_by] == ["branch"]

    def test_ungrouped_plain_column_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT branch, SUM(amount) FROM accounts")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT branch FROM accounts GROUP BY branch")

    def test_aggregate_with_where(self):
        q = parse_query(
            "SELECT AVG(price) AS mean FROM stocks WHERE price > 10"
        )
        assert not isinstance(q.core.predicate, type(None))


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a >",
            "SELECT * FROM t trailing garbage (",
            "FROM t SELECT *",
            "SELECT * FROM t WHERE a ! b",
        ],
    )
    def test_syntax_errors(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse_query(sql)

    def test_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            parse_query("SELECT * FROM t WHERE a > > 1")
        assert excinfo.value.position >= 0


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT name, price FROM stocks WHERE price > 120",
            "SELECT s.name FROM stocks s, trades t WHERE s.sid = t.sid AND t.qty > 5",
            "SELECT * FROM stocks WHERE name = 'IBM' AND ABS(price - 75) > 5",
        ],
    )
    def test_parse_to_sql_reparses(self, sql):
        """to_sql() output is itself parseable and equal as a query."""
        first = parse_query(sql)
        second = parse_query(first.to_sql())
        assert first == second
