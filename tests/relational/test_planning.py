"""Tests for predicate decomposition (local / join edge / residual)."""

from repro.relational.algebra import RelationRef, SPJQuery
from repro.relational.expressions import col, lit
from repro.relational.planning import plan_predicate
from repro.relational.predicates import And, Or, TruePredicate, eq, gt, lt
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

STOCKS = Schema.of(("sid", AttributeType.INT), ("price", AttributeType.INT))
TRADES = Schema.of(("sid", AttributeType.INT), ("qty", AttributeType.INT))
SCOPES = {"s": STOCKS, "t": TRADES}


def test_local_conjuncts_assigned_per_alias():
    pred = And(gt(col("price", "s"), lit(100)), lt(col("qty", "t"), lit(5)))
    plan = plan_predicate(pred, SCOPES)
    assert plan.local["s"] == [gt(col("price", "s"), lit(100))]
    assert plan.local["t"] == [lt(col("qty", "t"), lit(5))]
    assert not plan.edges and not plan.residual


def test_equijoin_becomes_edge():
    pred = eq(col("sid", "s"), col("sid", "t"))
    plan = plan_predicate(pred, SCOPES)
    assert len(plan.edges) == 1
    edge = plan.edges[0]
    assert edge.touches("s") and edge.touches("t")
    assert edge.other("s") == "t"
    assert edge.position_for("s") == 0 and edge.position_for("t") == 0


def test_cross_relation_inequality_is_residual():
    pred = gt(col("price", "s"), col("qty", "t"))
    plan = plan_predicate(pred, SCOPES)
    assert not plan.edges
    assert len(plan.residual) == 1
    __, aliases = plan.residual[0]
    assert aliases == {"s", "t"}


def test_cross_relation_or_is_residual():
    pred = Or(gt(col("price", "s"), lit(1)), gt(col("qty", "t"), lit(1)))
    plan = plan_predicate(pred, SCOPES)
    assert len(plan.residual) == 1


def test_constant_conjunct_is_residual_with_empty_aliases():
    pred = gt(lit(2), lit(1))
    plan = plan_predicate(pred, SCOPES)
    assert plan.residual[0][1] == set()


def test_local_predicate_builds_conjunction():
    pred = And(
        gt(col("price", "s"), lit(100)),
        lt(col("price", "s"), lit(900)),
    )
    plan = plan_predicate(pred, SCOPES)
    local = plan.local_predicate("s")
    assert len(local.conjuncts()) == 2
    assert isinstance(plan.local_predicate("t"), TruePredicate)


def test_edges_between_and_residual_ready():
    pred = And(
        eq(col("sid", "s"), col("sid", "t")),
        gt(col("price", "s"), col("qty", "t")),
    )
    plan = plan_predicate(pred, SCOPES)
    assert plan.edges_between({"s"}, "t") == plan.edges
    assert plan.edges_between({"t"}, "s") == plan.edges
    assert plan.residual_ready({"s"}, set()) == []
    ready = plan.residual_ready({"s", "t"}, set())
    assert len(ready) == 1
    assert plan.residual_ready({"s", "t"}, {ready[0][0]}) == []


def test_single_relation_queries_have_no_edges():
    q = SPJQuery([RelationRef("stocks", "s")], gt(col("price"), lit(120)))
    plan = plan_predicate(q.predicate, {"s": STOCKS})
    assert plan.local["s"] and not plan.edges and not plan.residual
