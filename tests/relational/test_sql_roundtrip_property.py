"""Property test: generated SPJ queries survive to_sql -> parse."""

from hypothesis import given, strategies as st

from repro.relational.algebra import OutputColumn, RelationRef, SPJQuery
from repro.relational.expressions import Abs, ColumnRef, Literal, col, lit
from repro.relational.predicates import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
)
from repro.relational.sql import parse_query

TABLES = [("stocks", "s"), ("trades", "t")]
COLUMNS = {"s": ["sid", "name", "price"], "t": ["sid", "qty"]}
# Expressions must be well-typed: arithmetic/range tests use numeric
# columns; the string column only appears in equality with a string.
NUMERIC_COLUMNS = {"s": ["sid", "price"], "t": ["sid", "qty"]}

alias_st = st.sampled_from(["s", "t"])


@st.composite
def column_ref(draw, alias=None):
    alias = alias or draw(alias_st)
    return ColumnRef(draw(st.sampled_from(COLUMNS[alias])), alias)


@st.composite
def numeric_ref(draw, alias=None):
    alias = alias or draw(alias_st)
    return ColumnRef(draw(st.sampled_from(NUMERIC_COLUMNS[alias])), alias)


@st.composite
def scalar(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Literal(draw(st.integers(-100, 100)))
    if kind == 1:
        return draw(numeric_ref())
    if kind == 2:
        return Abs(draw(numeric_ref()) - Literal(draw(st.integers(0, 50))))
    return draw(numeric_ref()) + Literal(draw(st.integers(1, 9)))


@st.composite
def comparison(draw):
    if draw(st.integers(0, 4)) == 0:
        # A string comparison on the one STR column.
        return Comparison(
            draw(st.sampled_from(["=", "!="])),
            ColumnRef("name", "s"),
            Literal(draw(st.sampled_from(["ABC", "XYZ", ""]))),
        )
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    return Comparison(op, draw(scalar()), draw(scalar()))


@st.composite
def predicate(draw, depth=2):
    if depth == 0:
        return draw(comparison())
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(comparison())
    if kind == 1:
        return And(draw(predicate(depth - 1)), draw(predicate(depth - 1)))
    if kind == 2:
        return Or(draw(predicate(depth - 1)), draw(predicate(depth - 1)))
    return Not(draw(predicate(depth - 1)))


@st.composite
def spj_query(draw):
    use_both = draw(st.booleans())
    refs = [RelationRef("stocks", "s")]
    if use_both:
        refs.append(RelationRef("trades", "t"))
    aliases = [r.alias for r in refs]
    conjuncts = draw(
        st.lists(predicate(), max_size=3)
    )
    # Restrict refs to in-scope aliases by rewriting qualifiers.
    def rescope_expr(expr):
        if isinstance(expr, ColumnRef) and expr.qualifier not in aliases:
            # Re-home out-of-scope refs onto 's', preserving typing.
            if expr.name in COLUMNS["s"]:
                return ColumnRef(expr.name, "s")
            return ColumnRef("price", "s")
        if isinstance(expr, Abs):
            return Abs(rescope_expr(expr.operand))
        from repro.relational.expressions import Arithmetic

        if isinstance(expr, Arithmetic):
            return Arithmetic(
                expr.op, rescope_expr(expr.left), rescope_expr(expr.right)
            )
        return expr

    def rescope(pred):
        if isinstance(pred, Comparison):
            return Comparison(
                pred.op, rescope_expr(pred.left), rescope_expr(pred.right)
            )
        if isinstance(pred, And):
            return And(*[rescope(c) for c in pred.children])
        if isinstance(pred, Or):
            return Or(*[rescope(c) for c in pred.children])
        if isinstance(pred, Not):
            return Not(rescope(pred.child))
        return pred

    where = conjunction([rescope(c) for c in conjuncts])
    n_cols = draw(st.integers(1, 3))
    projection = []
    seen = set()
    for i in range(n_cols):
        ref = draw(column_ref(alias=draw(st.sampled_from(aliases))))
        name = f"c{i}"
        projection.append(OutputColumn(ref, name))
        seen.add(name)
    return SPJQuery(refs, where, projection)


@given(query=spj_query())
def test_to_sql_parse_roundtrip(query):
    sql = query.to_sql()
    reparsed = parse_query(sql)
    assert reparsed == query, f"round-trip failed for: {sql}"


@given(query=spj_query())
def test_roundtrip_evaluates_identically(query):
    """Not just structural equality: both evaluate the same."""
    from repro.relational import AttributeType
    from repro import Database

    db = Database()
    stocks = db.create_table(
        "stocks",
        [("sid", AttributeType.INT), ("name", AttributeType.STR),
         ("price", AttributeType.INT)],
    )
    trades = db.create_table(
        "trades", [("sid", AttributeType.INT), ("qty", AttributeType.INT)]
    )
    stocks.insert_many([(i, "ABC", i * 7 % 50) for i in range(10)])
    trades.insert_many([(i % 5, i) for i in range(8)])
    reparsed = parse_query(query.to_sql())
    assert db.query(query) == db.query(reparsed)
