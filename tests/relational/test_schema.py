"""Tests for schemas: construction, lookup, projection, compatibility."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


@pytest.fixture
def schema():
    return Schema.of(
        ("sid", AttributeType.INT),
        ("name", AttributeType.STR),
        ("price", AttributeType.INT),
    )


class TestConstruction:
    def test_of_builds_in_order(self, schema):
        assert schema.names == ("sid", "name", "price")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", AttributeType.INT), ("a", AttributeType.STR))

    def test_dot_in_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("s.price", AttributeType.INT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeType.INT)

    def test_non_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["not-an-attribute"])

    def test_empty_schema_allowed(self):
        assert len(Schema([])) == 0


class TestLookup:
    def test_position(self, schema):
        assert schema.position("price") == 2

    def test_unknown_attribute(self, schema):
        with pytest.raises(UnknownAttributeError):
            schema.position("volume")

    def test_contains(self, schema):
        assert "name" in schema
        assert "volume" not in schema

    def test_type_of(self, schema):
        assert schema.type_of("name") is AttributeType.STR


class TestRowValidation:
    def test_valid_row(self, schema):
        assert schema.validate_row((1, "DEC", 156)) == (1, "DEC", 156)

    def test_arity_mismatch(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row((1, "DEC"))

    def test_type_mismatch(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row((1, "DEC", "expensive"))

    def test_nulls_allowed(self, schema):
        assert schema.validate_row((None, None, None)) == (None, None, None)

    def test_coercion_applied(self):
        schema = Schema.of(("x", AttributeType.FLOAT))
        row = schema.validate_row((3,))
        assert isinstance(row[0], float)


class TestDerivation:
    def test_project_reorders(self, schema):
        projected = schema.project(["price", "sid"])
        assert projected.names == ("price", "sid")

    def test_rename(self, schema):
        renamed = schema.rename({"price": "cost"})
        assert renamed.names == ("sid", "name", "cost")
        assert renamed.type_of("cost") is AttributeType.INT

    def test_concat(self, schema):
        other = Schema.of(("qty", AttributeType.INT))
        assert schema.concat(other).names == ("sid", "name", "price", "qty")

    def test_concat_collision_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.concat(schema)


class TestCompatibility:
    def test_union_compatible_ignores_names(self, schema):
        other = Schema.of(
            ("a", AttributeType.INT),
            ("b", AttributeType.STR),
            ("c", AttributeType.INT),
        )
        assert schema.union_compatible(other)

    def test_union_incompatible_types(self, schema):
        other = Schema.of(
            ("a", AttributeType.INT),
            ("b", AttributeType.STR),
            ("c", AttributeType.STR),
        )
        assert not schema.union_compatible(other)

    def test_union_incompatible_arity(self, schema):
        assert not schema.union_compatible(Schema.of(("a", AttributeType.INT)))

    def test_equality_and_hash(self, schema):
        clone = Schema.of(
            ("sid", AttributeType.INT),
            ("name", AttributeType.STR),
            ("price", AttributeType.INT),
        )
        assert schema == clone
        assert hash(schema) == hash(clone)
