"""Tests for HAVING: complete evaluation and differential maintenance."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.relational import AttributeType, evaluate_aggregate, parse_query
from repro.delta.capture import deltas_since
from repro.delta.differential import ChangeKind
from repro.dra.aggregates import DifferentialAggregate


@pytest.fixture
def bankdb(db):
    accounts = db.create_table(
        "accounts",
        [("owner", AttributeType.STR), ("branch", AttributeType.STR),
         ("amount", AttributeType.INT)],
    )
    accounts.insert_many(
        [
            ("alice", "north", 100),
            ("bob", "north", 250),
            ("carol", "south", 40),
            ("dave", "west", 75),
        ]
    )
    return db, accounts

GROUPED = (
    "SELECT branch, SUM(amount) AS total FROM accounts "
    "GROUP BY branch HAVING total > 100"
)


class TestParsing:
    def test_having_parsed(self):
        q = parse_query(GROUPED)
        assert q.having is not None
        assert "HAVING total > 100" in q.to_sql()

    def test_having_without_aggregates_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT owner FROM accounts HAVING owner = 'x'")

    def test_having_on_group_column(self):
        q = parse_query(
            "SELECT branch, COUNT(*) AS n FROM accounts "
            "GROUP BY branch HAVING branch = 'north'"
        )
        assert q.having is not None


class TestCompleteEvaluation:
    def test_groups_filtered(self, bankdb):
        db, __ = bankdb
        out = db.query(GROUPED)
        assert out.values_set() == {("north", 350)}

    def test_global_having(self, bankdb):
        db, __ = bankdb
        out = db.query(
            "SELECT SUM(amount) AS total FROM accounts HAVING total > 1000"
        )
        assert len(out) == 0
        out = db.query(
            "SELECT SUM(amount) AS total FROM accounts HAVING total > 100"
        )
        assert out.get(()) == (465,)

    def test_having_composes_with_where(self, bankdb):
        db, __ = bankdb
        out = db.query(
            "SELECT branch, COUNT(*) AS n FROM accounts WHERE amount > 50 "
            "GROUP BY branch HAVING n >= 2"
        )
        assert out.values_set() == {("north", 2)}


class TestDifferentialMaintenance:
    def test_group_crosses_having_boundary(self, bankdb):
        db, accounts = bankdb
        q = parse_query(GROUPED)
        state = DifferentialAggregate(q, db)
        assert state.initialize().values_set() == {("north", 350)}
        ts = db.now()
        accounts.insert(("erin", "south", 90))  # south: 40 -> 130
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        entry = delta.get(("south",))
        assert entry.kind is ChangeKind.INSERT  # group became visible
        assert entry.new == ("south", 130)
        assert state.current() == db.query(GROUPED)

    def test_group_drops_below_having(self, bankdb):
        db, accounts = bankdb
        q = parse_query(GROUPED)
        state = DifferentialAggregate(q, db)
        state.initialize()
        ts = db.now()
        tid = next(r.tid for r in accounts.rows() if r.values[0] == "bob")
        accounts.delete(tid)  # north: 350 -> 100, filtered out
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        entry = delta.get(("north",))
        assert entry.kind is ChangeKind.DELETE
        assert state.current() == db.query(GROUPED)
        assert len(state.current()) == 0

    def test_invisible_movement_below_threshold(self, bankdb):
        """Changes entirely below the HAVING bar produce no delta."""
        db, accounts = bankdb
        q = parse_query(GROUPED)
        state = DifferentialAggregate(q, db)
        state.initialize()
        ts = db.now()
        tid = next(r.tid for r in accounts.rows() if r.values[0] == "carol")
        accounts.modify(tid, updates={"amount": 55})  # south 40 -> 55
        delta = state.update(deltas_since([accounts], ts), ts=db.now())
        assert delta.is_empty()
        assert state.current() == db.query(GROUPED)

    def test_manager_integration(self, bankdb):
        from repro.core import CQManager, DeliveryMode

        db, accounts = bankdb
        mgr = CQManager(db)
        mgr.register_sql("rich", GROUPED, mode=DeliveryMode.COMPLETE)
        mgr.drain()
        accounts.insert(("frank", "west", 200))  # west: 75 -> 275
        notes = mgr.drain()
        assert notes and notes[0].result == db.query(GROUPED)
        assert ("west", 275) in notes[0].result.values_set()
