"""Tests for complete SPJ and algebra-tree evaluation."""

import pytest

from repro.errors import SchemaError
from repro.metrics import Metrics
from repro.relational.algebra import (
    Difference,
    Join,
    OutputColumn,
    Project,
    RelationRef,
    Scan,
    Select,
    SPJQuery,
    Union,
)
from repro.relational.evaluate import evaluate_algebra, evaluate_spj
from repro.relational.expressions import col, lit
from repro.relational.predicates import And, FalsePredicate, eq, gt, lt
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

STOCKS = Schema.of(
    ("sid", AttributeType.INT),
    ("name", AttributeType.STR),
    ("price", AttributeType.INT),
)
TRADES = Schema.of(("sid", AttributeType.INT), ("qty", AttributeType.INT))


@pytest.fixture
def relations():
    stocks = Relation.from_pairs(
        STOCKS,
        [
            (1, (100, "DEC", 156)),
            (2, (200, "QLI", 145)),
            (3, (300, "IBM", 80)),
        ],
    )
    trades = Relation.from_pairs(
        TRADES,
        [(10, (100, 5)), (11, (300, 7)), (12, (100, 2)), (13, (999, 1))],
    )
    return {"stocks": stocks, "trades": trades}


@pytest.fixture
def resolver(relations):
    return relations.__getitem__


class TestSelectProject:
    def test_selection(self, resolver):
        q = SPJQuery([RelationRef("stocks")], gt(col("price"), lit(100)))
        out = evaluate_spj(q, resolver)
        assert sorted(row.tid for row in out) == [1, 2]

    def test_projection_and_rename(self, resolver):
        q = SPJQuery(
            [RelationRef("stocks")],
            gt(col("price"), lit(150)),
            [OutputColumn(col("name")), OutputColumn(col("price"), "px")],
        )
        out = evaluate_spj(q, resolver)
        assert out.schema.names == ("name", "px")
        assert out.get(1) == ("DEC", 156)

    def test_select_star_single(self, resolver):
        q = SPJQuery([RelationRef("stocks")])
        out = evaluate_spj(q, resolver)
        assert out.schema.names == ("sid", "name", "price")
        assert len(out) == 3

    def test_single_relation_tids_are_base_tids(self, resolver):
        q = SPJQuery([RelationRef("stocks")], gt(col("price"), lit(0)))
        out = evaluate_spj(q, resolver)
        assert set(out.tids()) == {1, 2, 3}

    def test_duplicate_output_names_rejected(self, resolver):
        q = SPJQuery(
            [RelationRef("stocks")],
            projection=[OutputColumn(col("name")), OutputColumn(col("price"), "name")],
        )
        with pytest.raises(SchemaError):
            evaluate_spj(q, resolver)


class TestJoins:
    def test_equijoin_composite_tids(self, resolver):
        q = SPJQuery(
            [RelationRef("stocks", "s"), RelationRef("trades", "t")],
            eq(col("sid", "s"), col("sid", "t")),
        )
        out = evaluate_spj(q, resolver)
        assert sorted(out.tids()) == [(1, 10), (1, 12), (3, 11)]

    def test_join_with_local_filters(self, resolver):
        q = SPJQuery(
            [RelationRef("stocks", "s"), RelationRef("trades", "t")],
            And(
                eq(col("sid", "s"), col("sid", "t")),
                gt(col("price", "s"), lit(100)),
                gt(col("qty", "t"), lit(3)),
            ),
        )
        out = evaluate_spj(q, resolver)
        assert list(out.tids()) == [(1, 10)]

    def test_select_star_join_prefixes_collisions(self, resolver):
        q = SPJQuery(
            [RelationRef("stocks", "s"), RelationRef("trades", "t")],
            eq(col("sid", "s"), col("sid", "t")),
        )
        out = evaluate_spj(q, resolver)
        assert "s_sid" in out.schema and "t_sid" in out.schema
        assert "name" in out.schema  # unique names stay bare

    def test_cartesian_fallback(self, resolver):
        q = SPJQuery([RelationRef("stocks", "s"), RelationRef("trades", "t")])
        out = evaluate_spj(q, resolver)
        assert len(out) == 3 * 4

    def test_residual_cross_predicate(self, resolver):
        q = SPJQuery(
            [RelationRef("stocks", "s"), RelationRef("trades", "t")],
            And(
                eq(col("sid", "s"), col("sid", "t")),
                gt(col("price", "s"), col("qty", "t") * lit(30)),
            ),
        )
        out = evaluate_spj(q, resolver)
        # (1,10): 156 > 150 yes; (1,12): 156 > 60 yes; (3,11): 80 > 210 no
        assert sorted(out.tids()) == [(1, 10), (1, 12)]

    def test_self_join(self, relations):
        resolver = relations.__getitem__
        q = SPJQuery(
            [RelationRef("stocks", "a"), RelationRef("stocks", "b")],
            And(
                eq(col("price", "a"), col("price", "b")),
                lt(col("sid", "a"), col("sid", "b")),
            ),
        )
        out = evaluate_spj(q, resolver)
        assert len(out) == 0  # all prices distinct

    def test_three_way_join(self, relations):
        owners = Relation.from_pairs(
            Schema.of(("sid", AttributeType.INT), ("owner", AttributeType.STR)),
            [(50, (100, "alice")), (51, (300, "bob"))],
        )
        relations = dict(relations, owners=owners)
        q = SPJQuery(
            [
                RelationRef("stocks", "s"),
                RelationRef("trades", "t"),
                RelationRef("owners", "o"),
            ],
            And(
                eq(col("sid", "s"), col("sid", "t")),
                eq(col("sid", "s"), col("sid", "o")),
            ),
            [OutputColumn(col("owner", "o")), OutputColumn(col("qty", "t"))],
        )
        out = evaluate_spj(q, relations.__getitem__)
        assert sorted(out.tids()) == [(1, 10, 50), (1, 12, 50), (3, 11, 51)]


class TestGating:
    def test_constant_false_short_circuits(self, resolver):
        q = SPJQuery([RelationRef("stocks")], FalsePredicate())
        # FalsePredicate has no column refs; treated as constant gate.
        out = evaluate_spj(q, resolver)
        assert len(out) == 0

    def test_metrics_count_scans(self, resolver):
        metrics = Metrics()
        q = SPJQuery([RelationRef("stocks")], gt(col("price"), lit(0)))
        evaluate_spj(q, resolver, metrics)
        assert metrics[Metrics.ROWS_SCANNED] == 3


class TestAlgebraEvaluator:
    def test_select_project(self, resolver):
        tree = Project(
            Select(Scan("stocks"), gt(col("price"), lit(100))),
            [(col("name"), "n")],
        )
        out = evaluate_algebra(tree, resolver)
        assert out.schema.names == ("n",)
        assert sorted(row.values[0] for row in out) == ["DEC", "QLI"]

    def test_union_difference(self, resolver):
        high = Select(Scan("stocks"), gt(col("price"), lit(150)))
        low = Select(Scan("stocks"), lt(col("price"), lit(100)))
        union = evaluate_algebra(Union(high, low), resolver)
        assert sorted(union.tids()) == [1, 3]
        diff = evaluate_algebra(Difference(Scan("stocks"), high), resolver)
        assert sorted(diff.tids()) == [2, 3]

    def test_join_node(self, resolver):
        tree = Join(
            Scan("stocks"),
            Scan("trades"),
            eq(col("sid"), col("qty")),  # silly condition over concat schema
        )
        # Note: concat of schemas collides on 'sid'; use distinct names.
        with pytest.raises(SchemaError):
            evaluate_algebra(tree, resolver)
