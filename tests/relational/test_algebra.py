"""Tests for algebra trees, SPJQuery, and SPJ normalization."""

import pytest

from repro.errors import QueryError, UnsupportedQueryError
from repro.relational.algebra import (
    Difference,
    Join,
    OutputColumn,
    Project,
    RelationRef,
    Scan,
    Select,
    SPJQuery,
    Union,
    normalize,
)
from repro.relational.expressions import col, lit
from repro.relational.predicates import TruePredicate, eq, gt


class TestSPJQuery:
    def test_requires_relations(self):
        with pytest.raises(QueryError):
            SPJQuery([])

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryError):
            SPJQuery([RelationRef("t", "a"), RelationRef("u", "a")])

    def test_self_join_with_distinct_aliases(self):
        q = SPJQuery([RelationRef("t", "a"), RelationRef("t", "b")])
        assert q.table_names == ("t", "t")
        assert q.alias_for_table("t") == ["a", "b"]

    def test_to_sql_shape(self):
        q = SPJQuery(
            [RelationRef("stocks")],
            gt(col("price"), lit(120)),
            [OutputColumn(col("name")), OutputColumn(col("price"), "px")],
        )
        sql = q.to_sql()
        assert sql == "SELECT name, price AS px FROM stocks WHERE price > 120"

    def test_select_star_sql(self):
        q = SPJQuery([RelationRef("stocks")])
        assert q.to_sql() == "SELECT * FROM stocks"

    def test_equality_and_hash(self):
        a = SPJQuery([RelationRef("t")], gt(col("x"), lit(1)))
        b = SPJQuery([RelationRef("t")], gt(col("x"), lit(1)))
        assert a == b and hash(a) == hash(b)


class TestNormalize:
    def test_select_over_scan(self):
        q = normalize(Select(Scan("stocks"), gt(col("price"), lit(120))))
        assert q.table_names == ("stocks",)
        assert q.predicate == gt(col("price"), lit(120))
        assert q.projection is None

    def test_project_select_join(self):
        tree = Project(
            Select(
                Join(
                    Scan("stocks", "s"),
                    Scan("trades", "t"),
                    eq(col("sid", "s"), col("sid", "t")),
                ),
                gt(col("price", "s"), lit(100)),
            ),
            [(col("name", "s"), None), (col("qty", "t"), "quantity")],
        )
        q = normalize(tree)
        assert q.aliases == ("s", "t")
        conjuncts = q.predicate.conjuncts()
        assert len(conjuncts) == 2
        assert q.projection[1].name == "quantity"

    def test_nested_joins_flatten(self):
        tree = Join(Join(Scan("a"), Scan("b")), Scan("c"))
        q = normalize(tree)
        assert q.aliases == ("a", "b", "c")

    def test_project_below_select_rejected(self):
        tree = Select(
            Project(Scan("t"), [(col("x"), None)]), gt(col("x"), lit(1))
        )
        with pytest.raises(UnsupportedQueryError):
            normalize(tree)

    def test_union_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            normalize(Union(Scan("a"), Scan("b")))

    def test_difference_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            normalize(Difference(Scan("a"), Scan("b")))

    def test_scan_only(self):
        q = normalize(Scan("t", "alias"))
        assert q.aliases == ("alias",)
        assert isinstance(q.predicate, TruePredicate)
