"""Tests for predicates: comparisons, connectives, null handling."""

import pytest

from repro.errors import ExpressionError
from repro.relational.binding import SingleRowBinder
from repro.relational.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    TruePredicate,
    conjunction,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.relational.expressions import Abs, col, lit
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(("price", AttributeType.INT), ("name", AttributeType.STR))
BINDER = SingleRowBinder(SCHEMA)


def holds(pred, row):
    return pred.compile(BINDER)(row)


class TestComparisons:
    @pytest.mark.parametrize(
        "builder,row,expected",
        [
            (lambda: gt(col("price"), lit(120)), (150, "DEC"), True),
            (lambda: gt(col("price"), lit(120)), (120, "DEC"), False),
            (lambda: ge(col("price"), lit(120)), (120, "DEC"), True),
            (lambda: lt(col("price"), lit(120)), (100, "DEC"), True),
            (lambda: le(col("price"), lit(120)), (121, "DEC"), False),
            (lambda: eq(col("name"), lit("DEC")), (1, "DEC"), True),
            (lambda: ne(col("name"), lit("DEC")), (1, "QLI"), True),
        ],
    )
    def test_operators(self, builder, row, expected):
        assert holds(builder(), row) is expected

    def test_operator_aliases(self):
        assert Comparison("==", col("price"), lit(1)).op == "="
        assert Comparison("<>", col("price"), lit(1)).op == "!="

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            Comparison("~", col("price"), lit(1))

    def test_null_comparisons_are_false(self):
        assert holds(gt(col("price"), lit(120)), (None, "x")) is False
        assert holds(eq(col("price"), lit(None)), (1, "x")) is False

    def test_paper_q3_distance_predicate(self):
        # "IBM stock transactions that differ by more than $5 from $75"
        q3 = And(
            eq(col("name"), lit("IBM")),
            gt(Abs(col("price") - lit(75)), lit(5)),
        )
        assert holds(q3, (85, "IBM"))
        assert not holds(q3, (78, "IBM"))
        assert not holds(q3, (85, "DEC"))


class TestConnectives:
    def test_and_flattens(self):
        pred = And(And(gt(col("price"), lit(1)), TruePredicate()), eq(col("name"), lit("a")))
        assert len(pred.children) == 2

    def test_and_semantics(self):
        pred = And(gt(col("price"), lit(100)), eq(col("name"), lit("DEC")))
        assert holds(pred, (150, "DEC"))
        assert not holds(pred, (150, "QLI"))

    def test_or_semantics(self):
        pred = Or(lt(col("price"), lit(10)), eq(col("name"), lit("DEC")))
        assert holds(pred, (500, "DEC"))
        assert holds(pred, (5, "QLI"))
        assert not holds(pred, (500, "QLI"))

    def test_not(self):
        assert holds(Not(gt(col("price"), lit(100))), (50, "x"))

    def test_not_negate_returns_child(self):
        inner = gt(col("price"), lit(1))
        assert Not(inner).negate() is inner

    def test_comparison_negate(self):
        assert gt(col("price"), lit(1)).negate() == le(col("price"), lit(1))

    def test_true_false(self):
        assert holds(TruePredicate(), (1, "x"))
        assert not holds(FalsePredicate(), (1, "x"))
        assert isinstance(TruePredicate().negate(), FalsePredicate)
        assert isinstance(FalsePredicate().negate(), TruePredicate)


class TestConjunctHandling:
    def test_conjuncts_flatten(self):
        pred = And(gt(col("price"), lit(1)), And(lt(col("price"), lit(9)), ne(col("name"), lit("a"))))
        assert len(pred.conjuncts()) == 3

    def test_true_has_no_conjuncts(self):
        assert TruePredicate().conjuncts() == []

    def test_conjunction_of_empty_is_true(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_conjunction_single_passthrough(self):
        pred = gt(col("price"), lit(1))
        assert conjunction([pred]) is pred

    def test_is_equijoin_pair(self):
        assert eq(col("a", "s"), col("b", "t")).is_equijoin_pair()
        assert not eq(col("a", "s"), lit(5)).is_equijoin_pair()
        assert not gt(col("a", "s"), col("b", "t")).is_equijoin_pair()

    def test_to_sql_round_trips_structure(self):
        pred = And(gt(col("price"), lit(120)), Or(eq(col("name"), lit("A")), eq(col("name"), lit("B"))))
        text = pred.to_sql()
        assert "AND" in text and "OR" in text
