"""Tests for the Section 5.2 heuristics (conjunct ordering, explain)."""

from repro.relational.algebra import RelationRef, SPJQuery
from repro.relational.expressions import Abs, col, lit
from repro.relational.optimizer import (
    expression_cost,
    explain,
    order_conjuncts,
    predicate_cost,
    refine,
)
from repro.relational.predicates import And, eq, gt
from repro.relational.schema import Schema
from repro.relational.types import AttributeType

SCHEMA = Schema.of(
    ("sid", AttributeType.INT),
    ("name", AttributeType.STR),
    ("price", AttributeType.INT),
)


def test_expression_cost_ordering():
    assert expression_cost(lit(1)) < expression_cost(col("price"))
    assert expression_cost(col("price")) < expression_cost(
        Abs(col("price") - lit(75))
    )


def test_predicate_cost_grows_with_structure():
    cheap = eq(col("name"), lit("DEC"))
    pricey = gt(Abs(col("price") - lit(75)), lit(5))
    assert predicate_cost(cheap) < predicate_cost(pricey)


def test_order_conjuncts_puts_cheap_first():
    expensive = gt(Abs(col("price") - lit(75)), lit(5))
    cheap = eq(col("name"), lit("IBM"))
    ordered = order_conjuncts(And(expensive, cheap))
    assert ordered.conjuncts()[0] == cheap


def test_order_conjuncts_prefers_literal_equality():
    range_test = gt(col("price"), lit(120))
    equality = eq(col("name"), lit("IBM"))
    ordered = order_conjuncts(And(range_test, equality))
    assert ordered.conjuncts()[0] == equality


def test_order_single_conjunct_passthrough():
    pred = gt(col("price"), lit(1))
    assert order_conjuncts(pred) is pred


def test_refine_preserves_query_shape():
    q = SPJQuery(
        [RelationRef("stocks", "s")],
        And(
            gt(Abs(col("price") - lit(75)), lit(5)),
            eq(col("name"), lit("IBM")),
        ),
    )
    refined = refine(q)
    assert refined.relations == q.relations
    assert set(refined.predicate.conjuncts()) == set(q.predicate.conjuncts())


def test_explain_mentions_all_parts():
    q = SPJQuery(
        [RelationRef("stocks", "s"), RelationRef("stocks", "t")],
        And(
            eq(col("sid", "s"), col("sid", "t")),
            gt(col("price", "s"), lit(100)),
            gt(col("price", "s"), col("price", "t")),
        ),
    )
    text = explain(q, {"s": SCHEMA, "t": SCHEMA})
    assert "scan stocks AS s" in text
    assert "join edges" in text
    assert "residual" in text
    assert "project: *" in text
