"""Exporter round-trips: Prometheus text exposition and the JSONL
trace sink.

The parser is intentionally strict — it doubles as the format check in
the smoke bench — so both directions are exercised here: valid output
parses back to the exact values, malformed lines raise.
"""

import pytest

from repro.metrics import Metrics
from repro.obs import (
    JsonlTraceSink,
    Tracer,
    counter_value,
    parse_prometheus_text,
    prometheus_text,
    read_spans,
)


class TestPrometheusText:
    def test_counters_round_trip(self):
        metrics = Metrics()
        metrics.count(Metrics.CQ_REFRESHES, 3)
        metrics.count(Metrics.ROWS_SCANNED, 41)
        parsed = parse_prometheus_text(prometheus_text(metrics))
        assert counter_value(parsed, "repro_cq_refreshes") == 3
        assert counter_value(parsed, "repro_rows_scanned") == 41

    def test_histograms_are_cumulative_with_inf_bucket(self):
        metrics = Metrics()
        for v in (1, 3, 3, 100):
            metrics.observe("lat_us", v)
        parsed = parse_prometheus_text(prometheus_text(metrics))
        buckets = parsed["repro_lat_us_bucket"]
        # Cumulative counts never decrease along increasing bounds.
        ordered = sorted(
            (
                (float("inf") if le == "+Inf" else float(le), count)
                for ((__, le),), count in buckets.items()
            )
        )
        counts = [count for __, count in ordered]
        assert counts == sorted(counts)
        assert ordered[-1] == (float("inf"), 4)
        assert counter_value(parsed, "repro_lat_us_sum") == 107
        assert counter_value(parsed, "repro_lat_us_count") == 4

    def test_namespace_and_names_are_sanitized(self):
        metrics = Metrics()
        metrics.count("weird name-here", 1)
        parsed = parse_prometheus_text(
            prometheus_text(metrics, namespace="my app")
        )
        assert counter_value(parsed, "my_app_weird_name_here") == 1

    def test_labels_attach_to_every_counter_sample(self):
        metrics = Metrics()
        metrics.count(Metrics.CQ_REFRESHES, 5)
        text = prometheus_text(metrics, labels={"shard": "2"})
        assert 'repro_cq_refreshes{shard="2"} 5' in text
        parsed = parse_prometheus_text(text)
        assert parsed["repro_cq_refreshes"][(("shard", "2"),)] == 5
        # The label-free sample is absent — nothing leaks unlabelled.
        assert counter_value(parsed, "repro_cq_refreshes") is None

    def test_labels_merge_with_histogram_le(self):
        metrics = Metrics()
        for v in (1, 3, 100):
            metrics.observe("lat_us", v)
        parsed = parse_prometheus_text(
            prometheus_text(metrics, labels={"shard": "0"})
        )
        buckets = parsed["repro_lat_us_bucket"]
        for labels in buckets:
            pairs = dict(labels)
            assert pairs["shard"] == "0"
            assert "le" in pairs
        inf = buckets[tuple(sorted((("shard", "0"), ("le", "+Inf"))))]
        assert inf == 3
        assert parsed["repro_lat_us_sum"][(("shard", "0"),)] == 104
        assert parsed["repro_lat_us_count"][(("shard", "0"),)] == 3

    def test_multi_label_round_trip_is_order_insensitive(self):
        metrics = Metrics()
        metrics.count("refreshes", 9)
        parsed = parse_prometheus_text(
            prometheus_text(
                metrics, labels={"shard": "1", "role": "worker"}
            )
        )
        key = tuple(sorted((("role", "worker"), ("shard", "1"))))
        assert parsed["repro_refreshes"][key] == 9

    def test_shard_bags_concatenate_without_collisions(self):
        """The cluster router's aggregation pattern: one exposition per
        shard bag, distinct label values, concatenated text parses to
        one series per shard."""
        chunks = []
        for shard in range(3):
            bag = Metrics()
            bag.count("refreshes", shard + 1)
            chunks.append(
                prometheus_text(bag, labels={"shard": str(shard)})
            )
        parsed = parse_prometheus_text("".join(chunks))
        samples = parsed["repro_refreshes"]
        assert {
            dict(labels)["shard"]: value
            for labels, value in samples.items()
        } == {"0": 1.0, "1": 2.0, "2": 3.0}

    @pytest.mark.parametrize(
        "bad",
        [
            "just_a_name\n",
            "metric not_a_number\n",
            'metric{le="unterminated 3\n',
            'metric{le=unquoted} 3\n',
            "bad~metric 3\n",
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_comments_and_blank_lines_are_ignored(self):
        parsed = parse_prometheus_text("\n# TYPE x counter\n\nx 1\n")
        assert counter_value(parsed, "x") == 1

    def test_fanout_counters_export(self):
        """The predicate-index fan-out counters ride the same
        exposition path as every other counter."""
        metrics = Metrics()
        metrics.count(Metrics.PREDINDEX_PROBES, 12)
        metrics.count(Metrics.PREDINDEX_MATCHES, 4)
        metrics.count(Metrics.PREDINDEX_INVALIDATIONS, 1)
        metrics.count(Metrics.SHARED_GROUPS, 2)
        metrics.count(Metrics.SHARED_GROUP_HITS, 9)
        parsed = parse_prometheus_text(prometheus_text(metrics))
        assert counter_value(parsed, "repro_predindex_probes") == 12
        assert counter_value(parsed, "repro_predindex_matches") == 4
        assert counter_value(parsed, "repro_predindex_invalidations") == 1
        assert counter_value(parsed, "repro_shared_groups") == 2
        assert counter_value(parsed, "repro_shared_group_hits") == 9

    def test_fanout_counters_export_from_live_server(self, db):
        """End-to-end: a fan-out refresh cycle leaves the routing
        counters in the scrape, and the strict parser accepts it."""
        from repro.net.client import CQClient
        from repro.net.server import CQServer
        from repro.net.simnet import SimulatedNetwork
        from repro.workload.stocks import StockMarket

        market = StockMarket(db, seed=3)
        market.populate(100)
        metrics = Metrics()
        server = CQServer(db, SimulatedNetwork(), metrics=metrics, fanout=True)
        for i in range(2):
            client = CQClient(f"c{i}")
            server.attach(client)
            client.register(
                "watch", "SELECT name, price FROM stocks WHERE price > 500"
            )
        market.tick(20, p_insert=0.2)
        server.refresh_all()
        parsed = parse_prometheus_text(prometheus_text(metrics))
        assert counter_value(parsed, "repro_shared_groups") == 1
        assert counter_value(parsed, "repro_shared_group_hits") >= 1
        assert counter_value(parsed, "repro_predindex_probes") >= 1


class TestKernelCountersExport:
    def test_kernel_counters_and_derived_gauge_export(self):
        """Columnar kernel counters ride the standard exposition, and
        the derived rows-per-call gauge is emitted alongside them."""
        metrics = Metrics()
        metrics.count(Metrics.KERNEL_CALLS, 4)
        metrics.count(Metrics.KERNEL_ROWS, 48)
        parsed = parse_prometheus_text(prometheus_text(metrics))
        assert counter_value(parsed, "repro_kernel_calls") == 4
        assert counter_value(parsed, "repro_kernel_rows") == 48
        assert counter_value(parsed, "repro_rows_per_kernel_call") == 12.0

    def test_no_gauge_without_kernel_calls(self):
        """Zero kernel calls would make the ratio meaningless, so the
        gauge is simply absent from the scrape."""
        parsed = parse_prometheus_text(prometheus_text(Metrics()))
        assert "repro_rows_per_kernel_call" not in parsed

    def test_kernel_counters_export_from_live_server(self, db):
        """End-to-end: a columnar refresh cycle leaves the kernel
        counters in the scrape and the per-subscription records."""
        from repro.net.client import CQClient
        from repro.net.server import CQServer
        from repro.net.simnet import SimulatedNetwork
        from repro.workload.stocks import StockMarket

        market = StockMarket(db, seed=3)
        market.populate(100)
        metrics = Metrics()
        server = CQServer(
            db, SimulatedNetwork(), metrics=metrics, columnar=True
        )
        client = CQClient("c0")
        server.attach(client)
        client.register(
            "watch", "SELECT name, price FROM stocks WHERE price > 500"
        )
        market.tick(20, p_insert=0.2)
        server.refresh_all()
        parsed = parse_prometheus_text(prometheus_text(metrics))
        assert counter_value(parsed, "repro_kernel_calls") >= 1
        assert counter_value(parsed, "repro_kernel_rows") >= 1
        assert counter_value(parsed, "repro_rows_per_kernel_call") > 0
        (record,) = server.describe()
        assert record["kernel_calls"] >= 1
        assert record["rows_per_kernel_call"] > 0
        assert "kernels:" in server.status_report()


class TestJsonlTraceSink:
    def test_tracer_spans_land_in_the_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sink=JsonlTraceSink(path))
        with tracer.span("refresh", cq="q0"):
            pass
        (record,) = read_spans(path)
        assert record["name"] == "refresh"
        assert record["cq"] == "q0"
        assert record["dur_us"] >= 0

    def test_rotation_caps_generations(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlTraceSink(path, max_bytes=200, max_files=2)
        for i in range(50):
            sink.write({"name": "s", "i": i})
        assert sink.written == 50
        assert sink.rotations > 0
        assert (tmp_path / "trace.jsonl").exists()
        assert (tmp_path / "trace.jsonl.1").exists()
        assert not (tmp_path / "trace.jsonl.3").exists()
        # Nothing kept exceeds the cap, every surviving line parses,
        # and the live file holds the newest records.
        for name in ("trace.jsonl", "trace.jsonl.1", "trace.jsonl.2"):
            if (tmp_path / name).exists():
                assert (tmp_path / name).stat().st_size <= 200
        live = read_spans(path)
        assert live[-1]["i"] == 49

    def test_rejects_bad_limits(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "t"), max_bytes=0)
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "t"), max_files=0)
