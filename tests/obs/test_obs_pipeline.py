"""End-to-end tracing of a scheduler-driven refresh.

At sample rate 1.0 a single poll over a joined CQ must surface every
pipeline stage as a span — trigger evaluation, delta consolidation,
DRA apply, notify — attributed to the right CQ and stitched into one
trace per refresh, with the per-CQ cost tables visible in
``describe()``.
"""

from repro import Database
from repro.core import CQManager, EvaluationStrategy
from repro.metrics import Metrics
from repro.obs import Tracer
from repro.relational import AttributeType


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.001
        return self.now


def build():
    db = Database()
    for name in ("t0", "t1"):
        db.create_table(
            name,
            [("k", AttributeType.INT), ("v", AttributeType.INT)],
            indexes=[("k",)],
        ).insert_many([(i, 10 * i) for i in range(6)])
    tracer = Tracer(sample_rate=1.0, clock=FakeClock())
    mgr = CQManager(
        db,
        strategy=EvaluationStrategy.PERIODIC,
        metrics=Metrics(),
        tracer=tracer,
    )
    notes = []
    mgr.register_sql(
        "join_cq",
        "SELECT t0.v AS va, t1.v AS vb FROM t0, t1 "
        "WHERE t0.k = t1.k AND t0.v > 10",
        on_notify=notes.append,
    )
    mgr.register_sql(
        "sel_cq",
        "SELECT k, v FROM t0 WHERE v > 20",
        on_notify=notes.append,
    )
    mgr.drain()
    tracer.reset()
    return db, mgr, tracer, notes


def refresh_once(db, mgr):
    t0, t1 = db.table("t0"), db.table("t1")
    with db.begin() as txn:
        txn.insert_into(t0, (7, 70))
        txn.insert_into(t1, (7, 71))
    return mgr.poll()


class TestTracedRefreshPipeline:
    def test_every_stage_produces_spans(self):
        db, mgr, tracer, __ = build()
        refresh_once(db, mgr)
        names = {r["name"] for r in tracer.spans()}
        assert {
            "scheduler.poll",
            "cq.trigger",
            "cq.refresh",
            "delta.consolidate",
            "dra.apply",
            "cq.notify",
        } <= names

    def test_spans_carry_per_cq_attribution(self):
        db, mgr, tracer, __ = build()
        refresh_once(db, mgr)
        refreshes = {r["cq"]: r for r in tracer.spans("cq.refresh")}
        assert set(refreshes) == {"join_cq", "sel_cq"}
        assert refreshes["join_cq"]["tables"] == "t0,t1"
        assert refreshes["join_cq"]["latency_us"] > 0

        # Each stage span is stitched into its own CQ's refresh trace.
        for name in ("dra.apply", "cq.notify"):
            by_trace = {}
            for record in tracer.spans(name):
                by_trace.setdefault(record["trace"], []).append(record)
            for cq_name, refresh in refreshes.items():
                stage_records = by_trace.get(refresh["trace"], [])
                assert stage_records, f"no {name} span for {cq_name}"
        notify = {r["cq"] for r in tracer.spans("cq.notify")}
        assert notify == {"join_cq", "sel_cq"}

        consolidated = {r["table"] for r in tracer.spans("delta.consolidate")}
        assert consolidated == {"t0", "t1"}

    def test_refresh_spans_record_charged_counters(self):
        db, mgr, tracer, __ = build()
        refresh_once(db, mgr)
        join = next(
            r for r in tracer.spans("cq.refresh") if r["cq"] == "join_cq"
        )
        # The scoped tee attributed this refresh's work to the span:
        # a DRA refresh of a join reads deltas and scans seed rows.
        assert join.get(Metrics.DELTA_ROWS_READ, 0) > 0

    def test_poll_span_counts_runnable(self):
        db, mgr, tracer, __ = build()
        refresh_once(db, mgr)
        (poll,) = tracer.spans("scheduler.poll")
        assert poll["registered"] == 2
        assert poll["runnable"] == 2

    def test_describe_surfaces_per_cq_costs(self):
        db, mgr, tracer, __ = build()
        refresh_once(db, mgr)
        refresh_once(db, mgr)
        info = {row["name"]: row for row in mgr.describe()}
        join = info["join_cq"]
        assert join["refreshes"] == 2
        assert join["delta_rows_read"] > 0
        assert join["refresh_p95_us"] > 0

    def test_notifications_unaffected_by_tracing(self):
        db, mgr, __, notes = build()
        refresh_once(db, mgr)
        assert {n.cq_name for n in notes} == {"join_cq", "sel_cq"}

    def test_slow_refresh_log_records_threshold_breaches(self):
        db = Database()
        db.create_table(
            "t0", [("k", AttributeType.INT), ("v", AttributeType.INT)]
        ).insert_many([(i, 10 * i) for i in range(4)])
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            slow_refresh_us=0.0,  # everything is "slow"
        )
        mgr.register_sql("q", "SELECT k, v FROM t0 WHERE v > 5")
        mgr.drain()
        with db.begin() as txn:
            txn.insert_into(db.table("t0"), (9, 90))
        mgr.poll()
        assert mgr.slow_refreshes
        event = mgr.slow_refreshes[-1]
        assert event["event"] == "slow_refresh"
        assert event["cq"] == "q"
        assert event["latency_us"] >= 0.0
