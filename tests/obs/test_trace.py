"""Unit tests for the dependency-free tracer.

Determinism is the contract under test: an injected clock makes
durations exact, a seeded sampler makes sampling reproducible, and
per-thread span stacks keep parallel workers' traces from
interleaving.
"""

import threading

import pytest

from repro.obs import NULL_SPAN, Tracer


class FakeClock:
    """Monotone fake seconds source: each call advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanLifecycle:
    def test_durations_come_from_the_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("stage") as span:
            pass
        assert span.duration_us == pytest.approx(1e6)
        (record,) = tracer.spans("stage")
        assert record["dur_us"] == pytest.approx(1e6)

    def test_attrs_and_set_land_in_the_record(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("refresh", cq="q0") as span:
            span.set(rows=7)
        (record,) = tracer.spans("refresh")
        assert record["cq"] == "q0"
        assert record["rows"] == 7

    def test_children_nest_under_the_current_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Children finish first: record order is inner, outer.
        assert [r["name"] for r in tracer.drain()] == ["outer", "inner"][::-1]

    def test_exceptions_stamp_an_error_attr_and_propagate(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("stage failed")
        (record,) = tracer.spans("boom")
        assert "RuntimeError" in record["error"]


class TestSampling:
    def test_disabled_tracer_hands_out_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", cq="q")
        assert span is NULL_SPAN
        with span:
            span.set(rows=1)
        assert tracer.spans() == []

    def test_sample_rate_zero_records_nothing(self):
        tracer = Tracer(sample_rate=0.0, clock=FakeClock())
        for __ in range(20):
            with tracer.span("stage"):
                pass
        assert tracer.spans() == []

    def test_seeded_sampling_is_reproducible(self):
        def sampled_indexes(seed):
            tracer = Tracer(sample_rate=0.5, seed=seed, clock=FakeClock())
            for i in range(200):
                with tracer.span("stage", i=i):
                    pass
            return [r["i"] for r in tracer.spans()]

        first = sampled_indexes(42)
        assert first == sampled_indexes(42)
        assert first != sampled_indexes(43)
        assert 0 < len(first) < 200

    def test_children_inherit_the_root_sampling_decision(self):
        tracer = Tracer(sample_rate=0.5, seed=7, clock=FakeClock())
        for i in range(50):
            with tracer.span("root", i=i) as root:
                with tracer.span("child", i=i) as child:
                    assert child.sampled == root.sampled
        roots = {r["i"] for r in tracer.spans("root")}
        children = {r["i"] for r in tracer.spans("child")}
        assert roots == children

    def test_rejects_out_of_range_sample_rate(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestRetention:
    def test_max_spans_bounds_memory_and_counts_drops(self):
        tracer = Tracer(clock=FakeClock(), max_spans=5)
        for __ in range(9):
            with tracer.span("stage"):
                pass
        assert len(tracer.spans()) == 5
        assert tracer.dropped == 4
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.dropped == 0

    def test_drain_removes_and_returns(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("stage"):
            pass
        assert [r["name"] for r in tracer.drain()] == ["stage"]
        assert tracer.spans() == []

    def test_sink_receives_every_sampled_record(self):
        class ListSink:
            def __init__(self):
                self.records = []

            def write(self, record):
                self.records.append(record)

        sink = ListSink()
        tracer = Tracer(clock=FakeClock(), sink=sink)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r["name"] for r in sink.records] == ["a", "b"]


class TestThreading:
    def test_each_thread_gets_its_own_root(self):
        tracer = Tracer(clock=FakeClock())
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            with tracer.span("worker-root", worker=i):
                with tracer.span("worker-child", worker=i):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        roots = tracer.spans("worker-root")
        children = tracer.spans("worker-child")
        assert len(roots) == 4 and len(children) == 4
        # Every root really is a root, and each child binds to its own
        # worker's root — never to another thread's span.
        assert all(r["parent"] is None for r in roots)
        root_by_worker = {r["worker"]: r for r in roots}
        for child in children:
            root = root_by_worker[child["worker"]]
            assert child["parent"] == root["span"]
            assert child["trace"] == root["trace"]
