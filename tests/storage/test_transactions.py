"""Tests for transactions: atomicity, visibility, validation."""

import pytest

from repro.errors import NoSuchTupleError, TransactionError
from repro.storage.update_log import UpdateKind


class TestLifecycle:
    def test_commit_applies_all(self, db, stocks, stocks_tids):
        txn = db.begin()
        txn.insert_into(stocks, (101088, "MAC", 117))
        txn.modify_in(stocks, stocks_tids[120992], updates={"price": 149})
        txn.delete_from(stocks, stocks_tids[92394])
        assert len(stocks) == 3  # nothing visible yet
        txn.commit()
        assert len(stocks) == 3  # +1 insert -1 delete
        assert stocks.get(stocks_tids[120992])[2] == 149

    def test_abort_applies_nothing(self, db, stocks):
        txn = db.begin()
        txn.insert_into(stocks, (7, "MAC", 117))
        txn.abort()
        assert len(stocks) == 3
        assert txn.state == "aborted"

    def test_commit_twice_rejected(self, db, stocks):
        txn = db.begin()
        txn.insert_into(stocks, (7, "MAC", 117))
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_ops_after_commit_rejected(self, db, stocks):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert_into(stocks, (7, "MAC", 117))

    def test_context_manager_commits(self, db, stocks):
        with db.begin() as txn:
            txn.insert_into(stocks, (7, "MAC", 117))
        assert len(stocks) == 4

    def test_context_manager_aborts_on_exception(self, db, stocks):
        with pytest.raises(RuntimeError):
            with db.begin() as txn:
                txn.insert_into(stocks, (7, "MAC", 117))
                raise RuntimeError("boom")
        assert len(stocks) == 3

    def test_single_commit_timestamp(self, db, stocks, stocks_tids):
        ts_before = db.now()
        with db.begin() as txn:
            txn.insert_into(stocks, (7, "MAC", 117))
            txn.delete_from(stocks, stocks_tids[92394])
        records = stocks.log.since(ts_before)
        assert len({r.ts for r in records}) == 1
        assert all(r.txn_id == records[0].txn_id for r in records)


class TestVisibility:
    def test_reads_own_inserts(self, db, stocks):
        with db.begin() as txn:
            tid = txn.insert_into(stocks, (7, "MAC", 117))
            assert txn.read(stocks, tid) == (7, "MAC", 117)

    def test_modify_own_insert_folds(self, db, stocks):
        ts = db.now()
        with db.begin() as txn:
            tid = txn.insert_into(stocks, (7, "MAC", 117))
            txn.modify_in(stocks, tid, updates={"price": 118})
        assert stocks.get(tid)[2] == 118
        records = stocks.log.since(ts)
        assert [r.kind for r in records] == [UpdateKind.INSERT, UpdateKind.MODIFY]

    def test_delete_own_insert(self, db, stocks):
        with db.begin() as txn:
            tid = txn.insert_into(stocks, (7, "MAC", 117))
            txn.delete_from(stocks, tid)
        assert tid not in stocks

    def test_chained_modifies_use_latest_old(self, db, stocks, stocks_tids):
        ts = db.now()
        tid = stocks_tids[120992]
        with db.begin() as txn:
            txn.modify_in(stocks, tid, updates={"price": 149})
            txn.modify_in(stocks, tid, updates={"price": 148})
        records = stocks.log.since(ts)
        assert records[1].old[2] == 149 and records[1].new[2] == 148

    def test_read_of_deleted_is_none(self, db, stocks, stocks_tids):
        with db.begin() as txn:
            txn.delete_from(stocks, stocks_tids[92394])
            assert txn.read(stocks, stocks_tids[92394]) is None


class TestValidation:
    def test_delete_unknown_tid(self, db, stocks):
        with pytest.raises(NoSuchTupleError):
            with db.begin() as txn:
                txn.delete_from(stocks, 9999)

    def test_double_delete_rejected(self, db, stocks, stocks_tids):
        with pytest.raises(NoSuchTupleError):
            with db.begin() as txn:
                txn.delete_from(stocks, stocks_tids[92394])
                txn.delete_from(stocks, stocks_tids[92394])

    def test_modify_needs_exactly_one_form(self, db, stocks, stocks_tids):
        with pytest.raises(TransactionError):
            with db.begin() as txn:
                txn.modify_in(stocks, stocks_tids[92394])

    def test_insert_validates_types(self, db, stocks):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            with db.begin() as txn:
                txn.insert_into(stocks, ("bad", "MAC", 117))


class TestMultiTable:
    def test_spans_tables_atomically(self, db, stocks):
        from repro.relational.types import AttributeType

        trades = db.create_table(
            "trades", [("sid", AttributeType.INT), ("qty", AttributeType.INT)]
        )
        ts = db.now()
        with db.begin() as txn:
            txn.insert_into(stocks, (7, "MAC", 117))
            txn.insert_into(trades, (7, 10))
        assert stocks.log.since(ts)[0].ts == trades.log.since(ts)[0].ts
