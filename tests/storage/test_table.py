"""Tests for tables: mutation, indexes, logging, observers."""

import pytest

from repro.errors import NoSuchTupleError
from repro.storage.update_log import UpdateKind


class TestBasics:
    def test_insert_assigns_increasing_tids(self, stocks):
        tid = stocks.insert((1, "NEW", 5))
        tid2 = stocks.insert((2, "NEW2", 6))
        assert tid2 > tid
        assert stocks.get(tid) == (1, "NEW", 5)

    def test_len_and_contains(self, stocks, stocks_tids):
        assert len(stocks) == 3
        assert stocks_tids[100000] in stocks

    def test_get_missing_raises(self, stocks):
        with pytest.raises(NoSuchTupleError):
            stocks.get(9999)

    def test_modify_full_values(self, stocks, stocks_tids):
        tid = stocks_tids[120992]
        stocks.modify(tid, values=(120992, "DEC", 149))
        assert stocks.get(tid) == (120992, "DEC", 149)

    def test_modify_by_updates_dict(self, stocks, stocks_tids):
        tid = stocks_tids[120992]
        stocks.modify(tid, updates={"price": 149})
        assert stocks.get(tid)[2] == 149

    def test_delete(self, stocks, stocks_tids):
        stocks.delete(stocks_tids[92394])
        assert stocks_tids[92394] not in stocks
        assert len(stocks) == 2

    def test_snapshot_is_independent(self, stocks):
        snap = stocks.snapshot()
        stocks.insert((9, "X", 1))
        assert len(snap) == 3 and len(stocks) == 4


class TestLogging:
    def test_every_change_logged_with_commit_ts(self, db, stocks, stocks_tids):
        before = len(stocks.log)
        ts = db.now()
        stocks.insert((7, "NEW", 10))
        records = stocks.log.since(ts)
        assert len(records) == 1 and len(stocks.log) == before + 1
        assert records[0].kind is UpdateKind.INSERT
        assert records[0].ts == db.now()

    def test_modify_logs_old_and_new(self, db, stocks, stocks_tids):
        ts = db.now()
        stocks.modify(stocks_tids[120992], updates={"price": 149})
        record = stocks.log.since(ts)[0]
        assert record.old == (120992, "DEC", 150)
        assert record.new == (120992, "DEC", 149)

    def test_delete_logs_old(self, db, stocks, stocks_tids):
        ts = db.now()
        stocks.delete(stocks_tids[92394])
        record = stocks.log.since(ts)[0]
        assert record.kind is UpdateKind.DELETE
        assert record.old == (92394, "QLI", 145)
        assert record.new is None


class TestIndexes:
    def test_create_index_backfills(self, stocks):
        index = stocks.create_index(["name"])
        assert len(index.lookup(("DEC",))) == 2

    def test_create_index_idempotent(self, stocks):
        a = stocks.create_index(["name"])
        b = stocks.create_index(["name"])
        assert a is b

    def test_index_maintained_through_updates(self, stocks, stocks_tids):
        index = stocks.create_index(["name"])
        tid = stocks.insert((7, "MAC", 117))
        assert tid in index.lookup(("MAC",))
        stocks.modify(tid, updates={"name": "MAC2"})
        assert tid in index.lookup(("MAC2",))
        assert tid not in index.lookup(("MAC",))
        stocks.delete(tid)
        assert tid not in index.lookup(("MAC2",))

    def test_index_for_positions(self, stocks):
        stocks.create_index(["sid"])
        assert stocks.index_for((0,)) is not None
        assert stocks.index_for((2,)) is None


class TestObservers:
    def test_observer_sees_committed_batch(self, db, stocks, stocks_tids):
        seen = []
        stocks.subscribe(lambda table, records: seen.append(list(records)))
        with db.begin() as txn:
            txn.insert_into(stocks, (7, "MAC", 117))
            txn.delete_from(stocks, stocks_tids[92394])
        assert len(seen) == 1
        assert [r.kind for r in seen[0]] == [UpdateKind.INSERT, UpdateKind.DELETE]

    def test_unsubscribe(self, stocks):
        seen = []
        unsubscribe = stocks.subscribe(lambda t, r: seen.append(r))
        unsubscribe()
        stocks.insert((7, "MAC", 117))
        assert seen == []

    def test_insert_many_is_one_batch(self, stocks):
        batches = []
        stocks.subscribe(lambda t, r: batches.append(len(r)))
        stocks.insert_many([(7, "A", 1), (8, "B", 2)])
        assert batches == [2]
