"""Durable write-ahead log: framing, torn tails, recovery, rebase.

The WAL is the crash-safety layer under checkpoints: every committed
update and CQ lifecycle event is journaled *before* it is applied, so
recovery = load last checkpoint (if any) + replay the journal suffix.
These tests exercise the full matrix: journal-only recovery, checkpoint
+ suffix recovery, torn/corrupt tails, fsync policies, and the
checkpoint envelope's own integrity checks.
"""

import os

import pytest

from repro.core.manager import CQManager
from repro.core.persistence import (
    load_manager,
    recover_manager,
    recover_server,
    save_manager,
    save_server,
)
from repro.errors import CheckpointError, WALError
from repro.metrics import Metrics
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.relational.types import AttributeType
from repro.storage.database import Database
from repro.storage.snapshots import read_checkpoint, write_checkpoint
from repro.storage.wal import (
    KIND_COMMIT,
    WriteAheadLog,
    rebase_wal,
    recover_database,
    scan_wal,
)

SCHEMA = [("id", AttributeType.INT), ("sym", AttributeType.STR), ("price", AttributeType.INT)]
CHEAP = "SELECT sym, price FROM stocks WHERE price < 80"


def build_db(wal_path, fsync="batch"):
    db = Database(durability=str(wal_path), fsync=fsync)
    table = db.create_table("stocks", SCHEMA)
    table.insert_many([(1, "IBM", 100), (2, "MAC", 50), (3, "HP", 75)])
    return db, table


class TestFraming:
    def test_scan_empty_or_missing_file(self, tmp_path):
        recovery = scan_wal(str(tmp_path / "missing.wal"))
        assert recovery.entries == [] and not recovery.torn

    def test_appends_scan_back_in_order(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with WriteAheadLog(path) as wal:
            for i in range(5):
                wal.append({"k": "commit", "i": i})
            wal.commit_barrier()
        recovery = scan_wal(path)
        assert [e["i"] for e in recovery.entries] == list(range(5))
        assert not recovery.torn

    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with WriteAheadLog(path) as wal:
            wal.append({"k": "commit", "i": 0})
        good_size = os.path.getsize(path)
        # A crash mid-append: length prefix promises bytes that never
        # arrived.
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x01\x00partial")
        recovery = scan_wal(path, repair=True)
        assert recovery.torn
        assert [e["i"] for e in recovery.entries] == [0]
        assert os.path.getsize(path) == good_size
        # The repaired journal accepts new frames cleanly.
        with WriteAheadLog(path) as wal:
            wal.append({"k": "commit", "i": 1})
        assert [e["i"] for e in scan_wal(path).entries] == [0, 1]

    def test_bitflip_discards_frame_and_everything_after(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with WriteAheadLog(path) as wal:
            for i in range(4):
                wal.append({"k": "commit", "i": i})
            wal.commit_barrier()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size // 2)
            byte = fh.read(1)
            fh.seek(size // 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        recovery = scan_wal(path, repair=True)
        assert recovery.torn
        # Everything after the first bad frame is discarded — the
        # strongest sound answer an unfenced log can give.
        assert len(recovery.entries) < 4
        assert all(e["i"] == i for i, e in enumerate(recovery.entries))

    def test_fsync_policies(self, tmp_path):
        with pytest.raises(WALError):
            WriteAheadLog(str(tmp_path / "x.wal"), fsync="sometimes")
        always = WriteAheadLog(str(tmp_path / "a.wal"), fsync="always")
        always.append({"k": "commit"})
        always.commit_barrier()
        assert always.syncs == 1
        always.close()
        batch = WriteAheadLog(str(tmp_path / "b.wal"), fsync="batch", batch_window=3)
        for _ in range(7):
            batch.append({"k": "commit"})
        assert batch.syncs == 2  # at appends 3 and 6
        batch.close()
        off = WriteAheadLog(str(tmp_path / "o.wal"), fsync="off")
        off.append({"k": "commit"})
        off.commit_barrier()
        assert off.syncs == 0
        off.close()

    def test_closed_wal_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "j.wal"))
        wal.close()
        with pytest.raises(WALError):
            wal.append({"k": "commit"})


class TestDatabaseRecovery:
    def test_journal_only_recovery_restores_contents_and_logs(self, tmp_path):
        path = tmp_path / "site.wal"
        db, table = build_db(path)
        with db.begin() as txn:
            txn.delete_from(table, 1)
            txn.modify_in(table, 2, updates={"price": 55})
        db.wal.close()

        recovered, recovery, summary = recover_database(str(path))
        assert not recovery.torn
        back = recovered.table("stocks")
        assert {r.values for r in back.rows()} == {r.values for r in table.rows()}
        assert recovered.now() == db.now()
        # Update logs replay too: a differential read over the whole
        # history sees the same records.
        assert len(back.log.since(0)) == len(table.log.since(0))

    def test_recovery_reopens_journal_for_new_commits(self, tmp_path):
        path = tmp_path / "site.wal"
        db, _ = build_db(path)
        db.wal.close()
        recovered, _, _ = recover_database(str(path))
        recovered.table("stocks").insert((4, "SUN", 60))
        recovered.wal.close()
        again, _, _ = recover_database(str(path))
        assert len(again.table("stocks")) == 4

    def test_torn_tail_counted_once(self, tmp_path):
        path = tmp_path / "site.wal"
        db, _ = build_db(path)
        db.wal.close()
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x00\x99torn")
        metrics = Metrics()
        recovered, recovery, _ = recover_database(str(path), metrics=metrics)
        assert recovery.torn
        assert metrics.get(Metrics.WAL_TORN_TRUNCATIONS) == 1
        assert len(recovered.table("stocks")) == 3

    def test_rebase_reseeds_standalone_replayable_journal(self, tmp_path):
        path = tmp_path / "site.wal"
        db, table = build_db(path)
        rebase_wal(db.wal, db)
        # The rebased journal alone replays to the current state.
        table.insert((4, "SUN", 60))
        db.wal.close()
        recovered, _, _ = recover_database(str(path))
        assert len(recovered.table("stocks")) == 4
        # History before the rebase point is flattened: differential
        # reads into it must raise, not silently miss records.
        with pytest.raises(ValueError):
            recovered.table("stocks").log.since(0)


class TestManagerRecovery:
    def test_wal_only_recovery_restores_cqs(self, tmp_path):
        path = tmp_path / "site.wal"
        db, table = build_db(path)
        manager = CQManager(db, metrics=Metrics())
        manager.register_query("cheap", CHEAP)
        table.insert((4, "SUN", 60))
        manager.poll()
        db.wal.close()

        restored = recover_manager(str(path), metrics=Metrics())
        assert "cheap" in restored
        restored.poll()
        assert restored.get("cheap").previous_result == restored.db.query(CHEAP)

    def test_checkpoint_plus_suffix_catches_up_differentially(self, tmp_path):
        wal_path, ckpt = tmp_path / "site.wal", tmp_path / "site.ckpt"
        db, table = build_db(wal_path)
        manager = CQManager(db, metrics=Metrics())
        manager.register_query("cheap", CHEAP)
        manager.poll()
        save_manager(manager, str(ckpt))
        # Post-checkpoint commits live only in the journal suffix.
        table.insert((5, "DEC", 40))
        manager.poll()
        table.insert((6, "NCR", 30))
        db.wal.close()

        restored = recover_manager(str(wal_path), checkpoint_path=str(ckpt))
        assert len(restored.db.table("stocks")) == 5
        # Refresh positions are soft state (not journaled): the restored
        # CQ sits at its checkpointed position, so the next poll delivers
        # the whole post-checkpoint window in one differential step.
        notes = restored.poll()
        assert len(notes) == 1 and len(notes[0].delta) == 2
        assert restored.get("cheap").previous_result == restored.db.query(CHEAP)

    def test_deregister_event_nets_out_registration(self, tmp_path):
        path = tmp_path / "site.wal"
        db, _ = build_db(path)
        manager = CQManager(db, metrics=Metrics())
        manager.register_query("cheap", CHEAP)
        manager.register_query("all", "SELECT sym FROM stocks")
        manager.deregister("cheap")
        db.wal.close()

        restored = recover_manager(str(path))
        assert "cheap" not in restored
        assert "all" in restored

    def test_checkpoint_held_cqs_win_over_journal_events(self, tmp_path):
        wal_path, ckpt = tmp_path / "site.wal", tmp_path / "site.ckpt"
        db, table = build_db(wal_path)
        manager = CQManager(db, metrics=Metrics())
        manager.register_query("cheap", CHEAP)
        table.insert((4, "SUN", 60))
        manager.poll()
        save_manager(manager, str(ckpt))
        db.wal.close()

        restored = recover_manager(str(wal_path), checkpoint_path=str(ckpt))
        # Re-registering from the journal would reset last_execution_ts;
        # the checkpointed CQ (with its refresh position) must survive.
        assert restored.get("cheap").last_execution_ts == manager.get("cheap").last_execution_ts


class TestServerRecovery:
    def build_server(self, wal_path):
        db = Database(durability=str(wal_path))
        table = db.create_table("stocks", SCHEMA)
        table.insert_many([(1, "IBM", 100), (2, "MAC", 50)])
        server = CQServer(db, SimulatedNetwork(), metrics=Metrics())
        client = CQClient("c1")
        server.attach(client)
        client.register("cheap", CHEAP, Protocol.DRA_DELTA)
        return db, table, server, client

    def test_subscriptions_recovered_from_journal(self, tmp_path):
        path = tmp_path / "srv.wal"
        db, table, server, _ = self.build_server(path)
        table.insert((3, "HP", 75))
        server.refresh_all()
        db.wal.close()

        restored = recover_server(str(path), metrics=Metrics())
        assert ("c1", "cheap") in restored._subscriptions
        sub = restored._subscriptions[("c1", "cheap")]
        assert sub.protocol is Protocol.DRA_DELTA
        # A reconnecting client converges to the full re-evaluation.
        client = CQClient("c1")
        restored.attach(client)
        restored.db.table("stocks").insert((4, "SUN", 60))
        restored.refresh_all()
        assert client.result("cheap") == restored.db.query(CHEAP)

    def test_deregistered_subscription_stays_gone(self, tmp_path):
        path = tmp_path / "srv.wal"
        db, _, server, client = self.build_server(path)
        server.deregister("c1", "cheap")
        db.wal.close()
        restored = recover_server(str(path))
        assert ("c1", "cheap") not in restored._subscriptions

    def test_checkpoint_plus_suffix(self, tmp_path):
        wal_path, ckpt = tmp_path / "srv.wal", tmp_path / "srv.ckpt"
        db, table, server, _ = self.build_server(wal_path)
        server.refresh_all()
        save_server(server, str(ckpt))
        table.insert((3, "HP", 75))
        db.wal.close()

        restored = recover_server(str(wal_path), checkpoint_path=str(ckpt))
        assert len(restored.db.table("stocks")) == 3
        assert ("c1", "cheap") in restored._subscriptions


class TestCheckpointEnvelope:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        payload = {"format": 1, "hello": [1, 2, 3]}
        write_checkpoint(path, payload)
        assert read_checkpoint(path) == payload

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        write_checkpoint(path, {"a": 1})
        write_checkpoint(path, {"a": 2})
        assert os.listdir(tmp_path) == ["c.ckpt"]
        assert read_checkpoint(path) == {"a": 2}

    def test_bitflip_raises_checkpoint_error(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        write_checkpoint(path, {"format": 1, "rows": list(range(50))})
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 5)
            fh.write(b"9")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        write_checkpoint(path, {"format": 1, "rows": list(range(50))})
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_wrong_version_raises_checkpoint_error(self, tmp_path):
        path = str(tmp_path / "c.ckpt")
        with open(path, "wb") as fh:
            fh.write(b'{"repro_checkpoint": 99, "crc32": 0}\n{}')
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_manager_checkpoint_corruption_detected(self, tmp_path):
        wal_path, ckpt = tmp_path / "m.wal", tmp_path / "m.ckpt"
        db, _ = build_db(wal_path)
        manager = CQManager(db, metrics=Metrics())
        manager.register_query("cheap", CHEAP)
        save_manager(manager, str(ckpt))
        with open(ckpt, "r+b") as fh:
            fh.seek(os.path.getsize(ckpt) // 2)
            fh.write(b"XX")
        with pytest.raises(CheckpointError):
            load_manager(str(ckpt))

    def test_save_manager_truncates_journal(self, tmp_path):
        wal_path, ckpt = tmp_path / "m.wal", tmp_path / "m.ckpt"
        db, table = build_db(wal_path)
        manager = CQManager(db, metrics=Metrics())
        for i in range(20):
            table.insert((10 + i, "X", i))
        before = os.path.getsize(wal_path)
        save_manager(manager, str(ckpt))
        # The journal now holds only the re-seeded baseline frames.
        assert os.path.getsize(wal_path) < before
