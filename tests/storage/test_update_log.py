"""Tests for the append-only update log."""

import pytest

from repro.storage.update_log import UpdateKind, UpdateLog, UpdateRecord


def record(tid, ts, kind=UpdateKind.INSERT, old=None, new=(1,)):
    return UpdateRecord(kind, tid, old, new, ts, txn_id=1)


class TestAppend:
    def test_append_and_len(self):
        log = UpdateLog()
        log.append(record(1, ts=1))
        log.append(record(2, ts=1))
        assert len(log) == 2

    def test_timestamps_must_not_decrease(self):
        log = UpdateLog()
        log.append(record(1, ts=5))
        with pytest.raises(ValueError):
            log.append(record(2, ts=4))

    def test_equal_timestamps_allowed(self):
        log = UpdateLog()
        log.append(record(1, ts=5))
        log.append(record(2, ts=5))  # same transaction
        assert len(log) == 2


class TestSince:
    def test_since_is_exclusive(self):
        log = UpdateLog()
        for ts in (1, 2, 2, 3):
            log.append(record(ts * 10, ts=ts))
        assert [r.ts for r in log.since(2)] == [3]
        assert [r.ts for r in log.since(1)] == [2, 2, 3]
        assert [r.ts for r in log.since(0)] == [1, 2, 2, 3]
        assert log.since(3) == []

    def test_since_preserves_order(self):
        log = UpdateLog()
        log.append(record(1, ts=1))
        log.append(record(2, ts=1))
        assert [r.tid for r in log.since(0)] == [1, 2]


class TestPrune:
    def test_prune_before_drops_prefix(self):
        log = UpdateLog()
        for ts in (1, 2, 3, 4):
            log.append(record(ts, ts=ts))
        assert log.prune_before(2) == 2
        assert len(log) == 2
        assert log.oldest_ts() == 3
        assert log.pruned_through == 2

    def test_prune_noop(self):
        log = UpdateLog()
        log.append(record(1, ts=5))
        assert log.prune_before(4) == 0

    def test_read_into_pruned_region_raises(self):
        log = UpdateLog()
        for ts in (1, 2, 3):
            log.append(record(ts, ts=ts))
        log.prune_before(2)
        with pytest.raises(ValueError):
            log.since(1)
        assert [r.ts for r in log.since(2)] == [3]

    def test_latest_and_oldest_on_empty(self):
        log = UpdateLog()
        assert log.latest_ts() == 0 and log.oldest_ts() == 0


def test_record_equality_and_repr():
    a = record(1, ts=1)
    b = record(1, ts=1)
    assert a == b and hash(a) == hash(b)
    assert "insert" in repr(a)
