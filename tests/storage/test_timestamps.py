"""Tests for the logical clock."""

from repro.storage.timestamps import EPOCH, LogicalClock


def test_starts_at_epoch():
    assert LogicalClock().now() == EPOCH


def test_tick_is_strictly_monotone():
    clock = LogicalClock()
    seen = [clock.tick() for __ in range(5)]
    assert seen == sorted(set(seen))
    assert clock.now() == seen[-1]


def test_now_does_not_advance():
    clock = LogicalClock()
    clock.tick()
    assert clock.now() == clock.now()


def test_advance_to_moves_forward_only():
    clock = LogicalClock()
    clock.advance_to(10)
    assert clock.now() == 10
    clock.advance_to(5)  # no-op: never goes backward
    assert clock.now() == 10


def test_custom_start():
    assert LogicalClock(start=100).tick() == 101
