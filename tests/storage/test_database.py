"""Tests for the database catalog and query entry points."""

import pytest

from repro.errors import DuplicateTableError, NoSuchTableError
from repro.relational import AttributeType, Schema


class TestCatalog:
    def test_create_with_pairs(self, db):
        table = db.create_table("t", [("x", AttributeType.INT)])
        assert table.schema.names == ("x",)

    def test_create_with_schema(self, db):
        schema = Schema.of(("x", AttributeType.INT))
        assert db.create_table("t", schema).schema is schema

    def test_create_with_indexes(self, db):
        table = db.create_table(
            "t", [("x", AttributeType.INT)], indexes=[("x",)]
        )
        assert table.index_for((0,)) is not None

    def test_duplicate_rejected(self, db):
        db.create_table("t", [("x", AttributeType.INT)])
        with pytest.raises(DuplicateTableError):
            db.create_table("t", [("x", AttributeType.INT)])

    def test_lookup_and_contains(self, db):
        db.create_table("t", [("x", AttributeType.INT)])
        assert "t" in db and "u" not in db
        with pytest.raises(NoSuchTableError):
            db.table("u")

    def test_drop(self, db):
        db.create_table("t", [("x", AttributeType.INT)])
        db.drop_table("t")
        assert "t" not in db
        with pytest.raises(NoSuchTableError):
            db.drop_table("t")

    def test_shared_clock(self, db, stocks):
        before = db.now()
        stocks.insert((9, "X", 1))
        assert db.now() == before + 1


class TestQueries:
    def test_sql_text(self, db, stocks):
        out = db.query("SELECT name FROM stocks WHERE price > 150")
        assert [row.values for row in out] == [("DEC",)]

    def test_parsed_query_object(self, db, stocks):
        q = db.parse("SELECT name FROM stocks WHERE price > 150")
        assert db.query(q) == db.query("SELECT name FROM stocks WHERE price > 150")

    def test_aggregate_sql(self, db, stocks):
        out = db.query("SELECT COUNT(*) AS n, SUM(price) AS total FROM stocks")
        assert out.get(()) == (3, 451)

    def test_relation_is_live_view(self, db, stocks):
        live = db.relation("stocks")
        stocks.insert((9, "X", 1))
        assert len(live) == 4
