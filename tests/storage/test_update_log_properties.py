"""Property-based tests for the per-table update log.

``since`` and ``prune_before`` implement the active-delta-zone
contract (paper Section 5.4): ``since(ts)`` returns exactly the
records newer than ``ts``, and pruning below every reader's window
never changes any legal read. Hypothesis drives both over arbitrary
non-decreasing timestamp sequences — including empty windows,
duplicate timestamps, and prune points past the latest record, the
edges a handful of example tests always miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.update_log import UpdateKind, UpdateLog, UpdateRecord


def make_log(timestamps):
    """A log with one insert per timestamp (sorted to commit order)."""
    log = UpdateLog()
    for i, ts in enumerate(sorted(timestamps)):
        log.append(
            UpdateRecord(UpdateKind.INSERT, i, None, (i,), ts, txn_id=i)
        )
    return log


# Small bounded ints force frequent duplicate timestamps.
timestamp_lists = st.lists(st.integers(min_value=1, max_value=20), max_size=30)
probe_ts = st.integers(min_value=0, max_value=25)


class TestSince:
    @given(timestamps=timestamp_lists, ts=probe_ts)
    def test_since_is_exactly_the_records_after_ts(self, timestamps, ts):
        log = make_log(timestamps)
        expected = [r for r in log if r.ts > ts]
        assert log.since(ts) == expected

    @given(timestamps=timestamp_lists)
    def test_since_latest_is_empty_window(self, timestamps):
        log = make_log(timestamps)
        assert log.since(log.latest_ts()) == []

    @given(timestamps=timestamp_lists, ts=probe_ts)
    def test_duplicate_timestamps_kept_or_dropped_together(self, timestamps, ts):
        """The boundary is exclusive: every record at exactly ``ts``
        is excluded, every record one tick later included — duplicates
        never straddle the cut."""
        log = make_log(timestamps)
        window = log.since(ts)
        assert all(r.ts > ts for r in window)
        in_window = {id(r) for r in window}
        for record in log:
            assert (id(record) in in_window) == (record.ts > ts)


class TestPruneBefore:
    @given(timestamps=timestamp_lists, cut=probe_ts)
    def test_prune_drops_exactly_the_old_records(self, timestamps, cut):
        log = make_log(timestamps)
        survivors = [r for r in log if r.ts > cut]
        dropped = log.prune_before(cut)
        assert dropped == len(timestamps) - len(survivors)
        assert list(log) == survivors
        assert len(log) == len(survivors)

    @given(timestamps=timestamp_lists)
    def test_prune_past_latest_empties_the_log(self, timestamps):
        log = make_log(timestamps)
        latest = log.latest_ts()
        assert log.prune_before(latest + 5) == len(timestamps)
        assert len(log) == 0
        assert log.since(latest + 5) == []

    @given(timestamps=timestamp_lists, cut=probe_ts)
    def test_prune_never_lowers_the_horizon(self, timestamps, cut):
        log = make_log(timestamps)
        log.prune_before(cut)
        first_horizon = log.pruned_through
        # A second, lower prune is a no-op on the horizon.
        log.prune_before(max(0, cut - 3))
        assert log.pruned_through == first_horizon

    @given(timestamps=timestamp_lists, cut=probe_ts, probe=probe_ts)
    def test_reads_above_the_horizon_are_unchanged_by_pruning(
        self, timestamps, cut, probe
    ):
        """The zone invariant: pruning below a reader's window must not
        change what the reader sees; reaching below the horizon raises
        instead of silently dropping records."""
        log = make_log(timestamps)
        before = {probe_at: log.since(probe_at) for probe_at in range(26)}
        log.prune_before(cut)
        if probe >= log.pruned_through:
            assert log.since(probe) == before[probe]
        else:
            try:
                log.since(probe)
            except ValueError:
                pass
            else:
                raise AssertionError(
                    "read below the pruned horizon should raise"
                )

    @settings(max_examples=30)
    @given(timestamps=timestamp_lists, cuts=st.lists(probe_ts, max_size=5))
    def test_repeated_pruning_is_cumulative(self, timestamps, cuts):
        log = make_log(timestamps)
        total = sum(log.prune_before(cut) for cut in cuts)
        high = max(cuts, default=0)
        assert total == sum(1 for ts in timestamps if ts <= high)
        assert all(r.ts > high for r in log)
        # The horizon only advances when records are actually dropped
        # (a no-op prune leaves it alone), so it never exceeds ``high``.
        assert log.pruned_through <= high
