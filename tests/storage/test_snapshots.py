"""Tests for database snapshot save/load."""

import pytest

from repro import Database
from repro.errors import StorageError
from repro.storage.snapshots import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.workload.stocks import StockMarket


@pytest.fixture
def populated():
    db = Database()
    market = StockMarket(db, seed=77)
    market.populate(50)
    market.tick(20, p_insert=0.2, p_delete=0.2)
    return db, market


class TestRoundTrip:
    def test_contents_preserved(self, populated):
        db, market = populated
        restored = database_from_dict(database_to_dict(db))
        original = db.relation("stocks")
        copy = restored.relation("stocks")
        assert copy == original
        # Same tids too, not just values.
        assert set(copy.tids()) == set(original.tids())

    def test_clock_and_tids_resume(self, populated):
        db, market = populated
        restored = database_from_dict(database_to_dict(db))
        assert restored.now() == db.now()
        tid_before = db.table("stocks")._next_tid
        new_tid = restored.table("stocks").insert((9999, "NEW", 1))
        assert new_tid == tid_before  # continues, never reuses

    def test_log_preserved_for_cq_windows(self, populated):
        """A CQ window opened before the snapshot survives restore."""
        from repro.delta.capture import delta_since

        db, market = populated
        ts = db.now()
        market.tick(10)
        snapshot = database_to_dict(db)
        restored = database_from_dict(snapshot)
        original_delta = delta_since(db.table("stocks"), ts)
        restored_delta = delta_since(restored.table("stocks"), ts)
        assert list(original_delta) == list(restored_delta)

    def test_pruned_watermark_preserved(self, populated):
        db, market = populated
        db.table("stocks").log.prune_before(2)
        restored = database_from_dict(database_to_dict(db))
        assert restored.table("stocks").log.pruned_through == 2
        with pytest.raises(ValueError):
            restored.table("stocks").log.since(0)

    def test_indexes_rebuilt(self, populated):
        db, market = populated
        restored = database_from_dict(database_to_dict(db))
        index = restored.table("stocks").index_for((0,))
        assert index is not None
        row = next(iter(restored.relation("stocks")))
        assert row.tid in index.lookup((row.values[0],))

    def test_without_logs(self, populated):
        db, market = populated
        restored = database_from_dict(
            database_to_dict(db, include_logs=False)
        )
        assert len(restored.table("stocks").log) == 0
        assert restored.relation("stocks") == db.relation("stocks")

    def test_json_file_roundtrip(self, populated, tmp_path):
        db, market = populated
        path = str(tmp_path / "snapshot.json")
        save_database(db, path)
        restored = load_database(path)
        assert restored.relation("stocks") == db.relation("stocks")

    def test_unknown_format_rejected(self):
        with pytest.raises(StorageError):
            database_from_dict({"format": 999, "now": 0, "tables": {}})


class TestResumedOperation:
    def test_cqs_resume_on_restored_database(self, populated):
        """The restored site can serve fresh CQs immediately."""
        from repro.core import CQManager

        db, market = populated
        restored = database_from_dict(database_to_dict(db))
        mgr = CQManager(restored)
        mgr.register_sql(
            "watch", "SELECT name, price FROM stocks WHERE price > 500"
        )
        mgr.drain()
        restored.table("stocks").insert((9999, "NEW", 900))
        notes = mgr.drain()
        assert len(notes) == 1
        assert notes[0].delta.insertions().values_set() == {
            ("NEW", 900)
        }
