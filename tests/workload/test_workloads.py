"""Tests for the deterministic workload generators."""

import pytest

from repro import Database
from repro.workload.accounts import Bank
from repro.workload.generators import TableWorkload
from repro.workload.stocks import StockMarket, symbol_name
from repro.workload.zipf import ZipfSampler


class TestStockMarket:
    def test_populate(self, db):
        market = StockMarket(db, seed=1)
        market.populate(100)
        assert market.live_count() == 100
        prices = [row.values[2] for row in market.stocks.rows()]
        assert all(0 <= p < 1000 for p in prices)

    def test_deterministic_across_seeds(self):
        def build(seed):
            db = Database()
            market = StockMarket(db, seed=seed)
            market.populate(50)
            market.tick(20, p_insert=0.2, p_delete=0.2)
            return sorted(r.values for r in market.stocks.rows())

        assert build(42) == build(42)
        assert build(42) != build(43)

    def test_tick_respects_mix(self, db):
        market = StockMarket(db, seed=2)
        market.populate(100)
        market.tick(50, p_insert=1.0)
        assert market.live_count() == 150
        market.tick(50, p_delete=1.0)
        assert market.live_count() == 100

    def test_tick_is_one_transaction(self, db):
        market = StockMarket(db, seed=3)
        market.populate(10)
        batches = []
        market.stocks.subscribe(lambda t, records: batches.append(len(records)))
        market.tick(5)
        assert len(batches) == 1

    def test_modify_in_band(self, db):
        market = StockMarket(db, seed=4)
        market.populate(50)
        ts = db.now()
        market.modify_in_band(20, 900, 1000)
        changed = market.stocks.log.since(ts)
        assert all(900 <= r.new[2] < 1000 for r in changed)

    def test_selectivity_analytic(self, db):
        market = StockMarket(db, seed=5)
        assert market.selectivity_of(0) == pytest.approx(0.999)
        assert market.selectivity_of(900) == pytest.approx(0.099)
        assert market.selectivity_of(999) == 0.0

    def test_symbol_names(self):
        assert symbol_name(0) == "AAA"
        assert symbol_name(1) == "AAB"
        assert len({symbol_name(i) for i in range(1000)}) == 1000

    def test_trades_population(self, db):
        market = StockMarket(db, seed=6, with_trades=True)
        market.populate(10, trades_per_stock=3)
        assert len(market.trades) == 30


class TestBank:
    def test_populate_and_business_day(self, db):
        bank = Bank(db, seed=1)
        bank.populate(20)
        before = bank.total_balance()
        net = bank.business_day(100, deposit_bias=1.0)
        assert net > 0
        assert bank.total_balance() == pytest.approx(before + net)

    def test_no_overdrafts(self, db):
        bank = Bank(db, seed=2)
        bank.populate(5)
        bank.business_day(500, mean_amount=50_000, deposit_bias=0.0)
        assert all(row.values[3] >= 0 for row in bank.accounts.rows())

    def test_open_close(self, db):
        bank = Bank(db, seed=3)
        bank.populate(10)
        bank.business_day(100, p_open=1.0)
        assert bank.live_count() == 110
        bank.business_day(100, p_close=1.0)
        assert bank.live_count() == 10


class TestTableWorkload:
    def test_runs_requested_operations(self, db, stocks):
        workload = TableWorkload(
            db,
            stocks,
            row_factory=lambda rng: (rng.randrange(10**6), "GEN", rng.randrange(1000)),
            row_mutator=lambda rng, old: (old[0], old[1], rng.randrange(1000)),
            seed=9,
        )
        workload.run(100, transaction_size=7)
        assert workload.operations_applied == 100
        assert len(stocks.log) >= 100

    def test_weights_validate(self, db, stocks):
        with pytest.raises(ValueError):
            TableWorkload(
                db,
                stocks,
                row_factory=lambda rng: (),
                row_mutator=lambda rng, old: old,
                insert_weight=0,
                delete_weight=0,
                modify_weight=0,
            )

    def test_seed_rows(self, db, stocks):
        workload = TableWorkload(
            db,
            stocks,
            row_factory=lambda rng: (rng.randrange(10**6), "GEN", 5),
            row_mutator=lambda rng, old: old,
        )
        workload.seed_rows(10)
        assert len(stocks) == 13


class TestZipf:
    def test_determinism(self):
        import random

        a = ZipfSampler(100, 1.2, random.Random(5)).sample_many(50)
        b = ZipfSampler(100, 1.2, random.Random(5)).sample_many(50)
        assert a == b

    def test_skew(self):
        import random

        sampler = ZipfSampler(1000, 1.5, random.Random(0))
        samples = sampler.sample_many(2000)
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.4  # heavy head

    def test_uniform_when_s_zero(self):
        import random

        sampler = ZipfSampler(10, 0.0, random.Random(0))
        samples = sampler.sample_many(5000)
        counts = [samples.count(i) for i in range(10)]
        assert min(counts) > 300  # roughly uniform

    def test_bounds(self):
        import random

        sampler = ZipfSampler(7, 2.0, random.Random(1))
        assert all(0 <= s < 7 for s in sampler.sample_many(200))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0)
