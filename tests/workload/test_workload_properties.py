"""Property tests for the workload generators.

The workload layer is the input side of every experiment, so its
guarantees — seeded determinism, value bounds, valid output — are
properties, not examples. Hypothesis drives the parameter space:
Zipf samplers over arbitrary (n, s, seed), TableWorkload over random
operation mixes, and the fan-out subscription generator over random
template configurations (every emitted SQL text must parse and keep
its constants inside the configured domain).
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.relational.expressions import Literal
from repro.relational.predicates import Comparison
from repro.relational.sql import parse_query
from repro.relational.types import AttributeType
from repro.workload.fanout import FanoutWorkload
from repro.workload.generators import TableWorkload
from repro.workload.zipf import ZipfSampler


class TestZipfProperties:
    @given(
        n=st.integers(1, 500),
        s=st.floats(0.0, 3.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_samples_stay_in_bounds(self, n, s, seed):
        sampler = ZipfSampler(n, s=s, rng=random.Random(seed))
        for rank in sampler.sample_many(200):
            assert 0 <= rank < n

    @given(
        n=st.integers(1, 200),
        s=st.floats(0.0, 3.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_seed_determinism(self, n, s, seed):
        a = ZipfSampler(n, s=s, rng=random.Random(seed)).sample_many(100)
        b = ZipfSampler(n, s=s, rng=random.Random(seed)).sample_many(100)
        assert a == b

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_skew_concentrates_mass_on_low_ranks(self, seed):
        flat = ZipfSampler(50, s=0.0, rng=random.Random(seed))
        skewed = ZipfSampler(50, s=1.5, rng=random.Random(seed))
        flat_head = sum(1 for r in flat.sample_many(2000) if r < 5)
        skewed_head = sum(1 for r in skewed.sample_many(2000) if r < 5)
        assert skewed_head > flat_head

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, s=-0.5)


class TestTableWorkloadProperties:
    @given(
        seed=st.integers(0, 2**16),
        operations=st.integers(1, 120),
        txn_size=st.integers(1, 20),
        weights=st.tuples(
            st.floats(0.0, 4.0), st.floats(0.0, 4.0), st.floats(0.1, 4.0)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_stays_valid(self, seed, operations, txn_size, weights):
        """After any run: live tids match the table, every row fits the
        schema bounds its factory promised, counters add up."""
        insert_w, delete_w, modify_w = weights
        db = Database()
        table = db.create_table(
            "items", [("k", AttributeType.INT), ("v", AttributeType.INT)]
        )
        workload = TableWorkload(
            db,
            table,
            row_factory=lambda rng: (rng.randrange(100), rng.randrange(50)),
            row_mutator=lambda rng, old: (old[0], rng.randrange(50)),
            seed=seed,
            insert_weight=insert_w,
            delete_weight=delete_w,
            modify_weight=modify_w,
        )
        workload.seed_rows(10)
        workload.run(operations, transaction_size=txn_size)
        rows = list(table.rows())
        assert sorted(r.tid for r in rows) == sorted(workload.live_tids())
        for row in rows:
            k, v = row.values
            assert 0 <= k < 100 and 0 <= v < 50
        assert workload.operations_applied <= 10 + operations

    @given(seed=st.integers(0, 2**16), operations=st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_seed_determinism(self, seed, operations):
        def build():
            db = Database()
            table = db.create_table("items", [("v", AttributeType.INT)])
            workload = TableWorkload(
                db,
                table,
                row_factory=lambda rng: (rng.randrange(1000),),
                row_mutator=lambda rng, old: (rng.randrange(1000),),
                seed=seed,
            )
            workload.seed_rows(5)
            workload.run(operations)
            return sorted(r.values for r in table.rows())

        assert build() == build()


class TestFanoutWorkloadProperties:
    @given(
        n_templates=st.integers(1, 60),
        seed=st.integers(0, 2**16),
        skew=st.floats(0.0, 2.5, allow_nan=False),
        eq_fraction=st.floats(0.0, 1.0, allow_nan=False),
        low=st.integers(-100, 100),
        span=st.integers(1, 500),
        width=st.integers(1, 80),
    )
    @settings(max_examples=50, deadline=None)
    def test_emitted_sql_parses_with_constants_in_domain(
        self, n_templates, seed, skew, eq_fraction, low, span, width
    ):
        workload = FanoutWorkload(
            n_templates=n_templates,
            seed=seed,
            skew=skew,
            domain=(low, low + span),
            eq_fraction=eq_fraction,
            interval_width=width,
        )
        for sub in workload.subscriptions(30):
            query = parse_query(sub.sql)
            assert tuple(query.table_names) == ("stocks",)
            for constant in _constants(query.predicate):
                assert low <= constant < low + span
            assert 0 <= sub.template_rank < n_templates

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_seed_determinism(self, seed):
        def build():
            workload = FanoutWorkload(n_templates=40, seed=seed)
            return [s.pair for s in workload.subscriptions(100)]

        assert build() == build()
        assert build() != [
            s.pair
            for s in FanoutWorkload(n_templates=40, seed=seed + 1).subscriptions(100)
        ]

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_skew_shares_templates(self, seed):
        """With real skew, far fewer distinct SQL texts than subscribers
        — the population actually exercises shared materialization."""
        workload = FanoutWorkload(n_templates=50, seed=seed, skew=1.2)
        subs = workload.subscriptions(500)
        counts = Counter(s.sql for s in subs)
        assert len(counts) < len(subs)
        assert max(counts.values()) >= 500 / 50

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FanoutWorkload(n_templates=0)
        with pytest.raises(ValueError):
            FanoutWorkload(domain=(10, 10))
        with pytest.raises(ValueError):
            FanoutWorkload(eq_fraction=1.5)
        with pytest.raises(ValueError):
            FanoutWorkload(interval_width=0)


def _constants(predicate):
    """Every literal constant mentioned in a predicate tree."""
    found = []
    stack = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Comparison):
            for side in (node.left, node.right):
                if isinstance(side, Literal):
                    found.append(side.value)
            continue
        for attr in ("left", "right", "operand", "operands"):
            child = getattr(node, attr, None)
            if child is None:
                continue
            if isinstance(child, (list, tuple)):
                stack.extend(child)
            else:
                stack.append(child)
    return found
