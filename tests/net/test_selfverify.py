"""Self-verifying deltas and connect-timeout behavior.

Every result-bearing message carries an order-insensitive digest of
the post-apply retained result. Clients recompute it after applying;
a mismatch means the cached copy is provably not what the server
shipped from, so the client discards it and resyncs — corruption is
*detected and healed*, never silently propagated. The server side of
the same defense is the sampled audit: every N-th differential
refresh is checked against a full re-evaluation.
"""

import asyncio
import socket
import time

import pytest

from repro.errors import ConnectTimeout, NetworkError
from repro.metrics import Metrics
from repro.net.client import CQClient, CQSession
from repro.net.digest import relation_digest, row_digest
from repro.net.messages import DeltaMessage, FullResultMessage
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.database import Database

SCHEMA = [("id", AttributeType.INT), ("sym", AttributeType.STR), ("price", AttributeType.INT)]
CHEAP = "SELECT sym, price FROM stocks WHERE price < 80"


def build(audit_interval=0):
    db = Database()
    table = db.create_table("stocks", SCHEMA)
    table.insert_many([(1, "IBM", 100), (2, "MAC", 50), (3, "HP", 75)])
    server = CQServer(
        db, SimulatedNetwork(), metrics=Metrics(), audit_interval=audit_interval
    )
    client = CQClient("c1")
    server.attach(client)
    return db, table, server, client


class TestRelationDigest:
    def schema(self):
        return Schema.of(("sym", AttributeType.STR), ("price", AttributeType.INT))

    def test_order_insensitive(self):
        a, b = Relation(self.schema()), Relation(self.schema())
        rows = [(1, ("MAC", 50)), (2, ("HP", 75)), ((3, 4), ("SUN", 60))]
        for tid, values in rows:
            a.add(tid, values)
        for tid, values in reversed(rows):
            b.add(tid, values)
        assert relation_digest(a) == relation_digest(b)

    def test_sensitive_to_values_tids_and_count(self):
        base = Relation(self.schema())
        base.add(1, ("MAC", 50))
        changed = Relation(self.schema())
        changed.add(1, ("MAC", 51))
        moved = Relation(self.schema())
        moved.add(2, ("MAC", 50))
        assert relation_digest(base) != relation_digest(changed)
        assert relation_digest(base) != relation_digest(moved)
        # The row count guards the XOR fold against cancellation:
        # a row twice is not the same as no row at all.
        assert relation_digest(base).startswith("1:")
        assert relation_digest(Relation(self.schema())).startswith("0:")

    def test_row_digest_treats_tuple_and_list_tids_alike(self):
        # Wire decoding rebuilds nested tids as tuples; the digest must
        # not depend on which side computed it.
        assert row_digest((3, 4), ("X", 1)) == row_digest((3, 4), ("X", 1))
        assert row_digest(3, ("X", 1)) != row_digest(4, ("X", 1))


class TestClientVerification:
    def test_clean_traffic_never_mismatches(self):
        db, table, server, client = build()
        client.register("cheap", CHEAP)
        for price in (60, 40, 90):
            table.insert((10 + price, "NEW", price))
            server.refresh_all()
        assert client.digest_mismatches == 0
        assert client.result("cheap") == db.query(CHEAP)

    def test_corrupt_delta_detected_and_healed(self):
        """A delta stamped with a digest that does not match what the
        client computes must produce exactly one mismatch, then a
        successful automatic resync back to the true result."""
        from repro.delta.differential import DeltaRelation

        db, table, server, client = build()
        client.register("cheap", CHEAP)
        table.insert((4, "SUN", 60))
        server.refresh_all()
        good = client.result("cheap").copy()
        # An empty delta stamped with a forged digest — what a
        # corrupted-but-CRC-valid frame or a server bug would look like.
        forged = DeltaMessage(
            "cheap",
            DeltaRelation(good.schema, []),
            db.now(),
            "9:ffffffffffffffff",
        )
        client.receive(forged)
        assert client.digest_mismatches == 1
        assert server.metrics.get(Metrics.DIGEST_MISMATCHES) == 1
        # The resync already healed the cache to the server's truth.
        assert client.result("cheap") == db.query(CHEAP)
        assert client.result("cheap") == good

    def test_corrupt_full_result_rejected_not_cached(self):
        db, table, server, client = build()
        client.register("cheap", CHEAP)
        bogus = Relation(Schema.of(("sym", AttributeType.STR), ("price", AttributeType.INT)))
        bogus.add(99, ("EVIL", 1))
        client.receive(FullResultMessage("cheap", bogus, db.now(), "1:0000000000000000"))
        assert client.digest_mismatches == 1
        # The poisoned copy never landed; the resync restored truth.
        assert client.result("cheap") == db.query(CHEAP)


class TestSampledAudit:
    def test_clean_refreshes_audit_without_divergence(self):
        db, table, server, client = build(audit_interval=2)
        client.register("cheap", CHEAP)
        for i in range(6):
            table.insert((100 + i, "NEW", 10 + i))
            server.refresh_all()
        assert server.metrics.get(Metrics.AUDITS) == 3
        assert server.metrics.get(Metrics.AUDIT_DIVERGENCES) == 0

    def test_divergent_retained_copy_detected_and_healed(self):
        db, table, server, client = build(audit_interval=1)
        client.register("cheap", CHEAP)
        # Corrupt the server's retained copy behind the engine's back
        # (the failure mode the audit exists to catch).
        sub = server._subscriptions[("c1", "cheap")]
        sub.previous_result.add(999, ("GHOST", 1))
        table.insert((4, "SUN", 60))
        server.refresh_all()
        assert server.metrics.get(Metrics.AUDIT_DIVERGENCES) == 1
        # The audit healed the retained copy to the full re-evaluation.
        assert sub.previous_result == db.query(CHEAP)


class TestConnectTimeout:
    def _dead_port(self):
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            return s.getsockname()[1]

    def test_gives_up_after_max_attempts(self):
        async def scenario():
            session = CQSession(
                "c1", "127.0.0.1", self._dead_port(),
                backoff_base=0.01, max_attempts=2,
            )
            with pytest.raises(ConnectTimeout) as info:
                await session.connect(timeout=30.0)
            assert info.value.attempts >= 2
            assert isinstance(info.value, NetworkError)
            assert not session.connected
            assert session._task is None  # torn down, safe to retry

        asyncio.run(scenario())

    def test_timeout_is_a_total_deadline_across_backoff(self):
        async def scenario():
            # Long backoff + many attempts: a per-attempt budget would
            # keep dialing far past the deadline; the total deadline
            # must cut the whole loop off.
            session = CQSession(
                "c1", "127.0.0.1", self._dead_port(),
                backoff_base=0.5, backoff_cap=2.0, max_attempts=50,
            )
            start = time.monotonic()
            with pytest.raises(ConnectTimeout) as info:
                await session.connect(timeout=0.3)
            elapsed = time.monotonic() - start
            assert elapsed < 5.0
            assert info.value.attempts >= 1
            assert session._task is None

        asyncio.run(scenario())
