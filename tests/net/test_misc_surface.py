"""Tests for remaining public surface of the net and sources layers."""

import pytest

from repro import Database
from repro.errors import RegistrationError
from repro.net.client import CQClient
from repro.net.messages import DeltaAvailableMessage, FetchMessage
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.sources.remote import RemoteTableSource, records_wire_size
from repro.storage.update_log import UpdateKind, UpdateRecord
from repro.workload.stocks import StockMarket

WATCH = "SELECT name FROM stocks WHERE price > 500"


class TestServerSurface:
    def test_duplicate_register_via_handle(self, db):
        StockMarket(db, seed=1).populate(10)
        server = CQServer(db, SimulatedNetwork())
        client = CQClient("c")
        server.attach(client)
        client.register("w", WATCH)
        from repro.net.messages import RegisterMessage

        with pytest.raises(RegistrationError):
            server.handle_register("c", RegisterMessage("w", WATCH))

    def test_subscriptions_listing(self, db):
        StockMarket(db, seed=2).populate(10)
        server = CQServer(db, SimulatedNetwork())
        for i in range(3):
            client = CQClient(f"c{i}")
            server.attach(client)
            client.register("w", WATCH)
        subs = server.subscriptions()
        assert len(subs) == 3
        assert {s.client_id for s in subs} == {"c0", "c1", "c2"}

    def test_deliver_to_detached_client(self, db):
        StockMarket(db, seed=3).populate(10)
        server = CQServer(db, SimulatedNetwork())
        from repro.errors import NetworkError
        from repro.net.messages import FullResultMessage
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema
        from repro.relational.types import AttributeType

        with pytest.raises(NetworkError):
            server._deliver(
                "ghost",
                FullResultMessage(
                    "w", Relation(Schema.of(("x", AttributeType.INT))), 1
                ),
            )


class TestMessageSurface:
    def test_delta_available_fields_and_size(self):
        from repro.net.codec import encode_frame

        message = DeltaAvailableMessage("w", ts=5, entry_count=7, pending_bytes=999)
        assert message.wire_size() == len(encode_frame(message))
        assert "7 entries" in repr(message)

    def test_fetch_message(self):
        fetch = FetchMessage("w")
        assert 0 < fetch.wire_size() < 64
        assert "w" in repr(fetch)


class TestRemoteWireSize:
    def test_records_wire_size_components(self):
        insert = UpdateRecord(UpdateKind.INSERT, 1, None, (1, "AB"), 1, 1)
        modify = UpdateRecord(UpdateKind.MODIFY, 1, (1, "AB"), (1, "CD"), 2, 1)
        assert records_wire_size([insert]) == 20 + 8 + (4 + 2)
        assert records_wire_size([modify]) == 20 + 2 * (8 + 4 + 2)
        assert records_wire_size([]) == 0

    def test_source_repr_tracks_pulls(self, db):
        market = StockMarket(db, seed=4)
        market.populate(5)
        source = RemoteTableSource(market.stocks)
        source.drain()
        assert "pulls=1" in repr(source)
