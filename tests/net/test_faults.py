"""Tests for injectable faults in the simulated network."""

import pytest

from repro.errors import NetworkError
from repro.metrics import Metrics
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.workload.stocks import StockMarket

WATCH = "SELECT name, price FROM stocks WHERE price > 500"


class TestDrops:
    def test_lossless_by_default(self):
        net = SimulatedNetwork()
        for i in range(100):
            assert net.send("a", "b", 10) is not None
        assert net.link("a", "b").drops == 0

    def test_seeded_drops_are_deterministic(self):
        outcomes = []
        for __ in range(2):
            net = SimulatedNetwork()
            net.set_faults(drop_probability=0.3, seed=7)
            outcomes.append(
                [net.send("a", "b", 10) is None for __ in range(50)]
            )
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_drops_counted_not_billed(self):
        metrics = Metrics()
        net = SimulatedNetwork()
        net.set_faults(drop_probability=1.0, seed=1)
        assert net.send("a", "b", 100, metrics) is None
        link = net.link("a", "b")
        assert link.drops == 1
        assert link.bytes == 0 and link.messages == 0
        assert metrics[Metrics.MESSAGES_DROPPED] == 1
        assert metrics[Metrics.BYTES_SENT] == 0

    def test_invalid_probability_rejected(self):
        with pytest.raises(NetworkError):
            SimulatedNetwork().set_faults(drop_probability=1.5)


class TestLatency:
    def test_extra_latency_added_to_transfer_time(self):
        net = SimulatedNetwork(latency_seconds=0.001)
        base = net.transfer_time(1000)
        net.set_faults(extra_latency_seconds=0.05)
        assert net.transfer_time(1000) == pytest.approx(base + 0.05)

    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            SimulatedNetwork().set_faults(extra_latency_seconds=-1)


class TestPartitions:
    def test_partition_severs_both_directions_by_default(self):
        net = SimulatedNetwork()
        net.partition("a", "b")
        assert net.send("a", "b", 1) is None
        assert net.send("b", "a", 1) is None
        assert net.send("a", "c", 1) is not None

    def test_directed_partition(self):
        net = SimulatedNetwork()
        net.partition("a", "b", bidirectional=False)
        assert net.send("a", "b", 1) is None
        assert net.send("b", "a", 1) is not None
        assert net.is_partitioned("a", "b")
        assert not net.is_partitioned("b", "a")

    def test_heal_restores_traffic(self):
        net = SimulatedNetwork()
        net.partition("a", "b")
        net.heal("a", "b")
        assert net.send("a", "b", 1) is not None

    def test_heal_all(self):
        net = SimulatedNetwork()
        net.partition("a", "b")
        net.partition("c", "d")
        net.heal()
        assert net.send("a", "b", 1) is not None
        assert net.send("c", "d", 1) is not None


class TestServerUnderFaults:
    """A lost refresh delta must not corrupt server-side state."""

    @pytest.fixture
    def deployment(self, db):
        market = StockMarket(db, seed=21)
        market.populate(300)
        net = SimulatedNetwork()
        server = CQServer(db, net)
        client = CQClient("c1")
        server.attach(client)
        client.register("watch", WATCH, Protocol.DRA_DELTA)
        return db, market, net, server, client

    def test_partitioned_client_resyncs_after_heal(self, deployment):
        db, market, net, server, client = deployment
        applied_ts = server.subscriptions()[0].last_ts
        net.partition("server", "c1")
        market.tick(30)
        server.refresh_all()
        # The delta was lost; the zone boundary must not have advanced
        # past what the client actually holds.
        boundary = server.zones.boundary("c1:watch")
        assert boundary == applied_ts
        net.heal()
        assert server.replay("c1", "watch", boundary)
        assert client.result("watch") == db.query(WATCH)

    def test_dropped_messages_counted_in_metrics(self, deployment):
        db, market, net, server, client = deployment
        net.set_faults(drop_probability=1.0, seed=3)
        market.tick(30)
        server.refresh_all()
        assert server.metrics[Metrics.MESSAGES_DROPPED] >= 1
