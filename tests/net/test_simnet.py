"""Tests for the simulated network cost model."""

import pytest

from repro.errors import NetworkError
from repro.metrics import Metrics
from repro.net.simnet import SimulatedNetwork


class TestCostModel:
    def test_transfer_time(self):
        net = SimulatedNetwork(latency_seconds=0.01, bandwidth_bytes_per_second=1000)
        assert net.transfer_time(0) == pytest.approx(0.01)
        assert net.transfer_time(500) == pytest.approx(0.01 + 0.5)

    def test_invalid_parameters(self):
        with pytest.raises(NetworkError):
            SimulatedNetwork(latency_seconds=-1)
        with pytest.raises(NetworkError):
            SimulatedNetwork(bandwidth_bytes_per_second=0)

    def test_negative_payload_rejected(self):
        with pytest.raises(NetworkError):
            SimulatedNetwork().send("a", "b", -1)


class TestAccounting:
    def test_per_link_and_total(self):
        net = SimulatedNetwork()
        net.send("server", "c1", 100)
        net.send("server", "c1", 50)
        net.send("server", "c2", 10)
        link = net.link("server", "c1")
        assert link.bytes == 150 and link.messages == 2
        assert net.total.bytes == 160 and net.total.messages == 3

    def test_links_are_directional(self):
        net = SimulatedNetwork()
        net.send("a", "b", 5)
        assert net.link("b", "a").bytes == 0

    def test_metrics_charged(self):
        net = SimulatedNetwork()
        metrics = Metrics()
        net.send("a", "b", 42, metrics)
        assert metrics[Metrics.BYTES_SENT] == 42
        assert metrics[Metrics.MESSAGES_SENT] == 1

    def test_reset(self):
        net = SimulatedNetwork()
        net.send("a", "b", 5)
        net.reset()
        assert net.total.bytes == 0 and net.links() == {}
