"""Server-side fan-out: sql_key groups + predicate-index routing.

``CQServer(fanout=True)`` groups subscriptions by canonical SQL text;
each group owns one maintained result and one predicate-index entry,
so a refresh cycle routes the consolidated batch to affected *groups*
and evaluates once per group, not once per subscriber. These tests
cover the group lifecycle, the deregister/teardown regression (no
stale fan-out to dead subscribers), detached-member skipping, lazy
members, and probe-count sublinearity.
"""

import pytest

from repro.errors import RegistrationError
from repro.metrics import Metrics
from repro.relational.types import AttributeType
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.workload.stocks import StockMarket

WATCH = "SELECT name, price FROM stocks WHERE price > 800"
OTHER = "SELECT name, price FROM stocks WHERE price < 40"


@pytest.fixture
def deployment(db):
    market = StockMarket(db, seed=13)
    market.populate(400)
    net = SimulatedNetwork()
    metrics = Metrics()
    server = CQServer(db, net, metrics=metrics, fanout=True)
    return db, market, net, server


def attach_client(server, name, sql=WATCH, protocol=Protocol.DRA_DELTA):
    client = CQClient(name)
    server.attach(client)
    client.register("watch", sql, protocol)
    return client


class TestGroups:
    def test_same_sql_shares_one_group(self, deployment):
        db, __, __, server = deployment
        clients = [attach_client(server, f"c{i}") for i in range(5)]
        assert len(server._groups) == 1
        assert len(server.fanout_index) == 1
        # Members beyond the first reuse the group's maintained result
        # instead of re-running E_0.
        assert server.metrics[Metrics.SHARED_GROUPS] == 1
        assert server.metrics[Metrics.SHARED_GROUP_HITS] >= 4
        for client in clients:
            assert client.result("watch") == db.query(WATCH)

    def test_distinct_sql_distinct_groups(self, deployment):
        __, __, __, server = deployment
        attach_client(server, "a", WATCH)
        attach_client(server, "b", OTHER)
        assert len(server._groups) == 2
        assert len(server.fanout_index) == 2

    def test_group_members_converge(self, deployment):
        db, market, __, server = deployment
        clients = [attach_client(server, f"c{i}") for i in range(4)]
        clients.append(attach_client(server, "lazy", WATCH, Protocol.DRA_LAZY))
        clients.append(attach_client(server, "rv", WATCH, Protocol.REEVAL_DELTA))
        for __ in range(4):
            market.tick(30, p_insert=0.1, p_delete=0.1)
            server.refresh_all()
        clients[4].fetch("watch")
        for client in clients:
            assert client.result("watch") == db.query(WATCH)

    def test_group_evaluates_once_per_cycle(self, deployment):
        db, market, __, server = deployment
        for i in range(6):
            attach_client(server, f"c{i}")
        market.tick(40, p_insert=0.2)
        before = server.metrics.snapshot()
        server.refresh_all()
        spent = server.metrics.diff(before)
        # One evaluation for six members: five group hits per cycle.
        assert spent.get(Metrics.SHARED_GROUP_HITS, 0) == 5

    def test_registration_after_changes_sees_current_state(self, deployment):
        db, market, __, server = deployment
        attach_client(server, "first")
        market.tick(50, p_insert=0.2, p_delete=0.1)
        late = attach_client(server, "late")
        assert late.result("watch") == db.query(WATCH)


class TestTeardown:
    def test_deregister_leaves_group_then_drops_it(self, deployment):
        __, __, __, server = deployment
        attach_client(server, "a")
        attach_client(server, "b")
        server.deregister("a", "watch")
        assert len(server._groups) == 1
        assert "a" not in {
            s.client_id for s in server.subscriptions()
        }
        server.deregister("b", "watch")
        assert server._groups == {}
        assert len(server.fanout_index) == 0

    def test_no_fanout_to_deregistered_subscriber(self, deployment):
        """Regression: a dead subscriber must not receive (or break)
        later refreshes once its group entry is gone."""
        db, market, net, server = deployment
        kept = attach_client(server, "kept")
        gone = attach_client(server, "gone")
        server.deregister("gone", "watch")
        before = net.link("server", "gone").messages
        for __ in range(3):
            market.tick(30, p_insert=0.2)
            server.refresh_all()
        assert net.link("server", "gone").messages == before
        assert kept.result("watch") == db.query(WATCH)

    def test_deregister_unknown_still_raises(self, deployment):
        __, __, __, server = deployment
        with pytest.raises(RegistrationError):
            server.deregister("nobody", "watch")

    def test_detached_member_skipped_not_raised(self, deployment):
        """A group fan-out over a detached client's subscription skips
        the delivery instead of raising NetworkError; the attached
        members still converge and the detached subscription survives
        for reconnect."""
        db, market, __, server = deployment
        kept = attach_client(server, "kept")
        attach_client(server, "away")
        server.detach("away")
        for __ in range(3):
            market.tick(30, p_insert=0.2, p_delete=0.1)
            server.refresh_all()  # must not raise
        assert kept.result("watch") == db.query(WATCH)
        assert len(server.subscriptions_for("away")) == 1


class TestRouting:
    def test_unaffected_groups_skip_evaluation(self, db):
        """Updates touching only one template's slice leave the other
        groups unrouted: no evaluation, no messages."""
        db.create_table(
            "stocks",
            [("name", AttributeType.STR), ("price", AttributeType.INT)],
        )
        table = db.table("stocks")
        with db.begin() as txn:
            for i in range(50):
                txn.insert_into(table, (f"s{i}", i * 10))
        net = SimulatedNetwork()
        server = CQServer(db, net, metrics=Metrics(), fanout=True)
        low = CQClient("low")
        server.attach(low)
        low.register("watch", "SELECT name FROM stocks WHERE price < 100")
        high = CQClient("high")
        server.attach(high)
        high.register("watch", "SELECT name FROM stocks WHERE price > 10000")
        before_high = net.link("server", "high").messages
        with db.begin() as txn:
            txn.insert_into(db.table("stocks"), ("tiny", 5))
        server.refresh_all()
        assert net.link("server", "high").messages == before_high
        assert low.result("watch") == db.query(
            "SELECT name FROM stocks WHERE price < 100"
        )

    def test_probe_count_sublinear_in_subscribers(self, db):
        """200 equality templates, one touched row: routed probes stay
        near-constant instead of scaling with the subscriber count."""
        db.create_table(
            "stocks",
            [("name", AttributeType.STR), ("price", AttributeType.INT)],
        )
        table = db.table("stocks")
        with db.begin() as txn:
            for i in range(200):
                txn.insert_into(table, (f"s{i}", i))
        net = SimulatedNetwork()
        metrics = Metrics()
        server = CQServer(db, net, metrics=metrics, fanout=True)
        clients = []
        for i in range(200):
            client = CQClient(f"c{i}")
            server.attach(client)
            client.register(
                "watch", f"SELECT name FROM stocks WHERE price = {i}"
            )
            clients.append(client)
        with db.begin() as txn:
            txn.insert_into(db.table("stocks"), ("hit", 7))
        before = metrics.snapshot()
        server.refresh_all()
        spent = metrics.diff(before)
        assert spent.get(Metrics.PREDINDEX_MATCHES, 0) == 1
        # Two sides per entry at most; nowhere near 200 plan probes.
        assert spent.get(Metrics.PREDINDEX_PROBES, 0) <= 10
        assert clients[7].result("watch") == db.query(
            "SELECT name FROM stocks WHERE price = 7"
        )


class TestEquivalence:
    def test_fanout_matches_plain_server(self):
        """The same scripted workload through a fan-out server and a
        plain per-subscription server produces identical client
        states."""
        from repro import Database

        results = {}
        for fanout in (False, True):
            db = Database()
            market = StockMarket(db, seed=99)
            market.populate(300)
            server = CQServer(
                db, SimulatedNetwork(), metrics=Metrics(), fanout=fanout
            )
            clients = [
                attach_client(server, f"c{i}", WATCH) for i in range(3)
            ]
            clients.append(attach_client(server, "o", OTHER))
            for __ in range(5):
                market.tick(25, p_insert=0.15, p_delete=0.1)
                server.refresh_all()
            results[fanout] = [
                sorted(row.values for row in client.result("watch"))
                for client in clients
            ]
        assert results[False] == results[True]
