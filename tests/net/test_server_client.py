"""Tests for the client-server CQ protocols (paper Section 5.1)."""

import pytest

from repro.errors import NetworkError, RegistrationError
from repro.net.client import CQClient
from repro.net.messages import DeltaMessage, FullResultMessage, InitialResultMessage
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.workload.stocks import StockMarket

WATCH = "SELECT name, price FROM stocks WHERE price > 800"


@pytest.fixture
def deployment(db):
    market = StockMarket(db, seed=13)
    market.populate(500)
    net = SimulatedNetwork()
    server = CQServer(db, net)
    return db, market, net, server


def attach_client(server, name, protocol):
    client = CQClient(name)
    server.attach(client)
    client.register("watch", WATCH, protocol)
    return client


class TestRegistration:
    def test_initial_result_shipped(self, deployment):
        db, market, net, server = deployment
        client = attach_client(server, "c1", Protocol.DRA_DELTA)
        assert client.result("watch") == db.query(WATCH)
        assert isinstance(client.history()[0], InitialResultMessage)
        assert net.link("server", "c1").messages == 1

    def test_duplicate_registration_rejected(self, deployment):
        __, __, __, server = deployment
        client = attach_client(server, "c1", Protocol.DRA_DELTA)
        with pytest.raises(RegistrationError):
            client.register("watch", WATCH)

    def test_unattached_client_cannot_register(self):
        client = CQClient("lonely")
        with pytest.raises(NetworkError):
            client.register("watch", WATCH)

    def test_aggregate_queries_rejected(self, deployment):
        __, __, __, server = deployment
        client = CQClient("c1")
        server.attach(client)
        with pytest.raises(RegistrationError):
            client.register("agg", "SELECT SUM(price) AS t FROM stocks")


class TestRefreshProtocols:
    @pytest.mark.parametrize(
        "protocol",
        [Protocol.DRA_DELTA, Protocol.REEVAL_DELTA, Protocol.REEVAL_FULL],
    )
    def test_client_converges_to_truth(self, deployment, protocol):
        db, market, __, server = deployment
        client = attach_client(server, "c1", protocol)
        for __ in range(4):
            market.tick(30, p_insert=0.1, p_delete=0.1)
            server.refresh_all()
        assert client.result("watch") == db.query(WATCH)

    def test_delta_protocols_skip_no_change(self, deployment):
        db, market, net, server = deployment
        dra = attach_client(server, "dra", Protocol.DRA_DELTA)
        full = attach_client(server, "full", Protocol.REEVAL_FULL)
        before_dra = net.link("server", "dra").messages
        before_full = net.link("server", "full").messages
        server.refresh_all()  # nothing changed
        assert net.link("server", "dra").messages == before_dra
        assert net.link("server", "full").messages == before_full + 1

    def test_dra_ships_fewer_bytes_than_full(self, deployment):
        db, market, net, server = deployment
        attach_client(server, "dra", Protocol.DRA_DELTA)
        attach_client(server, "full", Protocol.REEVAL_FULL)
        for __ in range(5):
            market.tick(10)
            server.refresh_all()
        dra_bytes = net.link("server", "dra").bytes
        full_bytes = net.link("server", "full").bytes
        assert dra_bytes < full_bytes

    def test_message_kinds_per_protocol(self, deployment):
        db, market, __, server = deployment
        dra = attach_client(server, "dra", Protocol.DRA_DELTA)
        reeval = attach_client(server, "rv", Protocol.REEVAL_DELTA)
        full = attach_client(server, "full", Protocol.REEVAL_FULL)
        market.tick(50)
        server.refresh_all()
        assert isinstance(dra.history()[-1], DeltaMessage)
        assert isinstance(reeval.history()[-1], DeltaMessage)
        assert isinstance(full.history()[-1], FullResultMessage)

    def test_dra_avoids_base_scans_on_refresh(self, deployment):
        from repro.metrics import Metrics

        db, market, __, server = deployment
        attach_client(server, "dra", Protocol.DRA_DELTA)
        market.tick(5)
        server.metrics.reset()
        server.refresh_all()
        assert server.metrics[Metrics.ROWS_SCANNED] == 0

    def test_reeval_scans_base_each_refresh(self, deployment):
        from repro.metrics import Metrics

        db, market, __, server = deployment
        attach_client(server, "rv", Protocol.REEVAL_DELTA)
        market.tick(5)
        server.metrics.reset()
        server.refresh_all()
        assert server.metrics[Metrics.ROWS_SCANNED] >= 500


class TestClientErrors:
    def test_delta_for_unknown_cq_counted_not_fatal(self):
        from repro.delta.differential import DeltaRelation
        from repro.relational.schema import Schema
        from repro.relational.types import AttributeType

        client = CQClient("c")
        schema = Schema.of(("x", AttributeType.INT))
        client.receive(DeltaMessage("ghost", DeltaRelation(schema), 1))
        assert client.stale_deltas == 1

    def test_delta_for_unknown_cq_triggers_resync(self, deployment):
        db, market, __, server = deployment
        client = attach_client(server, "c1", Protocol.DRA_DELTA)
        client.forget("watch")
        # A refresh delta now races the client's state loss: the client
        # asks for a full copy instead of erroring out.
        market.tick(5)
        server.refresh_all()
        assert client.stale_deltas >= 1
        assert server.metrics["resyncs"] >= 1
        assert client.result("watch") == db.query(WATCH)

    def test_unknown_result_lookup(self):
        with pytest.raises(NetworkError):
            CQClient("c").result("nope")
