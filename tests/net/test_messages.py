"""Tests for message size accounting."""

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.net.messages import (
    ROW_OVERHEAD_BYTES,
    DeltaMessage,
    FullResultMessage,
    InitialResultMessage,
    RegisterMessage,
    delta_wire_size,
    relation_wire_size,
)

SCHEMA = Schema.of(("name", AttributeType.STR), ("price", AttributeType.INT))


def relation(n):
    return Relation.from_pairs(SCHEMA, [(i, ("AAA", 100 + i)) for i in range(n)])


class TestSizes:
    def test_relation_size_scales_with_rows(self):
        one = relation_wire_size(relation(1))
        ten = relation_wire_size(relation(10))
        assert ten == 10 * one

    def test_relation_row_size_components(self):
        # "AAA" = 4+3 bytes, price int = 8 bytes, overhead 12.
        assert relation_wire_size(relation(1)) == ROW_OVERHEAD_BYTES + 7 + 8

    def test_delta_insert_cheaper_than_modify(self):
        insert = DeltaRelation(
            SCHEMA, [DeltaEntry(1, None, ("AAA", 1), 1)]
        )
        modify = DeltaRelation(
            SCHEMA, [DeltaEntry(1, ("AAA", 1), ("AAA", 2), 1)]
        )
        assert delta_wire_size(modify) > delta_wire_size(insert)

    def test_empty_delta_costs_nothing(self):
        assert delta_wire_size(DeltaRelation(SCHEMA)) == 0


class TestMessages:
    def test_register_size_includes_sql(self):
        short = RegisterMessage("q", "SELECT * FROM t")
        long = RegisterMessage("q", "SELECT * FROM t WHERE x > 1 AND y < 2")
        assert long.wire_size() > short.wire_size()

    def test_wire_size_is_measured_frame_size(self):
        from repro.net.codec import encode_frame

        rel = relation(3)
        initial = InitialResultMessage("q", rel, ts=1)
        full = FullResultMessage("q", rel, ts=1)
        assert initial.wire_size() == len(encode_frame(initial))
        assert full.wire_size() == len(encode_frame(full))
        # Both carry the same payload; only the type tag differs.
        assert abs(initial.wire_size() - full.wire_size()) < 8

    def test_result_messages_scale_with_rows(self):
        small = InitialResultMessage("q", relation(2), ts=1)
        large = InitialResultMessage("q", relation(50), ts=1)
        assert large.wire_size() > small.wire_size()

    def test_delta_message_smaller_than_full_for_small_changes(self):
        rel = relation(100)
        delta = DeltaRelation(SCHEMA, [DeltaEntry(1, None, ("AAA", 1), 1)])
        assert (
            DeltaMessage("q", delta, ts=1).wire_size()
            < FullResultMessage("q", rel, ts=1).wire_size()
        )
