"""Tests for the asyncio CQ service and client sessions (real sockets).

No pytest-asyncio in the environment: each test is a plain function
running its coroutine with ``asyncio.run``.
"""

import asyncio

import pytest

from repro.metrics import Metrics
from repro.net.client import CQSession
from repro.net.messages import HeartbeatMessage, HelloAckMessage, HelloMessage
from repro.net.server import Protocol
from repro.net.service import CQService
from repro.net.transport import TcpTransport
from repro.storage.database import Database
from repro.workload.stocks import StockMarket

WATCH = "SELECT name, price FROM stocks WHERE price > 800"


def build_market(rows=200, seed=13):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(rows)
    return db, market


async def start_service(db, **kwargs):
    service = CQService(db, **kwargs)
    addr = await service.start()
    return service, addr


class TestPushProtocol:
    def test_register_ships_initial_result(self):
        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db)
            session = CQSession("c1", *addr)
            await session.connect()
            result = await session.register("watch", WATCH)
            assert result == db.query(WATCH)
            await session.close()
            await service.stop()

        asyncio.run(scenario())

    def test_refresh_pushes_delta_over_socket(self):
        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db)
            session = CQSession("c1", *addr)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(50)
            await service.refresh()
            await session.wait_applied("watch", db.now())
            assert session.result("watch") == db.query(WATCH)
            assert session.deltas_applied >= 1
            assert session.full_results == 0
            assert service.metrics[Metrics.BYTES_ENCODED] > 0
            await session.close()
            await service.stop()

        asyncio.run(scenario())

    def test_lazy_protocol_over_socket(self):
        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db)
            session = CQSession("c1", *addr)  # auto_fetch on by default
            await session.connect()
            await session.register("watch", WATCH, Protocol.DRA_LAZY)
            market.tick(50)
            await service.refresh()
            await session.wait_applied("watch", db.now())
            assert session.lazy_notices >= 1
            assert session.result("watch") == db.query(WATCH)
            await session.close()
            await service.stop()

        asyncio.run(scenario())

    def test_stale_delta_triggers_resync_full_result(self):
        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db)
            session = CQSession("c1", *addr)
            await session.connect()
            await session.register("watch", WATCH)
            # Simulate client-side state loss: the next delta cannot
            # apply, so the session must request a full copy.
            session._results.pop("watch")
            market.tick(50)
            await service.refresh()
            await session.wait_applied("watch", db.now())
            assert session.stale_deltas >= 1
            assert session.full_results >= 1
            assert service.metrics[Metrics.RESYNCS] >= 1
            assert session.result("watch") == db.query(WATCH)
            await session.close()
            await service.stop()

        asyncio.run(scenario())


class TestHeartbeats:
    def test_heartbeat_acks_advance_zone(self):
        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db, heartbeat_interval=0.02)
            session = CQSession("c1", *addr)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(50)
            await service.refresh()
            await session.wait_applied("watch", db.now())
            applied = session.applied["watch"]
            for __ in range(50):
                if service.server.zones.boundary("c1:watch") == applied:
                    break
                await asyncio.sleep(0.02)
            assert service.server.zones.boundary("c1:watch") == applied
            assert session.heartbeats >= 1
            await session.close()
            await service.stop()

        asyncio.run(scenario())

    def test_mute_client_evicted_after_missed_heartbeats(self):
        async def scenario():
            db, __ = build_market(rows=20)
            service, addr = await start_service(
                db, heartbeat_interval=0.02, miss_limit=1
            )
            transport = TcpTransport()
            conn = await transport.connect(*addr)
            await conn.send(HelloMessage("mute", {}))
            ack = await conn.recv()
            assert isinstance(ack, HelloAckMessage)
            # Never ack a heartbeat: the server must cut us off.
            while True:
                message = await conn.recv()
                if message is None:
                    break
            assert service.metrics[Metrics.HEARTBEATS_MISSED] >= 1
            for __ in range(50):
                if "mute" not in service.sessions():
                    break
                await asyncio.sleep(0.02)
            assert "mute" not in service.sessions()
            await service.stop()

        asyncio.run(scenario())

    def test_idle_timeout_evicts_silent_connection(self):
        async def scenario():
            db, __ = build_market(rows=20)
            service, addr = await start_service(
                db,
                heartbeat_interval=0.02,
                miss_limit=100,
                idle_timeout=0.05,
            )
            transport = TcpTransport()
            conn = await transport.connect(*addr)
            await conn.send(HelloMessage("quiet", {}))
            await conn.recv()
            while True:
                message = await conn.recv()
                if message is None:
                    break
            assert "quiet" not in service.sessions()
            await service.stop()

        asyncio.run(scenario())


class TestBackpressure:
    def test_backlogged_session_degrades_to_lazy_and_recovers(self):
        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db, queue_limit=4)
            session = CQSession("c1", *addr, auto_fetch=False)
            await session.connect()
            await session.register("watch", WATCH)
            (sub,) = service.server.subscriptions_for("c1")
            server_session = service.sessions()["c1"]
            # Simulate a consumer that cannot keep up: stuff the outbox
            # past the limit (no await between, so the writer can't
            # drain mid-setup) and run a refresh cycle.
            for __ in range(service.queue_limit):
                server_session.outbox.append(HeartbeatMessage(db.now()))
            market.tick(50)
            await service.refresh()
            assert sub.protocol is Protocol.DRA_LAZY
            assert service.metrics[Metrics.BACKPRESSURE_DEGRADES] == 1
            # While degraded, the refresh accumulated server-side; the
            # client got a notice, not the delta.
            assert sub.pending_delta is not None
            # Let the queue drain, then the next cycle restores the
            # push protocol and ships the consolidated delta.
            await asyncio.sleep(0.05)
            market.tick(10)
            await service.refresh()
            assert sub.protocol is Protocol.DRA_DELTA
            await session.wait_applied("watch", db.now())
            assert session.result("watch") == db.query(WATCH)
            assert session.full_results == 0
            await session.close()
            await service.stop()

        asyncio.run(scenario())


    def test_restore_races_fresh_degrade_in_same_cycle(self):
        """One backpressure pass can restore a drained session while it
        degrades a freshly backlogged one; each subscription is counted
        once and both converge."""

        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db, queue_limit=4)
            fast = CQSession("fast", *addr, auto_fetch=False)
            slow = CQSession("slow", *addr, auto_fetch=False)
            await fast.connect()
            await slow.connect()
            await fast.register("watch", WATCH)
            await slow.register("watch", WATCH)
            (fast_sub,) = service.server.subscriptions_for("fast")
            (slow_sub,) = service.server.subscriptions_for("slow")

            # Cycle 1: only `fast` is backlogged — it degrades.
            for __ in range(service.queue_limit):
                service.sessions()["fast"].outbox.append(
                    HeartbeatMessage(db.now())
                )
            market.tick(50)
            await service.refresh()
            assert fast_sub.protocol is Protocol.DRA_LAZY
            assert slow_sub.protocol is Protocol.DRA_DELTA
            assert service.metrics[Metrics.BACKPRESSURE_DEGRADES] == 1

            # Let `fast` drain, then stuff `slow` with no await in
            # between: cycle 2 sees a restorable session and a freshly
            # backlogged one in the same _apply_backpressure pass.
            await asyncio.sleep(0.05)
            for __ in range(service.queue_limit):
                service.sessions()["slow"].outbox.append(
                    HeartbeatMessage(db.now())
                )
            market.tick(10)
            await service.refresh()
            assert fast_sub.protocol is Protocol.DRA_DELTA
            assert slow_sub.protocol is Protocol.DRA_LAZY
            assert service.sessions()["fast"].degraded == set()
            assert service.sessions()["slow"].degraded == {"watch"}
            # Exactly one degrade per subscription — the second cycle
            # must not re-count fast's restored sub or double-count
            # slow's already-lazy one on later cycles.
            market.tick(10)
            await service.refresh()
            assert service.metrics[Metrics.BACKPRESSURE_DEGRADES] == 2

            # Both drain and converge on the live result.
            await asyncio.sleep(0.05)
            market.tick(10)
            await service.refresh()
            assert fast_sub.protocol is Protocol.DRA_DELTA
            assert slow_sub.protocol is Protocol.DRA_DELTA
            for client in (fast, slow):
                await client.wait_applied("watch", db.now())
                assert client.result("watch") == db.query(WATCH)
            await fast.close()
            await slow.close()
            await service.stop()

        asyncio.run(scenario())

    def test_disconnect_while_degraded_restores_subscription(self):
        """A session dropping mid-degrade must not park its retained
        subscription on DRA_LAZY: a reconnecting client starts a fresh
        (empty) degraded set, so nothing would ever restore it."""

        async def scenario():
            db, market = build_market()
            service, addr = await start_service(db, queue_limit=4)
            session = CQSession("c1", *addr, auto_fetch=False)
            await session.connect()
            await session.register("watch", WATCH)
            (sub,) = service.server.subscriptions_for("c1")
            for __ in range(service.queue_limit):
                service.sessions()["c1"].outbox.append(
                    HeartbeatMessage(db.now())
                )
            market.tick(50)
            await service.refresh()
            assert sub.protocol is Protocol.DRA_LAZY
            assert sub.pending_delta is not None

            # Drop the connection while degraded.
            await session.close()
            for __ in range(50):
                if "c1" not in service.sessions():
                    break
                await asyncio.sleep(0.02)
            assert "c1" not in service.sessions()
            # The retained subscription resumed the push protocol, the
            # accumulated delta was folded into the retained result
            # (not lost, not left pending), and the zone is released.
            assert sub.protocol is Protocol.DRA_DELTA
            assert sub.pending_delta is None
            assert sub.previous_result == db.query(WATCH)
            assert "c1:watch" not in service.server.zones.boundaries()

            # A reconnect resumes cleanly and keeps receiving deltas.
            session2 = CQSession("c1", *addr, auto_fetch=False)
            await session2.connect()
            await session2.register("watch", WATCH)
            market.tick(10)
            await service.refresh()
            await session2.wait_applied("watch", db.now())
            assert session2.result("watch") == db.query(WATCH)
            assert service.metrics[Metrics.BACKPRESSURE_DEGRADES] == 1
            await session2.close()
            await service.stop()

        asyncio.run(scenario())


class TestStats:
    def test_stats_reply_round_trips_over_live_socket(self, tmp_path):
        async def scenario():
            db, market = build_market(rows=50)
            service, addr = await start_service(
                db, durability=str(tmp_path / "service.wal")
            )
            session = CQSession("c1", *addr)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(20)
            await service.refresh()
            await session.wait_applied("watch", db.now())

            stats = await session.stats()
            counters = stats["counters"]
            # Ops-critical counters are always present, even at zero.
            for key in (
                Metrics.WAL_APPENDS,
                Metrics.WAL_RECOVERED,
                Metrics.DIGEST_MISMATCHES,
                Metrics.BACKPRESSURE_DEGRADES,
                Metrics.BYTES_ENCODED,
                Metrics.RECONNECTS,
                Metrics.RESYNCS,
            ):
                assert key in counters
            assert counters[Metrics.WAL_APPENDS] > 0
            assert counters[Metrics.BYTES_ENCODED] > 0
            assert counters[Metrics.DIGEST_MISMATCHES] == 0

            assert stats["server"] == "server"
            (sess,) = stats["sessions"]
            assert sess["client"] == "c1"
            assert sess["degraded"] == []
            assert "c1:watch" in stats["zones"]
            (sub_row,) = stats["subscriptions"]
            assert sub_row["cq"] == "watch"
            assert sub_row["bytes_sent"] > 0
            assert "watch" in stats["per_cq"]
            await session.close()
            await service.stop()

        asyncio.run(scenario())

    def test_prometheus_exposition_parses(self):
        async def scenario():
            db, market = build_market(rows=50)
            service, addr = await start_service(db)
            session = CQSession("c1", *addr)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(20)
            await service.refresh()
            from repro.obs import counter_value, parse_prometheus_text

            parsed = parse_prometheus_text(service.prometheus())
            assert counter_value(parsed, "repro_bytes_encoded") > 0
            await session.close()
            await service.stop()

        asyncio.run(scenario())


class TestLifecycle:
    def test_evict_cuts_connection(self):
        async def scenario():
            db, __ = build_market(rows=20)
            service, addr = await start_service(db)
            session = CQSession("c1", *addr, max_attempts=1)
            await session.connect()
            assert service.evict("c1")
            for __ in range(50):
                if not session.connected:
                    break
                await asyncio.sleep(0.02)
            await session.close()
            await service.stop()

        asyncio.run(scenario())

    def test_second_connection_replaces_first(self):
        async def scenario():
            db, __ = build_market(rows=20)
            service, addr = await start_service(db)
            first = CQSession("c1", *addr)
            await first.connect()
            second = CQSession("c1", *addr)
            await second.connect()
            for __ in range(50):
                if service.sessions().get("c1") is not None:
                    break
                await asyncio.sleep(0.02)
            assert service.metrics[Metrics.RECONNECTS] >= 1
            await first.close()
            await second.close()
            await service.stop()

        asyncio.run(scenario())

    def test_status_report_lists_connection_counters(self):
        async def scenario():
            db, __ = build_market(rows=20)
            service, addr = await start_service(db)
            session = CQSession("c1", *addr)
            await session.connect()
            await session.register("watch", WATCH)
            report = service.status_report()
            for needle in (
                "reconnects=",
                "heartbeats_missed=",
                "replay_fallbacks=",
                "bytes_encoded=",
                "backpressure_degrades=",
                "watch",
            ):
                assert needle in report
            await session.close()
            await service.stop()

        asyncio.run(scenario())
