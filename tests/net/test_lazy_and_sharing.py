"""Tests for the lazy-transmission protocol and shared evaluation."""

import pytest

from repro import Database
from repro.errors import RegistrationError
from repro.metrics import Metrics
from repro.net.client import CQClient
from repro.net.messages import DeltaAvailableMessage, DeltaMessage
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 500"


def deployment(share=False, seed=44):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(500)
    net = SimulatedNetwork()
    server = CQServer(db, net, share_evaluation=share)
    return db, market, net, server


def attach(server, name, protocol):
    client = CQClient(name)
    server.attach(client)
    client.register("watch", WATCH, protocol)
    return client


class TestLazyProtocol:
    def test_notice_then_fetch(self):
        db, market, net, server = deployment()
        client = attach(server, "lazy", Protocol.DRA_LAZY)
        market.tick(30)
        server.refresh_all()
        notice = client.pending_notice("watch")
        assert isinstance(notice, DeltaAvailableMessage)
        assert notice.entry_count > 0
        # The cached result is stale until the client pulls.
        assert client.result("watch") != db.query(WATCH)
        assert client.fetch("watch")
        assert client.pending_notice("watch") is None
        assert client.result("watch") == db.query(WATCH)

    def test_notice_is_tiny(self):
        db, market, net, server = deployment()
        client = attach(server, "lazy", Protocol.DRA_LAZY)
        market.tick(100)
        before = net.link("server", "lazy").bytes
        server.refresh_all()
        notice_bytes = net.link("server", "lazy").bytes - before
        assert notice_bytes <= 80  # envelope + two counters

    def test_pending_composes_across_refreshes(self):
        """Repeatedly modified tuples net out server-side before any
        bytes are shipped — the consolidation advantage of laziness."""
        db, market, net, server = deployment()
        lazy = attach(server, "lazy", Protocol.DRA_LAZY)
        eager = attach(server, "eager", Protocol.DRA_DELTA)
        # The same ten rows churn over several refresh cycles: the
        # eager protocol ships every intermediate state, the lazy one
        # ships each tuple's net change once.
        hot_tids = [row.tid for row in market.stocks.rows()][:10]
        for cycle in range(6):
            with db.begin() as txn:
                for i, tid in enumerate(hot_tids):
                    txn.modify_in(
                        market.stocks, tid, updates={"price": 600 + 10 * cycle + i}
                    )
            server.refresh_all()
        lazy.fetch("watch")
        truth = db.query(WATCH)
        assert lazy.result("watch") == truth
        assert eager.result("watch") == truth
        lazy_bytes = net.link("server", "lazy").bytes
        eager_bytes = net.link("server", "eager").bytes
        assert lazy_bytes < eager_bytes

    def test_fetch_with_nothing_pending(self):
        db, market, net, server = deployment()
        client = attach(server, "lazy", Protocol.DRA_LAZY)
        assert not client.fetch("watch")

    def test_fetch_unknown_subscription(self):
        db, market, net, server = deployment()
        client = attach(server, "lazy", Protocol.DRA_LAZY)
        from repro.net.messages import FetchMessage

        with pytest.raises(RegistrationError):
            server.handle_fetch("lazy", FetchMessage("nope"))

    def test_pending_that_nets_to_zero_clears(self):
        db, market, net, server = deployment()
        client = attach(server, "lazy", Protocol.DRA_LAZY)
        tid = market.stocks.insert((9999, "TMP", 900))
        server.refresh_all()
        market.stocks.delete(tid)
        server.refresh_all()
        # Insert then delete net to nothing: nothing left to fetch.
        assert not client.fetch("watch")
        assert client.result("watch") == db.query(WATCH)


class TestSharedEvaluation:
    def test_results_identical_with_sharing(self):
        db, market, net, server = deployment(share=True)
        clients = [attach(server, f"c{i}", Protocol.DRA_DELTA) for i in range(5)]
        for __ in range(3):
            market.tick(20)
            server.refresh_all()
        truth = db.query(WATCH)
        for client in clients:
            assert client.result("watch") == truth

    def test_sharing_computes_once(self):
        work = {}
        for share in (False, True):
            db, market, net, server = deployment(share=share, seed=45)
            for i in range(16):
                attach(server, f"c{i}", Protocol.DRA_DELTA)
            market.tick(20)
            server.metrics.reset()
            server.refresh_all()
            work[share] = server.metrics[Metrics.DELTA_ROWS_READ]
        assert work[True] * 8 <= work[False]

    def test_sharing_respects_windows(self):
        """A client registered mid-stream gets its own first window."""
        db, market, net, server = deployment(share=True)
        first = attach(server, "first", Protocol.DRA_DELTA)
        market.tick(20)
        server.refresh_all()
        late = attach(server, "late", Protocol.DRA_DELTA)
        market.tick(20)
        server.refresh_all()
        truth = db.query(WATCH)
        assert first.result("watch") == truth
        assert late.result("watch") == truth
