"""Round-trip tests for the length-prefixed wire codec.

Every message type in the protocol must encode and decode without
loss — including relations with nested (join-provenance) tids and
deltas mixing inserts, deletes, and modifies.
"""

import pytest

from repro.errors import CodecError, NetworkError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.net.codec import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_payload,
    encode_frame,
    encode_payload,
    encoded_size,
)
from repro.net.messages import (
    DeltaAvailableMessage,
    DeltaMessage,
    FetchMessage,
    FullResultMessage,
    GatherReplyMessage,
    HeartbeatAckMessage,
    HeartbeatMessage,
    HelloAckMessage,
    HelloMessage,
    InitialResultMessage,
    Message,
    RegisterMessage,
    ResyncMessage,
    ScatterMessage,
    ShardDrainMessage,
    ShardHeartbeatMessage,
    ShardHelloMessage,
    ShardPromoteMessage,
    StatsMessage,
    StatsReplyMessage,
)

SCHEMA = Schema.of(
    ("name", AttributeType.STR),
    ("price", AttributeType.INT),
    ("ratio", AttributeType.FLOAT),
    ("hot", AttributeType.BOOL),
)


def sample_relation():
    rel = Relation(SCHEMA)
    rel.add(1, ("AAA", 100, 1.5, True))
    rel.add(7, ("BBB", 200, 0.25, False))
    # Join rows carry nested tuple tids (provenance of the operands).
    rel.add((3, (4, 5)), ("CCC", 300, 2.0, True))
    return rel


def sample_delta():
    return DeltaRelation(
        SCHEMA,
        [
            DeltaEntry(1, None, ("AAA", 100, 1.5, True), 3),
            DeltaEntry(2, ("BBB", 200, 0.5, False), None, 3),
            DeltaEntry((9, 2), ("CCC", 1, 0.0, False), ("CCC", 2, 0.0, False), 4),
        ],
    )


def roundtrip(message: Message) -> Message:
    return decode_payload(encode_payload(message))


EVERY_MESSAGE = [
    RegisterMessage("watch", "SELECT name FROM stocks WHERE price > 10"),
    RegisterMessage("watch", "SELECT * FROM t", protocol="dra_lazy"),
    InitialResultMessage("watch", sample_relation(), ts=5),
    FullResultMessage("watch", sample_relation(), ts=6),
    DeltaMessage("watch", sample_delta(), ts=7),
    # Digest-stamped variants: the self-verification digest must
    # survive the wire (older peers simply leave it None).
    InitialResultMessage("watch", sample_relation(), 5, "3:00deadbeef001234"),
    FullResultMessage("watch", sample_relation(), 6, "3:00deadbeef001234"),
    DeltaMessage("watch", sample_delta(), 7, "2:00deadbeef005678"),
    DeltaAvailableMessage("watch", ts=8, entry_count=12, pending_bytes=456),
    FetchMessage("watch"),
    ResyncMessage("watch"),
    HelloMessage("client-1", {"watch": 4, "other": 9}),
    HelloAckMessage("server", 10, resumed=["watch"], unknown=["other"]),
    HeartbeatMessage(11),
    HeartbeatAckMessage(11, {"watch": 10}),
    StatsMessage(),
    StatsReplyMessage(
        {"server": "s", "counters": {"wal_appends": 3}, "zones": {"c:watch": 4}}
    ),
    # Cluster control/data plane (deep coverage in tests/cluster).
    ShardHelloMessage(
        2,
        9,
        tables=["stocks"],
        subscriptions=["SELECT ..."],
        groups={2: {"horizon": 9, "subs": ["SELECT ..."]}},
    ),
    ScatterMessage(
        1,
        4,
        12,
        deltas={"stocks": sample_delta()},
        baselines={"stocks": sample_relation()},
        subscribe=[{"cq": "k", "sql": "SELECT name FROM stocks"}],
        unsubscribe=["old-key"],
        collect=True,
        group=2,
    ),
    GatherReplyMessage(
        1, 4, 12, 11, entries=[("k", sample_delta(), 12)],
        counters={"executions": 3}, group=2,
    ),
    ShardHeartbeatMessage(0, 5, 13, collect=True, group=1),
    ShardPromoteMessage(
        2, 0, 6, 14,
        subscribe=[{"cq": "k", "sql": "SELECT name FROM stocks"}],
    ),
    ShardDrainMessage(2, 7, 15, group=0),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", EVERY_MESSAGE, ids=lambda m: type(m).__name__
    )
    def test_roundtrip_preserves_fields(self, message):
        decoded = roundtrip(message)
        assert type(decoded) is type(message)
        for attr, value in vars(message).items():
            assert getattr(decoded, attr) == value, attr

    def test_every_message_type_is_covered(self):
        from repro.net.codec import _FROM_JSON, _TO_JSON

        covered = {type(m) for m in EVERY_MESSAGE}
        assert covered == set(_TO_JSON)
        assert {tag for tag, __ in _TO_JSON.values()} == set(_FROM_JSON)

    def test_relation_tids_and_values_survive(self):
        decoded = roundtrip(InitialResultMessage("q", sample_relation(), 1))
        original = sample_relation()
        assert decoded.result == original
        assert {row.tid for row in decoded.result} == {
            row.tid for row in original
        }

    def test_delta_entries_survive(self):
        decoded = roundtrip(DeltaMessage("q", sample_delta(), 1))
        assert decoded.delta == sample_delta()
        kinds = sorted(str(e.kind) for e in decoded.delta)
        assert len(kinds) == 3

    def test_wire_size_matches_frame_length(self):
        for message in EVERY_MESSAGE:
            assert message.wire_size() == len(encode_frame(message))
            assert message.wire_size() == encoded_size(message)


class TestFraming:
    def test_frame_is_length_prefixed(self):
        frame = encode_frame(FetchMessage("q"))
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4

    def test_decoder_reassembles_byte_by_byte(self):
        messages = [FetchMessage("a"), HeartbeatMessage(3), ResyncMessage("b")]
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert [type(m) for m in out] == [type(m) for m in messages]
        assert decoder.pending_bytes() == 0

    def test_decoder_handles_multiple_frames_per_chunk(self):
        messages = [HeartbeatMessage(i) for i in range(5)]
        stream = b"".join(encode_frame(m) for m in messages)
        out = FrameDecoder().feed(stream)
        assert [m.ts for m in out] == [0, 1, 2, 3, 4]

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame(FetchMessage("q"))
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes() == len(frame) - 1
        (message,) = decoder.feed(frame[-1:])
        assert message.cq_name == "q"


class TestMalformedInput:
    def test_garbage_payload_rejected(self):
        with pytest.raises(NetworkError):
            decode_payload(b"\xff\xfe not json")

    def test_unknown_tag_rejected(self):
        with pytest.raises(NetworkError):
            decode_payload(b'{"t":"no_such_message"}')

    def test_missing_fields_rejected(self):
        with pytest.raises(NetworkError):
            decode_payload(b'{"t":"delta","cq":"q"}')

    def test_unencodable_message_rejected(self):
        class Mystery(Message):
            pass

        with pytest.raises(NetworkError):
            encode_payload(Mystery())

    def test_oversized_length_prefix_rejected(self):
        bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(NetworkError):
            FrameDecoder().feed(bogus)


class TestHardening:
    """Damaged input must be *contained*: a malformed payload inside an
    intact frame is counted and skipped; only a corrupted length prefix
    (framing lost) is fatal. Every error is a typed ``CodecError``, a
    ``NetworkError`` subtype, so existing handlers keep working."""

    def test_errors_are_typed_codec_errors(self):
        with pytest.raises(CodecError):
            decode_payload(b"{truncated json")
        with pytest.raises(CodecError):
            decode_payload(b'{"t":"delta","cq":"q"}')
        with pytest.raises(CodecError):
            FrameDecoder().feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        assert issubclass(CodecError, NetworkError)

    def test_truncated_payload_in_intact_frame_is_skipped(self):
        good = encode_frame(HeartbeatMessage(1))
        payload = encode_payload(FetchMessage("q"))[:-4]  # torn JSON
        bad = len(payload).to_bytes(4, "big") + payload
        decoder = FrameDecoder()
        out = decoder.feed(bad + good)
        # The poisoned frame is counted; the stream continues.
        assert decoder.errors == 1
        assert [type(m) for m in out] == [HeartbeatMessage]

    def test_bit_flipped_frame_is_skipped_stream_survives(self):
        frames = [
            encode_frame(HeartbeatMessage(1)),
            encode_frame(FetchMessage("q")),
            encode_frame(HeartbeatMessage(2)),
        ]
        # Flip a payload byte in the middle frame (length prefix kept
        # intact so framing survives).
        middle = bytearray(frames[1])
        middle[6] ^= 0xFF
        decoder = FrameDecoder()
        out = decoder.feed(frames[0] + bytes(middle) + frames[2])
        assert decoder.errors == 1
        assert [m.ts for m in out if isinstance(m, HeartbeatMessage)] == [1, 2]

    def test_every_bit_flip_is_detected_or_harmless(self):
        """Flip each payload byte of one frame in turn: the decoder
        either skips it (counted) or decodes a well-formed message —
        it never raises and never stalls the stream."""
        frame = encode_frame(HeartbeatMessage(7))
        trailer = encode_frame(FetchMessage("q"))
        for i in range(4, len(frame)):  # payload bytes only
            damaged = bytearray(frame)
            damaged[i] ^= 0x40
            decoder = FrameDecoder()
            out = decoder.feed(bytes(damaged) + trailer)
            assert decoder.errors in (0, 1)
            assert type(out[-1]) is FetchMessage

    def test_custom_frame_limit(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(CodecError):
            decoder.feed((65).to_bytes(4, "big") + b"x" * 65)
        small = encode_frame(HeartbeatMessage(1))
        assert len(small) - 4 <= 64
        assert FrameDecoder(max_frame_bytes=64).feed(small)[0].ts == 1

    def test_frameconnection_counts_codec_errors(self):
        """Over a real socket pair: a poisoned frame is skipped and
        counted on the connection; later frames still arrive."""
        import asyncio

        from repro.net.transport import TcpTransport

        async def scenario():
            received = []
            done = asyncio.Event()

            async def on_connection(conn):
                while True:
                    message = await conn.recv()
                    if message is None:
                        break
                    received.append(message)
                    if len(received) == 2:
                        done.set()
                server_conns.append(conn)

            server_conns = []
            transport = TcpTransport()
            server, (host, port) = await transport.serve(
                "127.0.0.1", 0, on_connection
            )
            conn = await transport.connect(host, port)
            await conn.send(HeartbeatMessage(1))
            # Hand-forged poisoned frame: intact framing, broken JSON.
            payload = b'{"t":"delta","cq":"q"}'
            conn._writer.write(len(payload).to_bytes(4, "big") + payload)
            await conn._writer.drain()
            await conn.send(HeartbeatMessage(2))
            await asyncio.wait_for(done.wait(), 5)
            conn.close()
            await conn.wait_closed()
            server.close()
            await server.wait_closed()
            assert [m.ts for m in received] == [1, 2]
            assert server_conns[0].codec_errors == 1

        asyncio.run(scenario())
