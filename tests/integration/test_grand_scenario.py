"""The everything-together scenario.

One long-running deployment exercising, simultaneously: federated
replication, four CQ engines/modes, epsilon and time triggers, HAVING
aggregates, lazy network delivery, garbage collection, and a snapshot/
restore in the middle of the run — asserting exactness against
from-scratch evaluation throughout.
"""

import pytest

from repro import Database
from repro.core import (
    CQManager,
    DeliveryMode,
    Engine,
    EpsilonTrigger,
    EvaluationStrategy,
    Every,
    NetChangeEpsilon,
)
from repro.net.client import CQClient
from repro.net.server import CQServer, Protocol
from repro.net.simnet import SimulatedNetwork
from repro.sources.base import MirrorAdapter
from repro.sources.remote import RemoteTableSource
from repro.storage.snapshots import database_from_dict, database_to_dict
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 600"
AGG = (
    "SELECT name, SUM(price) AS total, COUNT(*) AS n FROM stocks "
    "GROUP BY name HAVING n >= 2"
)


def test_grand_scenario():
    # -- producer site ---------------------------------------------------
    producer = Database()
    market = StockMarket(producer, seed=2468)
    market.populate(600)

    # -- consumer site with a replica -------------------------------------
    consumer = Database()
    replica = MirrorAdapter(
        consumer, "stocks", RemoteTableSource(market.stocks)
    )
    replica.sync()
    consumer.table("stocks").create_index(["sid"])

    mgr = CQManager(consumer, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("dra", WATCH, mode=DeliveryMode.COMPLETE)
    mgr.register_sql("eager", WATCH, engine=Engine.EAGER,
                     mode=DeliveryMode.COMPLETE)
    mgr.register_sql("reeval", WATCH, engine=Engine.REEVALUATE,
                     mode=DeliveryMode.COMPLETE)
    mgr.register_sql("agg", AGG, mode=DeliveryMode.COMPLETE)
    mgr.register_sql(
        "epsilon",
        "SELECT SUM(price) AS total FROM stocks",
        trigger=EpsilonTrigger(NetChangeEpsilon(3_000.0, "price")),
        mode=DeliveryMode.COMPLETE,
    )
    mgr.drain()

    # -- network subscribers on the producer side -------------------------
    net = SimulatedNetwork()
    server = CQServer(producer, net, share_evaluation=True)
    lazy = CQClient("lazy")
    eager_client = CQClient("eager")
    server.attach(lazy)
    server.attach(eager_client)
    lazy.register("watch", WATCH, Protocol.DRA_LAZY)
    eager_client.register("watch", WATCH, Protocol.DRA_DELTA)

    epsilon_fires = 0
    for round_no in range(12):
        market.tick(40, p_insert=0.15, p_delete=0.15, volatility=200)
        server.refresh_all()
        replica.sync()
        notes = mgr.poll()
        epsilon_fires += sum(1 for n in notes if n.cq_name == "epsilon")
        mgr.collect_garbage()

        truth = consumer.query(WATCH)
        for name in ("dra", "eager", "reeval"):
            assert mgr.get(name).previous_result == truth, (
                f"{name} diverged at round {round_no}"
            )
        assert mgr.get("agg").previous_result == consumer.query(AGG)
        assert eager_client.result("watch") == producer.query(WATCH)

        if round_no == 5:
            # Mid-run checkpoint/restore of the consumer site: the
            # restored database must serve the same truth.
            restored = database_from_dict(database_to_dict(consumer))
            assert restored.query(WATCH) == truth
            assert restored.query(AGG) == consumer.query(AGG)

    # The lazy subscriber catches up in one fetch.
    assert lazy.fetch("watch")
    assert lazy.result("watch") == producer.query(WATCH)
    # Epsilon CQ fired at least once given the churn, but not per round.
    assert 0 < epsilon_fires <= 12
    # GC kept the consumer's log bounded.
    assert len(consumer.table("stocks").log) <= 200
    # Lazy shipped less than eager-per-refresh for the same content.
    assert net.link("server", "lazy").bytes < net.link(
        "server", "eager"
    ).bytes
