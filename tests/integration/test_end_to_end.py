"""End-to-end integration: workloads, manager, CQs, GC, termination."""

import pytest

from repro import Database
from repro.core import (
    AfterExecutions,
    CQManager,
    DeliveryMode,
    EpsilonTrigger,
    EvaluationStrategy,
    Every,
    NetChangeEpsilon,
    NotificationKind,
)
from repro.metrics import Metrics
from repro.workload.accounts import Bank
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 700"
JOIN = (
    "SELECT s.name, t.shares FROM stocks s, trades t "
    "WHERE s.sid = t.sid AND s.price > 700"
)


class TestLongRunningStockMonitor:
    def test_complete_mode_tracks_truth_over_many_rounds(self, db):
        market = StockMarket(db, seed=31)
        market.populate(400)
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH, mode=DeliveryMode.COMPLETE)
        mgr.drain()
        for round_no in range(10):
            market.tick(30, p_insert=0.15, p_delete=0.15)
            notes = mgr.poll()
            latest = [n for n in notes if n.kind is NotificationKind.REFRESH]
            if latest:
                assert latest[-1].result == db.query(WATCH)
        assert mgr.get("watch").previous_result == db.query(WATCH)

    def test_join_cq_with_indexes(self, db):
        market = StockMarket(db, seed=32, with_trades=True)
        market.populate(200, trades_per_stock=2)
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("join", JOIN, mode=DeliveryMode.COMPLETE)
        mgr.drain()
        for __ in range(5):
            market.tick(25, p_insert=0.1, p_delete=0.1)
            with db.begin() as txn:
                txn.insert_into(market.trades, (1, 5, 100))
            mgr.poll()
        assert mgr.get("join").previous_result == db.query(JOIN)

    def test_dra_touches_no_base_rows_on_sparse_updates(self, db):
        metrics = Metrics()
        market = StockMarket(db, seed=33)
        market.populate(5000)
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC, metrics=metrics)
        mgr.register_sql("watch", WATCH)
        mgr.drain()
        metrics.reset()
        market.tick(10)
        mgr.poll()
        # A selection CQ re-evaluates from the delta alone.
        assert metrics[Metrics.ROWS_SCANNED] == 0
        assert 0 < metrics[Metrics.DELTA_ROWS_READ] <= 20


class TestBankEpsilonScenario:
    def test_epsilon_cq_fires_sparsely(self, db):
        bank = Bank(db, seed=34)
        bank.populate(100)
        mgr = CQManager(db)
        mgr.register_sql(
            "sum",
            "SELECT SUM(amount) AS total FROM accounts",
            trigger=EpsilonTrigger(NetChangeEpsilon(50_000.0, "amount")),
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        refreshes = 0
        days = 0
        for __ in range(30):
            bank.business_day(20, mean_amount=500.0, deposit_bias=0.8)
            days += 1
            refreshes += len(mgr.drain())
        # Fires much less often than daily, but does fire eventually.
        assert 0 < refreshes < days

    def test_reported_sum_correct_when_fired(self, db):
        bank = Bank(db, seed=35)
        bank.populate(50)
        reported = []
        mgr = CQManager(db)
        mgr.register_sql(
            "sum",
            "SELECT SUM(amount) AS total FROM accounts",
            trigger=EpsilonTrigger(NetChangeEpsilon(10_000.0, "amount")),
            mode=DeliveryMode.COMPLETE,
            on_notify=lambda n: reported.append(n),
        )
        for __ in range(20):
            bank.business_day(10, mean_amount=2000.0, deposit_bias=0.9)
        final = [n for n in reported if n.kind is NotificationKind.REFRESH]
        assert final
        last_total = final[-1].result.get(())[0]
        # The last fired report was exact at its firing time; since
        # then at most epsilon of drift accumulated.
        assert last_total == pytest.approx(
            bank.total_balance(),
            abs=10_000.0 + 2000.0 * 50,  # epsilon + one day's tail
        )


class TestLifecycleAndGC:
    def test_terminated_cq_releases_gc_horizon(self, db):
        market = StockMarket(db, seed=36)
        market.populate(50)
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("short", WATCH, stop=AfterExecutions(1))
        mgr.register_sql("long", WATCH, trigger=Every(1))
        mgr.poll()
        market.tick(20)
        mgr.poll()  # 'short' stops; 'long' refreshes
        assert mgr.get("short").name not in [
            cq.name for cq in mgr.active()
        ]
        market.tick(20)
        mgr.poll()
        pruned = mgr.collect_garbage()
        # With only 'long' active and caught up, the whole log drains.
        assert len(market.stocks.log.since(mgr.get("long").last_execution_ts)) == 0
        assert pruned.get("stocks", 0) > 0

    def test_gc_bounds_log_growth(self, db):
        market = StockMarket(db, seed=37)
        market.populate(100)
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC, auto_gc=True)
        mgr.register_sql("watch", WATCH, trigger=Every(1))
        sizes = []
        for __ in range(15):
            market.tick(20)
            mgr.poll()
            sizes.append(len(market.stocks.log))
        assert max(sizes) <= 40  # bounded, not cumulative (300 updates)
