"""Integration: heterogeneous sources feeding one CQ manager.

The paper's Internet scenario: relational data, an append-only feed, a
file system, and a snapshot-only legacy source all flow through DIOM
translators into differential relations, and a single DRA-backed CQ
joins across them.
"""

import pytest

from repro import Database
from repro.core import CQManager, DeliveryMode, EvaluationStrategy
from repro.relational import AttributeType, Schema
from repro.sources.append_log import AppendOnlyFeed
from repro.sources.base import MirrorAdapter
from repro.sources.filesystem import FileSystemSource, SimulatedFileSystem
from repro.sources.snapshot import SnapshotDiffSource

NEWS_SCHEMA = Schema.of(
    ("sym", AttributeType.STR), ("headline", AttributeType.STR)
)
QUOTES_SCHEMA = Schema.of(("sym", AttributeType.STR), ("px", AttributeType.FLOAT))


@pytest.fixture
def world(db):
    news = AppendOnlyFeed(NEWS_SCHEMA)
    quotes = SnapshotDiffSource(QUOTES_SCHEMA, ["sym"])
    fs = SimulatedFileSystem()
    adapters = {
        "news": MirrorAdapter(db, "news", news),
        "quotes": MirrorAdapter(db, "quotes", quotes),
        "files": MirrorAdapter(db, "files", FileSystemSource(fs)),
    }
    return db, news, quotes, fs, adapters


def sync_all(adapters):
    for adapter in adapters.values():
        adapter.sync()


class TestCrossSourceJoin:
    def test_news_quotes_join_cq(self, world):
        db, news, quotes, __, adapters = world
        quotes.publish([("IBM", 75.0), ("DEC", 150.0)])
        sync_all(adapters)
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql(
            "hot-news",
            "SELECT n.headline, q.px FROM news n, quotes q "
            "WHERE n.sym = q.sym AND q.px > 100",
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()

        news.append(("DEC", "DEC beats estimates"))
        news.append(("IBM", "IBM flat"))
        sync_all(adapters)
        notes = mgr.poll()
        assert len(notes) == 1
        assert notes[0].result.values_set() == {
            ("DEC beats estimates", 150.0)
        }

        # A quote crossing the threshold pulls old news into the result.
        quotes.publish([("IBM", 120.0), ("DEC", 150.0)])
        sync_all(adapters)
        notes = mgr.poll()
        inserted = notes[0].delta.insertions().values_set()
        assert ("IBM flat", 120.0) in inserted

    def test_snapshot_deletion_propagates(self, world):
        db, news, quotes, __, adapters = world
        quotes.publish([("IBM", 175.0)])
        news.append(("IBM", "IBM news"))
        sync_all(adapters)
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql(
            "watch",
            "SELECT n.headline FROM news n, quotes q "
            "WHERE n.sym = q.sym AND q.px > 100",
            mode=DeliveryMode.DELETIONS_ONLY,
        )
        mgr.drain()
        quotes.publish([])  # the legacy source dropped everything
        sync_all(adapters)
        notes = mgr.poll()
        assert notes[0].result.values_set() == {("IBM news",)}


class TestFilesystemMonitoring:
    def test_directory_size_aggregate(self, world):
        db, __, __, fs, adapters = world
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql(
            "dir-usage",
            "SELECT directory, SUM(size) AS bytes FROM files GROUP BY directory",
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        fs.create("/logs/a.log", 100)
        fs.create("/logs/b.log", 50)
        fs.create("/tmp/x", 1)
        sync_all(adapters)
        notes = mgr.poll()
        result = notes[0].result
        assert result.get(("/logs",)) == ("/logs", 150)
        fs.remove("/logs/a.log")
        sync_all(adapters)
        notes = mgr.poll()
        assert notes[0].result.get(("/logs",)) == ("/logs", 50)

    def test_consistency_with_rerun_after_churn(self, world):
        db, news, quotes, fs, adapters = world
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql(
            "big", "SELECT path, size FROM files WHERE size > 10",
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        for i in range(10):
            fs.create(f"/data/f{i}", i * 5)
        sync_all(adapters)
        mgr.poll()
        for i in range(0, 10, 2):
            fs.write(f"/data/f{i}", 100)
        fs.remove("/data/f9")
        sync_all(adapters)
        mgr.poll()
        assert mgr.get("big").previous_result == db.query(
            "SELECT path, size FROM files WHERE size > 10"
        )
