"""Every example script (and the module demo) must run cleanly.

Examples are executable documentation; this keeps them from rotting as
the library evolves. Each runs in a subprocess with a generous timeout
and must exit 0 without writing to stderr.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate their run"


def test_module_demo_runs():
    completed = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "ICDCS" in completed.stdout


def test_expected_examples_present():
    names = {s.stem for s in EXAMPLE_SCRIPTS}
    assert {
        "quickstart",
        "stock_monitor",
        "bank_epsilon",
        "filesys_monitor",
        "multi_source_aggregator",
        "federated_sites",
        "nested_views",
    } <= names
