"""Chaos soak: crashes, torn journals, severed links, corrupt deltas.

A seeded schedule drives random updates through a durable
:class:`CQService` while chaos events fire between rounds:

* **process crash** — the service is abandoned mid-flight (no clean
  checkpoint, connections severed) and rebuilt with
  :meth:`CQService.recover` from the write-ahead log;
* **torn journal tail** — garbage appended to the WAL before recovery,
  exercising truncate-and-continue;
* **severed connections** — TCP links cut without warning, forcing
  session reconnect + differential replay;
* **garbage collection** — update logs pruned up to the active delta
  zone boundary, forcing full-result fallbacks for stale resumes;
* **corrupt delta** — a digest-mismatched delta injected at a client,
  which must detect it, count exactly one mismatch, and auto-resync.

The invariant throughout: after the dust settles every client's cached
result equals a complete re-evaluation over the surviving database,
and every injected fault was *counted* — zero undetected divergences.
"""

import asyncio
import random

import pytest

from repro.core.persistence import save_server
from repro.errors import NetworkError
from repro.metrics import Metrics
from repro.net.client import CQSession
from repro.net.service import CQService
from repro.net.transport import FaultInjector
from repro.relational.types import AttributeType
from repro.storage.database import Database

SCHEMA = [
    ("id", AttributeType.INT),
    ("sym", AttributeType.STR),
    ("price", AttributeType.INT),
    ("volume", AttributeType.INT),
]

CQS = {
    "cheap": "SELECT sym, price FROM stocks WHERE price < 500",
    "heavy": "SELECT sym, volume FROM stocks WHERE volume > 3000",
}

SYMBOLS = ["IBM", "MAC", "HP", "SUN", "DEC", "NCR", "SGI", "CRI"]


def mutate(db, rng, count):
    """Apply ``count`` random inserts/modifies/deletes in one txn."""
    table = db.table("stocks")
    with db.begin() as txn:
        for _ in range(count):
            rows = list(table.rows())
            op = rng.random()
            if op < 0.5 or len(rows) < 5:
                txn.insert_into(
                    table,
                    (
                        rng.randrange(1_000_000),
                        rng.choice(SYMBOLS),
                        rng.randrange(1000),
                        rng.randrange(6000),
                    ),
                )
            elif op < 0.85:
                row = rng.choice(rows)
                txn.modify_in(
                    table, row.tid, updates={"price": rng.randrange(1000)}
                )
            else:
                txn.delete_from(table, rng.choice(rows).tid)


class TestChaosSoak:
    ROUNDS = 20
    CRASH_ROUNDS = frozenset({1, 3, 5, 7, 9, 11, 13, 15, 17, 19})  # 10 crashes
    TORN_ROUNDS = frozenset({3, 9, 15})  # corrupt the journal tail first
    CHECKPOINT_ROUNDS = frozenset({6, 14})  # mid-soak checkpoints
    SEVER_ROUNDS = frozenset({4, 12})  # cut links without killing the db
    GC_ROUNDS = frozenset({8, 16})
    # Incarnations recovered at these crash rounds run with a seeded
    # frame-drop injector until the next crash replaces them.
    DROP_ROUNDS = frozenset({7, 17})

    def test_soak_converges_through_ten_crashes(self, tmp_path):
        asyncio.run(self._soak(tmp_path, seed=1996))

    async def _soak(self, tmp_path, seed):
        rng = random.Random(seed)
        wal_path = str(tmp_path / "soak.wal")
        ckpt_path = str(tmp_path / "soak.ckpt")
        metrics = Metrics()

        db = Database(durability=wal_path)
        table = db.create_table("stocks", SCHEMA)
        for i in range(40):
            table.insert(
                (i, rng.choice(SYMBOLS), rng.randrange(1000), rng.randrange(6000))
            )

        service = CQService(
            db, metrics=metrics, heartbeat_interval=0.05, audit_interval=3
        )
        addr = await service.start()

        sessions = {}
        for name, sql in CQS.items():
            session = CQSession(
                f"client-{name}", *addr, backoff_base=0.01, seed=seed
            )
            await session.connect()
            await session.register(name, sql)
            sessions[name] = session

        crashes = 0
        torn_seen = 0
        checkpointed = False
        injectors = []
        try:
            for round_no in range(self.ROUNDS):
                mutate(service.db, rng, rng.randint(1, 6))

                if round_no in self.CHECKPOINT_ROUNDS:
                    save_server(service.server, ckpt_path)
                    checkpointed = True

                if round_no in self.GC_ROUNDS:
                    service.server.collect_garbage()

                if round_no in self.SEVER_ROUNDS:
                    service.sever_connections()

                if round_no in self.CRASH_ROUNDS:
                    # Crash mid-refresh: kick deliveries off, then kill
                    # the process before clients can have applied them.
                    await service.refresh()
                    service.sever_connections()
                    await service.stop()
                    crashes += 1
                    if round_no in self.TORN_ROUNDS:
                        with open(wal_path, "ab") as fh:
                            fh.write(b"\x00\x00\x07\xffchaos-torn-tail")
                    injector = None
                    if round_no in self.DROP_ROUNDS:
                        injector = FaultInjector(drop_rate=0.25, seed=seed)
                        injectors.append(injector)
                    incarnation = Metrics()
                    service = CQService.recover(
                        wal_path,
                        checkpoint_path=ckpt_path if checkpointed else None,
                        metrics=incarnation,
                        heartbeat_interval=0.05,
                        audit_interval=3,
                        injector=injector,
                    )
                    torn_seen += incarnation.get(Metrics.WAL_TORN_TRUNCATIONS)
                    addr = await service.start()
                    for session in sessions.values():
                        await self._redial(service, session, addr)
                else:
                    await service.refresh()

                # Every few rounds, force full convergence and compare
                # against a complete re-evaluation of the live database.
                if round_no % 5 == 4:
                    await self._assert_converged(service, sessions, rng)

            await service.refresh()
            await self._assert_converged(service, sessions, rng)
        finally:
            for session in sessions.values():
                await session.close()
            await service.stop()

        assert crashes == 10
        # Every injected torn tail was detected, truncated, and counted
        # — never crashed recovery.
        assert torn_seen == len(self.TORN_ROUNDS)
        # The drop windows actually lost frames; the convergence
        # assertions above prove every loss was detected and healed
        # (stale-delta resync or digest mismatch), never served stale.
        assert sum(i.frames_dropped for i in injectors) > 0
        assert sum(s.reconnects for s in sessions.values()) >= 1

    async def _redial(self, service, session, addr):
        """Reconnect a session after a crash, tolerating a handshake
        that a drop window ate (sever the half-open link and retry)."""
        for __ in range(5):
            try:
                await session.redial(*addr, timeout=3.0)
                return
            except NetworkError:
                service.sever_connections()
        raise AssertionError(
            f"session {session.client_id} could not re-establish"
        )

    async def _assert_converged(self, service, sessions, rng):
        # Wait on result equality, not applied timestamps: a CQ whose
        # delta window was empty never gets (or needs) a new message.
        # Under an active drop window the last delta may have been
        # eaten with nothing behind it to trigger resync, so on a miss
        # we nudge with another update+refresh round — the client then
        # detects its stale cache and heals — and re-check.
        for name, session in sessions.items():
            for attempt in range(5):
                reference = service.db.query(CQS[name])
                try:
                    await session._wait_for(
                        lambda n=name, s=session, r=reference: (
                            n in s._results and s._results[n] == r
                        ),
                        timeout=3.0,
                    )
                    break
                except NetworkError:
                    if attempt == 4:
                        raise AssertionError(
                            f"{name} failed to converge: "
                            f"cached={session._results.get(name)!r} "
                            f"expected={reference!r}"
                        )
                    mutate(service.db, rng, 1)
                    await service.refresh()


def mutate_cluster(router, rng, count):
    """Seeded random churn over the cluster schema (stocks replicated,
    folios partitioned — including partition-key migrations)."""
    db = router.db
    stocks = db.table("stocks")
    folios = db.table("folios")
    with db.begin() as txn:
        for __ in range(count):
            op = rng.random()
            stock_rows = list(stocks.current)
            folio_rows = list(folios.current)
            if op < 0.35 or len(stock_rows) < 5:
                txn.insert_into(
                    stocks,
                    (
                        rng.randrange(1_000_000),
                        rng.choice(SYMBOLS),
                        rng.randrange(1000),
                        rng.randrange(6000),
                    ),
                )
            elif op < 0.55:
                row = rng.choice(stock_rows)
                txn.modify_in(
                    stocks,
                    row.tid,
                    updates={"price": rng.randrange(1000)},
                )
            elif op < 0.7 or len(folio_rows) < 5:
                txn.insert_into(
                    folios,
                    (
                        rng.randrange(1_000_000),
                        f"client-{rng.randrange(12)}",
                        rng.choice(stock_rows).values[0],
                        rng.randrange(100),
                    ),
                )
            elif op < 0.85:
                # Partition-key update: the row migrates slices.
                row = rng.choice(folio_rows)
                txn.modify_in(
                    folios,
                    row.tid,
                    updates={"client": f"client-{rng.randrange(12)}"},
                )
            else:
                txn.delete_from(folios, rng.choice(folio_rows).tid)


class TestClusterChaosSoak:
    """Multi-shard chaos: kill shards mid-stream, keep streaming, and
    recover through both halves of the recovery matrix.

    A 3-shard cluster (one partitioned table, one replicated) absorbs a
    seeded update schedule. Shard 1 is killed mid-stream with its zone
    pinned — recovery must take the delta-replay path, exactly once.
    Shard 2 is killed with its zone released and the logs collected —
    recovery must take the baseline-fallback path, exactly once. After
    every recovery the soak asserts *bit-identical* convergence: each
    retained subscription result equals the single-process oracle (a
    from-scratch evaluation over the router's authoritative database).
    """

    ROUNDS = 16
    KILL_REPLAY_ROUND = 3  # kill shard 1, zone pinned
    RECOVER_REPLAY_ROUND = 7
    KILL_FALLBACK_ROUND = 9  # kill shard 2, zone released + GC
    RECOVER_FALLBACK_ROUND = 13

    CLUSTER_CQS = {
        "cheap": "SELECT sym, price FROM stocks WHERE price < 500",
        "heavy": "SELECT sym, volume FROM stocks WHERE volume > 3000",
        "folio": (
            "SELECT p.client, s.sym, s.price, p.qty "
            "FROM folios p, stocks s "
            "WHERE p.sid = s.id AND s.price > 200"
        ),
    }

    def _mutate(self, router, rng, count):
        mutate_cluster(router, rng, count)

    def _assert_converged(self, router):
        for name, sql in self.CLUSTER_CQS.items():
            oracle = router.db.query(sql)
            got = router.result("soak", name)
            assert got == oracle, f"{name} diverged from the oracle"

    def test_cluster_soak_replay_then_fallback(self, tmp_path):
        from repro.cluster import ClusterRouter, LocalBackend

        rng = random.Random(2026)
        router = ClusterRouter(
            shards=3,
            seed=17,
            backend=LocalBackend(wal_root=str(tmp_path)),
        )
        router.declare_table("stocks", SCHEMA)
        router.declare_table(
            "folios",
            [
                ("fid", AttributeType.INT),
                ("client", AttributeType.STR),
                ("sid", AttributeType.INT),
                ("qty", AttributeType.INT),
            ],
            partition_key="client",
        )
        router.start()

        db = router.db
        with db.begin() as txn:
            for i in range(40):
                txn.insert_into(
                    db.table("stocks"),
                    (
                        i,
                        rng.choice(SYMBOLS),
                        rng.randrange(1000),
                        rng.randrange(6000),
                    ),
                )
            for i in range(30):
                txn.insert_into(
                    db.table("folios"),
                    (i, f"client-{i % 12}", i % 40, rng.randrange(100)),
                )

        for name, sql in self.CLUSTER_CQS.items():
            router.subscribe("soak", name, sql)
        router.refresh()
        self._assert_converged(router)

        replayed = fallen_back = False
        for round_no in range(self.ROUNDS):
            self._mutate(router, rng, rng.randint(1, 6))

            if round_no == self.KILL_REPLAY_ROUND:
                router.kill_shard(1)
            if round_no == self.KILL_FALLBACK_ROUND:
                router.kill_shard(2, release_zone=True)

            router.refresh()

            if round_no == self.RECOVER_REPLAY_ROUND:
                replayed = router.recover_shard(1)
                router.refresh()
                self._assert_converged(router)
            if round_no == self.RECOVER_FALLBACK_ROUND:
                # GC first: the released zone lets the logs prune past
                # the dead shard's horizon, forcing the fallback.
                router.collect_garbage()
                fallen_back = not router.recover_shard(2)
                router.refresh()
                self._assert_converged(router)

        router.refresh()
        self._assert_converged(router)

        assert replayed, "shard 1 should have recovered via delta replay"
        assert fallen_back, "shard 2 should have needed the baseline fallback"
        snapshot = router.metrics.snapshot()
        assert snapshot.get(Metrics.SHARD_REPLAYS) == 1
        assert snapshot.get(Metrics.SHARD_FALLBACKS) == 1
        # The stream kept flowing while shards were down and the merge
        # machinery actually ran (this soak is not vacuously quiet).
        assert snapshot.get(Metrics.SCATTERS, 0) > 0
        assert snapshot.get(Metrics.CLUSTER_MERGES, 0) > 0
        router.close()


class TestReplicatedChaosSoak:
    """Failover chaos: with ``replicas=1``, any single shard may die at
    any moment — including mid-scatter, via injected deadline misses —
    and the soak must show **zero failed cycles** (refresh never
    raises), **zero baseline fallbacks**, and bit-identical convergence
    after every round.

    The schedule exercises every detection-and-recovery shape:

    * **hard crash** — shard 0 killed between cycles; its groups fail
      over on the next refresh and re-replicate in the background;
    * **mid-scatter hang** — shard 1's scatter sends time out (first
      try and the retry) partway through a cycle, forcing same-cycle
      promotion of its groups' replicas;
    * **slow shard** — shard 2 misses one deadline but answers the
      retry: one suspect, one retry, *no* failover;
    * **reply loss** — a scatter is applied but its reply is eaten;
      the retry must hit the shard's seq-dedup cache (exactly-once);
    * **rejoin** — both dead hosts recover as planned catch-ups
      (``recover_shard`` returns True; never a fallback).
    """

    ROUNDS = 18
    KILL_ROUND = 3  # hard crash of shard 0
    HANG_ROUND = 6  # mid-scatter deadline misses kill shard 1
    RECOVER_0_ROUND = 9
    SLOW_ROUND = 11  # one miss + successful retry on shard 2
    REPLY_LOSS_ROUND = 13
    RECOVER_1_ROUND = 15

    CLUSTER_CQS = TestClusterChaosSoak.CLUSTER_CQS

    def _assert_converged(self, router):
        for name, sql in self.CLUSTER_CQS.items():
            oracle = router.db.query(sql)
            got = router.result("soak", name)
            assert got == oracle, f"{name} diverged from the oracle"

    def test_soak_survives_any_single_shard_death(self, tmp_path):
        from repro.cluster import ClusterRouter, FaultInjector, LocalBackend
        from repro.net.messages import ScatterMessage

        rng = random.Random(2027)
        injector = FaultInjector()
        router = ClusterRouter(
            shards=3,
            seed=17,
            replicas=1,
            backend=LocalBackend(
                wal_root=str(tmp_path), fault_hook=injector
            ),
            request_timeout=5.0,
            retries=1,
            sleep=lambda delay: None,
        )
        router.declare_table("stocks", SCHEMA)
        router.declare_table(
            "folios",
            [
                ("fid", AttributeType.INT),
                ("client", AttributeType.STR),
                ("sid", AttributeType.INT),
                ("qty", AttributeType.INT),
            ],
            partition_key="client",
        )
        router.start()

        db = router.db
        with db.begin() as txn:
            for i in range(40):
                txn.insert_into(
                    db.table("stocks"),
                    (
                        i,
                        rng.choice(SYMBOLS),
                        rng.randrange(1000),
                        rng.randrange(6000),
                    ),
                )
            for i in range(30):
                txn.insert_into(
                    db.table("folios"),
                    (i, f"client-{i % 12}", i % 40, rng.randrange(100)),
                )

        for name, sql in self.CLUSTER_CQS.items():
            router.subscribe("soak", name, sql)
        router.refresh()
        self._assert_converged(router)

        is_scatter = lambda m: isinstance(m, ScatterMessage)  # noqa: E731
        for round_no in range(self.ROUNDS):
            mutate_cluster(router, rng, rng.randint(1, 6))

            if round_no == self.KILL_ROUND:
                router.kill_shard(0)
            if round_no == self.HANG_ROUND:
                # First try + the retry both miss: host down mid-cycle.
                injector.hang(1, phase="send", times=2, match=is_scatter)
            if round_no == self.SLOW_ROUND:
                # One miss, retry answers: slow, not dead.
                injector.hang(2, phase="send", times=1, match=is_scatter)
            if round_no == self.REPLY_LOSS_ROUND:
                injector.crash(2, phase="reply", times=1, match=is_scatter)

            router.refresh()  # zero failed cycles: this must not raise
            self._assert_converged(router)

            if round_no == self.RECOVER_0_ROUND:
                assert router.recover_shard(0) is True
                router.refresh()
                self._assert_converged(router)
            if round_no == self.RECOVER_1_ROUND:
                assert router.recover_shard(1) is True
                router.refresh()
                self._assert_converged(router)

        router.refresh()
        self._assert_converged(router)

        snapshot = router.metrics.snapshot()
        # Every fault was detected and counted; none escalated into a
        # baseline fallback or an uncounted divergence.
        assert snapshot.get(Metrics.SHARD_FALLBACKS, 0) == 0
        assert snapshot.get(Metrics.FAILOVERS, 0) >= 2  # crash + hang
        assert snapshot.get(Metrics.SCATTER_TIMEOUTS, 0) >= 3
        assert snapshot.get(Metrics.SCATTER_RETRIES, 0) >= 2
        assert snapshot.get(Metrics.SUSPECTS, 0) >= 2
        assert snapshot.get(Metrics.REREPLICATIONS, 0) >= 2
        assert snapshot.get(Metrics.CLUSTER_MERGES, 0) > 0
        # The slow shard and the reply loss healed without failover:
        # shard 2 must still be alive and serving.
        assert router.stats()["shards"][2]["alive"] is True
        # Background repair released every pinned zone.
        assert router.collect_garbage().pinned == {}
        router.close()


class TestCorruptDeltaDetection:
    def test_exactly_one_mismatch_then_auto_resync(self, tmp_path):
        """The acceptance check for self-verification: a corrupt delta
        yields exactly one counted digest mismatch, and the automatic
        resync converges the client back to the true result."""

        async def scenario():
            from repro.delta.differential import DeltaRelation
            from repro.net.messages import DeltaMessage

            db = Database(durability=str(tmp_path / "srv.wal"))
            table = db.create_table("stocks", SCHEMA)
            for i in range(20):
                table.insert((i, "SYM", i * 100, i * 500))
            service = CQService(db, heartbeat_interval=0.05)
            addr = await service.start()
            session = CQSession("c1", *addr, backoff_base=0.01)
            await session.connect()
            await session.register("cheap", CQS["cheap"])

            table.insert((100, "NEW", 50, 10))
            await service.refresh()
            await session.wait_applied("cheap", db.now())
            good = session.result("cheap").copy()

            # Inject a corrupted delta as if a damaged frame slipped
            # through CRC: right structure, wrong digest.
            forged = DeltaMessage(
                "cheap",
                DeltaRelation(good.schema, []),
                db.now(),
                "9:ffffffffffffffff",
            )
            await session._handle(forged)
            assert session.digest_mismatches == 1

            # The mismatch discarded the cache and sent a resync; the
            # service answers with a digest-stamped full result.
            await session._wait_for(
                lambda: "cheap" in session._results, timeout=10.0
            )
            assert session.result("cheap") == db.query(CQS["cheap"])
            assert session.result("cheap") == good
            assert session.digest_mismatches == 1  # exactly one

            await session.close()
            await service.stop()

        asyncio.run(scenario())
