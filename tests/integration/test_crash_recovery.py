"""Crash/recovery: checkpoint a CQ server, restart it, resume clients.

The checkpoint (core/persistence.py) captures the database — contents
plus update logs — and every subscription's identity and refresh
position. A restored server must resume *differentially*: a stale
client reconnecting with its last-applied timestamp receives exactly
the missed window, and the resumed result equals a complete
re-evaluation over the restored database.
"""

import asyncio

from repro.core.persistence import (
    load_server,
    save_server,
    server_from_dict,
    server_to_dict,
)
from repro.net.client import CQClient, CQSession
from repro.net.server import CQServer, Protocol
from repro.net.service import CQService
from repro.net.simnet import SimulatedNetwork
from repro.storage.database import Database
from repro.workload.stocks import StockMarket

WATCH = "SELECT name, price FROM stocks WHERE price > 800"


def build_market(seed=17):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(300)
    return db, market


class TestCheckpointRoundTrip:
    def test_subscriptions_and_positions_survive(self, tmp_path):
        db, market = build_market()
        server = CQServer(db, SimulatedNetwork())
        client = CQClient("c1")
        server.attach(client)
        client.register("watch", WATCH, Protocol.DRA_DELTA)
        market.tick(40)
        server.refresh_all()

        path = tmp_path / "server.json"
        save_server(server, str(path))
        restored = load_server(str(path))

        (orig,) = server.subscriptions()
        (back,) = restored.subscriptions()
        assert (back.client_id, back.cq_name) == (orig.client_id, orig.cq_name)
        assert back.protocol is orig.protocol
        assert back.last_ts == orig.last_ts
        assert back.previous_result == orig.previous_result
        assert restored.zones.boundary("c1:watch") == orig.last_ts

    def test_pending_window_reconstructed_behind_last_ts(self, tmp_path):
        """Updates committed after the last refresh must not leak into
        the restored retained copy — it is the result *at last_ts*."""
        db, market = build_market(seed=23)
        server = CQServer(db, SimulatedNetwork())
        client = CQClient("c1")
        server.attach(client)
        client.register("watch", WATCH, Protocol.DRA_DELTA)
        market.tick(40)
        server.refresh_all()
        result_at_refresh = server.subscriptions()[0].previous_result.copy()
        market.tick(40)  # pending window, not yet refreshed

        restored = server_from_dict(server_to_dict(server))
        assert restored.subscriptions()[0].previous_result == result_at_refresh

        # The first post-restore refresh is differential over exactly
        # the pending window and converges to the current truth.
        replay_client = CQClient("c1")
        replay_client._results["watch"] = result_at_refresh.copy()
        restored.attach(replay_client)
        restored.refresh_all()
        assert replay_client.result("watch") == restored.db.query(WATCH)

    def test_rejects_wrong_checkpoint_kind(self):
        import pytest

        from repro.errors import ReproError

        with pytest.raises(ReproError):
            server_from_dict({"format": 1, "kind": "something_else"})


class TestCrashRecoveryEndToEnd:
    def test_client_resumes_against_restarted_service(self, tmp_path):
        async def scenario():
            db, market = build_market(seed=31)
            service = CQService(db, heartbeat_interval=0.02)
            addr = await service.start()
            session = CQSession("c1", *addr, backoff_base=0.01)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(50)
            await service.refresh()
            await session.wait_applied("watch", db.now())

            # Checkpoint, then crash: connections die without warning.
            path = tmp_path / "server.json"
            save_server(service.server, str(path))
            service.sever_connections()
            await service.stop()

            # Restart from the checkpoint on a fresh port. The new
            # process has its own database instance; updates continue
            # against it.
            restored_server = load_server(str(path))
            restarted = CQService(
                restored_server.db,
                server=restored_server,
                heartbeat_interval=0.02,
            )
            new_addr = await restarted.start()

            # Keep perturbing the restored database directly.
            table = restored_server.db.table("stocks")
            with restored_server.db.begin() as txn:
                for row in list(table.rows())[:30]:
                    txn.modify_in(
                        table, row.tid, updates={"price": row.values[2] + 100}
                    )

            # The stale client redials the restarted service and must
            # converge differentially from its pre-crash position.
            await session.redial(*new_addr, timeout=10.0)
            await restarted.refresh()
            await session.wait_applied(
                "watch", restored_server.db.now(), timeout=10.0
            )
            assert session.result("watch") == restored_server.db.query(WATCH)
            assert session.reconnects >= 1
            await session.close()
            await restarted.stop()

        asyncio.run(scenario())
