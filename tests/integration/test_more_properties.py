"""Additional system-level property tests: HAVING maintenance, the
EAGER engine, and snapshot round-trips under random histories."""

import random

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.core import CQManager, DeliveryMode, Engine, EvaluationStrategy
from repro.relational import AttributeType, parse_query
from repro.delta.capture import deltas_since
from repro.dra.aggregates import DifferentialAggregate
from repro.relational.aggregates import evaluate_aggregate
from repro.storage.snapshots import database_from_dict, database_to_dict

SMALL = st.integers(min_value=0, max_value=4)


@st.composite
def ops(draw, max_ops=20):
    n = draw(st.integers(1, max_ops))
    return [
        (
            draw(st.sampled_from(["insert", "delete", "modify"])),
            draw(SMALL),
            draw(st.integers(0, 9)),
            draw(st.integers(0, 10_000)),
        )
        for __ in range(n)
    ]


def build(rows):
    db = Database()
    table = db.create_table(
        "t", [("g", AttributeType.INT), ("v", AttributeType.INT)]
    )
    table.insert_many(rows)
    return db, table


def apply_ops(db, table, operations):
    live = [row.tid for row in table.rows()]
    with db.begin() as txn:
        for kind, g, v, pick in operations:
            if kind == "insert" or not live:
                live.append(txn.insert_into(table, (g, v)))
            elif kind == "delete":
                txn.delete_from(table, live.pop(pick % len(live)))
            else:
                tid = live[pick % len(live)]
                if txn.read(table, tid) is not None:
                    txn.modify_in(table, tid, values=(g, v))


class TestHavingProperty:
    @given(
        rows=st.lists(st.tuples(SMALL, st.integers(0, 9)), max_size=12),
        batches=st.lists(ops(), min_size=1, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_differential_having_matches_complete(self, rows, batches):
        db, table = build(rows)
        query = parse_query(
            "SELECT g, SUM(v) AS total, COUNT(*) AS n FROM t "
            "GROUP BY g HAVING total > 10"
        )
        state = DifferentialAggregate(query, db)
        state.initialize()
        ts = db.now()
        for operations in batches:
            apply_ops(db, table, operations)
            state.update(deltas_since([table], ts), ts=db.now())
            ts = db.now()
            assert state.current() == evaluate_aggregate(query, db.relation)


class TestEagerProperty:
    @given(
        rows=st.lists(st.tuples(SMALL, st.integers(0, 9)), max_size=12),
        batches=st.lists(ops(max_ops=10), min_size=1, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_eager_maintained_result_always_current(self, rows, batches):
        db, table = build(rows)
        sql = "SELECT g, v FROM t WHERE v > 3"
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        cq = mgr.register_sql(
            "e", sql, engine=Engine.EAGER, mode=DeliveryMode.COMPLETE
        )
        for operations in batches:
            apply_ops(db, table, operations)
            # Maintained copy is already exact, before any poll.
            assert cq.maintained_result == db.query(sql)
        mgr.poll()
        assert cq.previous_result == db.query(sql)


class TestSnapshotProperty:
    @given(
        rows=st.lists(st.tuples(SMALL, st.integers(0, 9)), max_size=12),
        operations=ops(),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_everything(self, rows, operations):
        db, table = build(rows)
        ts = db.now()
        apply_ops(db, table, operations)
        restored = database_from_dict(database_to_dict(db))
        # Contents, clock, log windows all intact.
        assert restored.relation("t") == db.relation("t")
        assert restored.now() == db.now()
        original_window = deltas_since([db.table("t")], ts)
        restored_window = deltas_since([restored.table("t")], ts)
        assert original_window.keys() == restored_window.keys()
        for name in original_window:
            assert list(original_window[name]) == list(restored_window[name])
