"""Reconnect replay over real sockets (the PR's acceptance scenario).

A TCP connection is killed mid-stream by an injected fault while
updates keep arriving. The client reconnects with its last-applied
timestamp and must converge with the server:

* while the update-log window survives, the resume is a single
  consolidated DeltaMessage — no full-result bytes cross the wire and
  ``replay_fallbacks`` stays 0;
* once garbage collection has pruned past the client's horizon, the
  server must fall back to a complete result, counted in
  ``replay_fallbacks``.
"""

import asyncio

from repro.metrics import Metrics
from repro.net.client import CQSession
from repro.net.service import CQService
from repro.storage.database import Database
from repro.workload.stocks import StockMarket

WATCH = "SELECT name, price FROM stocks WHERE price > 800"
JOIN = (
    "SELECT s.name, t.shares FROM stocks s, trades t "
    "WHERE s.sid = t.sid AND s.price > 800"
)


def build_market(seed=13):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(300)
    return db, market


class TestDeltaReplay:
    def test_mid_stream_kill_resumes_differentially(self):
        async def scenario():
            db, market = build_market()
            service = CQService(db, heartbeat_interval=0.02)
            addr = await service.start()
            session = CQSession("c1", *addr, backoff_base=0.01)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(60)
            await service.refresh()
            await session.wait_applied("watch", db.now())
            # Wait until a heartbeat ack pinned the zone at the applied
            # refresh, so the replay window is exactly GC-protected.
            applied = session.applied["watch"]
            for __ in range(100):
                if service.server.zones.boundary("c1:watch") == applied:
                    break
                await asyncio.sleep(0.02)

            # Fault: kill every TCP connection mid-stream while more
            # updates commit.
            market.tick(60)
            severed = service.sever_connections()
            assert severed == 1
            market.tick(60)

            await session.wait_applied("watch", db.now(), timeout=10.0)
            assert session.result("watch") == db.query(WATCH)
            assert session.reconnects >= 1
            # Differential resume: the whole missed window arrived as
            # one delta, never as a full result.
            assert session.full_results == 0
            assert service.metrics[Metrics.REPLAYS] >= 1
            assert service.metrics[Metrics.REPLAY_FALLBACKS] == 0
            await session.close()
            await service.stop()

        asyncio.run(scenario())

    def test_join_subscription_survives_reconnect(self):
        async def scenario():
            db = Database()
            market = StockMarket(db, seed=29, with_trades=True)
            market.populate(300, trades_per_stock=1)
            service = CQService(db, heartbeat_interval=0.02)
            addr = await service.start()
            session = CQSession("c1", *addr, backoff_base=0.01)
            await session.connect()
            await session.register("positions", JOIN)
            market.tick(40)
            await service.refresh()
            await session.wait_applied("positions", db.now())
            market.tick(40)
            service.sever_connections()
            await session.wait_applied("positions", db.now(), timeout=10.0)
            assert session.result("positions") == db.query(JOIN)
            assert session.full_results == 0
            await session.close()
            await service.stop()

        asyncio.run(scenario())


class TestGCFallback:
    def test_pruned_window_falls_back_to_full_result(self):
        async def scenario():
            db, market = build_market()
            service = CQService(db)
            addr = await service.start()
            session = CQSession("c1", *addr, backoff_base=0.01)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(60)
            await service.refresh()
            await session.wait_applied("watch", db.now())

            # Disconnect cleanly: the server releases the client's
            # replay zones, so its window is no longer GC-protected.
            await session.close()
            for __ in range(100):
                if "c1" not in service.sessions():
                    break
                await asyncio.sleep(0.02)
            market.tick(60)
            pruned = service.server.collect_garbage(include_unwatched=True)
            assert pruned, "GC should have retired the client's window"
            assert (
                db.table("stocks").log.pruned_through
                > session.applied["watch"]
            )

            # A new session resumes from the stale horizon: the only
            # sound answer is a complete result.
            resumed = CQSession("c1", *addr, backoff_base=0.01)
            resumed.applied = dict(session.applied)
            resumed._registered = dict(session._registered)
            resumed._results = {
                name: result.copy()
                for name, result in session._results.items()
            }
            await resumed.connect()
            await resumed.wait_applied("watch", db.now(), timeout=10.0)
            assert resumed.result("watch") == db.query(WATCH)
            assert resumed.full_results == 1
            assert service.metrics[Metrics.REPLAY_FALLBACKS] == 1
            await resumed.close()
            await service.stop()

        asyncio.run(scenario())

    def test_intact_window_replays_after_clean_disconnect(self):
        """Control for the fallback case: same flow but no GC, so the
        resume stays differential."""

        async def scenario():
            db, market = build_market(seed=47)
            service = CQService(db)
            addr = await service.start()
            session = CQSession("c1", *addr, backoff_base=0.01)
            await session.connect()
            await session.register("watch", WATCH)
            market.tick(60)
            await service.refresh()
            await session.wait_applied("watch", db.now())
            await session.close()
            market.tick(60)

            resumed = CQSession("c1", *addr, backoff_base=0.01)
            resumed.applied = dict(session.applied)
            resumed._registered = dict(session._registered)
            resumed._results = {
                name: result.copy()
                for name, result in session._results.items()
            }
            await resumed.connect()
            await resumed.wait_applied("watch", db.now(), timeout=10.0)
            assert resumed.result("watch") == db.query(WATCH)
            assert resumed.full_results == 0
            assert service.metrics[Metrics.REPLAY_FALLBACKS] == 0
            await resumed.close()
            await service.stop()

        asyncio.run(scenario())
