"""Equivalence property harness for the shared-delta refresh scheduler.

The scheduler's contract is that sharing never shows: for any workload,
the sequential manager (planning from scratch each refresh), the
prepared-plan manager, the shared-cache scheduler, the parallel
scheduler (N=4), and complete re-evaluation must all produce the same
result sequence Q(S_1)..Q(S_n) — the paper's equivalence theorem lifted
from one refresh to the whole scheduling and compilation layers.

Schedules are randomized but fully deterministic given a seed: a
symbolic op script (inserts/deletes/modifies over 2–4 tables in
multi-statement transactions, interleaved with polls) is generated
once and replayed from scratch under every configuration. CQs span
selections, joins, and aggregates with mixed data (epsilon) and time
triggers. On divergence the harness shrinks to the shortest failing
script prefix before asserting, so failures arrive minimized.
"""

import random

import pytest

from repro import Database
from repro.metrics import Metrics
from repro.core import (
    AnyOf,
    CountEpsilon,
    CQManager,
    DeliveryMode,
    Engine,
    EpsilonTrigger,
    EvaluationStrategy,
    Every,
    EverySinceResult,
    OnEveryChange,
)
from repro.relational import AttributeType

CONFIGS = {
    # Seed semantics: no sharing, no grouping, strictly sequential,
    # every refresh planned from scratch.
    "sequential": dict(
        engine=Engine.DRA,
        manager=dict(
            share_deltas=False,
            group_triggers=False,
            parallelism=0,
            prepare_plans=False,
        ),
    ),
    # Registration-time compilation alone: same strict sequential
    # scheduling, but every refresh runs off the cached PreparedCQ
    # (with auto-created join indexes) instead of replanning.
    "prepared": dict(
        engine=Engine.DRA,
        manager=dict(share_deltas=False, group_triggers=False, parallelism=0),
    ),
    # The scheduler defaults: delta-batch cache + grouped triggers.
    "cached": dict(engine=Engine.DRA, manager=dict()),
    # Opt-in thread pool on top of the cache.
    "parallel": dict(engine=Engine.DRA, manager=dict(parallelism=4)),
    # Predicate-index fan-out: one routing pass per poll decides which
    # CQs can skip their refresh with a provably-empty delta, and CQs
    # with identical SQL share one DRA evaluation per window.
    "predindex": dict(engine=Engine.DRA, manager=dict(fanout=True)),
    # Columnar kernel evaluation (DESIGN.md §11): every DRA refresh
    # runs the struct-of-arrays pipelines instead of the per-row
    # interpreter; the notification sequence must be bit-identical.
    "columnar": dict(engine=Engine.DRA, manager=dict(columnar=True)),
    # The paper's baseline: complete re-evaluation + Diff.
    "reeval": dict(engine=Engine.REEVALUATE, manager=dict()),
}

N_SCHEDULES = 200
CHUNKS = 8


# -- schedule generation ------------------------------------------------------


def make_schedule(seed):
    """A symbolic (tables, cq_specs, steps) triple; replay-only state.

    Row targets for deletes/modifies are symbolic floats resolved
    against the live rows at replay time, so the same script applies
    identically to every fresh database.
    """
    rng = random.Random(seed)
    n_tables = rng.randint(2, 4)
    tables = [f"t{i}" for i in range(n_tables)]
    seed_rows = {
        name: [
            (rng.randrange(12), rng.randrange(100))
            for __ in range(rng.randint(6, 18))
        ]
        for name in tables
    }

    cq_specs = []
    for i, name in enumerate(tables):
        threshold = rng.randrange(20, 80)
        cq_specs.append(
            (f"sel_{name}", f"SELECT k, v FROM {name} WHERE v > {threshold}")
        )
    if n_tables >= 2:
        a, b = rng.sample(tables, 2)
        cq_specs.append(
            (
                "join",
                f"SELECT {a}.v AS va, {b}.v AS vb FROM {a}, {b} "
                f"WHERE {a}.k = {b}.k AND {a}.v > {rng.randrange(10, 50)}",
            )
        )
    agg_table = rng.choice(tables)
    cq_specs.append(
        (
            "agg",
            f"SELECT SUM(v) AS total, COUNT(*) AS n FROM {agg_table} "
            f"WHERE v > {rng.randrange(10, 60)}",
        )
    )

    trigger_specs = []
    for i in range(len(cq_specs)):
        roll = rng.random()
        if roll < 0.4:
            trigger_specs.append(("on_change",))
        elif roll < 0.6:
            trigger_specs.append(("every", rng.randint(2, 8)))
        elif roll < 0.8:
            trigger_specs.append(("epsilon", rng.randint(1, 6)))
        else:
            trigger_specs.append(
                ("mixed", rng.randint(3, 10), rng.randint(2, 8))
            )

    steps = []
    for __ in range(rng.randint(4, 8)):
        for __ in range(rng.randint(1, 3)):
            table = rng.choice(tables)
            ops = []
            for __ in range(rng.randint(1, 5)):
                roll = rng.random()
                if roll < 0.45:
                    ops.append(
                        ("insert", rng.randrange(12), rng.randrange(100))
                    )
                elif roll < 0.7:
                    ops.append(("delete", rng.random()))
                else:
                    ops.append(("modify", rng.random(), rng.randrange(100)))
            steps.append(("txn", table, ops))
        steps.append(("poll",))
    return tables, seed_rows, cq_specs, trigger_specs, steps


def build_trigger(spec):
    if spec[0] == "on_change":
        return OnEveryChange()
    if spec[0] == "every":
        return Every(spec[1])
    if spec[0] == "epsilon":
        return EpsilonTrigger(CountEpsilon(spec[1]))
    return AnyOf(EverySinceResult(spec[1]), EpsilonTrigger(CountEpsilon(spec[2])))


# -- replay -------------------------------------------------------------------


def run_schedule(schedule, config):
    """Replay one schedule under one configuration; return the
    observable signature (per-poll notification tuples with complete
    result states), every CQ's final result, and the number of delta
    consolidations the run performed."""
    tables, seed_rows, cq_specs, trigger_specs, steps = schedule
    db = Database()
    handles = {}
    for name in tables:
        table = db.create_table(
            name,
            [("k", AttributeType.INT), ("v", AttributeType.INT)],
            indexes=[("k",)],
        )
        table.insert_many(seed_rows[name])
        handles[name] = table

    mgr = CQManager(
        db,
        strategy=EvaluationStrategy.PERIODIC,
        auto_gc=True,
        metrics=Metrics(),
        **config["manager"],
    )
    for (cq_name, sql), trig_spec in zip(cq_specs, trigger_specs):
        mgr.register_sql(
            cq_name,
            sql,
            trigger=build_trigger(trig_spec),
            mode=DeliveryMode.COMPLETE,
            engine=config["engine"],
        )
    mgr.drain()

    signature = []
    for step in steps:
        if step[0] == "poll":
            for note in mgr.poll():
                rows = (
                    tuple(sorted(tuple(r.values) for r in note.result))
                    if note.result is not None
                    else None
                )
                signature.append(
                    (note.cq_name, note.kind.value, note.seq, note.ts, rows)
                )
            continue
        __, table_name, ops = step
        table = handles[table_name]
        with db.begin() as txn:
            for op in ops:
                live = [row.tid for row in table.rows()]
                if op[0] == "insert" or not live:
                    k, v = (op[1], op[2]) if op[0] == "insert" else (0, 0)
                    txn.insert_into(table, (k, v))
                elif op[0] == "delete":
                    tid = live[int(op[1] * len(live)) % len(live)]
                    if txn.read(table, tid) is not None:
                        txn.delete_from(table, tid)
                else:
                    tid = live[int(op[1] * len(live)) % len(live)]
                    row = txn.read(table, tid)
                    if row is not None:
                        txn.modify_in(table, tid, values=(row[0], op[2]))
    # Flush: 6 result-affecting commits per table (fills every epsilon,
    # wakes every data trigger; k 0..5 guarantees join matches) plus a
    # large clock advance (fires every time trigger), so the final poll
    # executes every CQ and complete re-evaluation is a valid anchor.
    for name in tables:
        with db.begin() as txn:
            for k in range(6):
                txn.insert_into(handles[name], (k, 99))
    db.clock.advance_to(db.now() + 100_000)
    for note in mgr.poll():
        rows = (
            tuple(sorted(tuple(r.values) for r in note.result))
            if note.result is not None
            else None
        )
        signature.append((note.cq_name, note.kind.value, note.seq, note.ts, rows))

    final = {}
    for cq_name, sql in cq_specs:
        result = mgr.get(cq_name).previous_result
        final[cq_name] = tuple(sorted(tuple(r.values) for r in result))
        assert result == db.query(sql), (
            f"{cq_name} diverged from complete re-evaluation"
        )
    return signature, final, mgr.metrics[Metrics.DELTA_BATCHES_COMPUTED]


def signatures(schedule):
    return {name: run_schedule(schedule, cfg) for name, cfg in CONFIGS.items()}


def mismatches(results):
    # Compare the observable outputs (signature + final results) only;
    # consolidation counts legitimately differ across configurations.
    base = results["sequential"][:2]
    return [name for name, got in results.items() if got[:2] != base]


def assert_no_extra_consolidations(seed, results):
    """Parallel workers racing the per-key cache must not consolidate
    any window more than once: the thread pool may not do more
    `delta_since` passes than the sequential cached scheduler."""
    cached = results["cached"][2]
    parallel = results["parallel"][2]
    assert parallel <= cached, (
        f"seed {seed}: parallel scheduler consolidated {parallel} delta "
        f"batches vs {cached} for the sequential cached scheduler — the "
        f"per-key cache admitted duplicate consolidations under races"
    )


def shrink(seed, schedule):
    """Shortest failing step-prefix of a diverging schedule."""
    tables, seed_rows, cq_specs, trigger_specs, steps = schedule
    for length in range(1, len(steps) + 1):
        prefix = steps[:length]
        if prefix[-1][0] != "poll":
            continue
        candidate = (tables, seed_rows, cq_specs, trigger_specs, prefix)
        try:
            results = signatures(candidate)
        except AssertionError:
            return candidate, ["<internal divergence>"]
        bad = mismatches(results)
        if bad:
            return candidate, bad
    return schedule, mismatches(signatures(schedule))


@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_scheduler_equivalence_randomized(chunk):
    per_chunk = N_SCHEDULES // CHUNKS
    for i in range(per_chunk):
        seed = 7_000 + chunk * per_chunk + i
        schedule = make_schedule(seed)
        results = signatures(schedule)
        assert_no_extra_consolidations(seed, results)
        bad = mismatches(results)
        if bad:
            shrunk, still_bad = shrink(seed, schedule)
            raise AssertionError(
                f"seed {seed}: configs {still_bad} diverge from sequential "
                f"on {len(shrunk[4])}-step schedule:\n"
                + "\n".join(repr(s) for s in shrunk[4])
            )


def test_all_four_configs_share_one_known_answer():
    """A deterministic spot check that the harness itself observes all
    four configurations doing real work (not vacuously equal)."""
    schedule = make_schedule(99)
    results = signatures(schedule)
    base_signature, base_final, __ = results["sequential"]
    assert base_signature, "schedule produced no notifications"
    assert mismatches(results) == []
    assert_no_extra_consolidations(99, results)
    # The cached configurations actually share (not vacuously equal).
    assert results["cached"][2] > 0
