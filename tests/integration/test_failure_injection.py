"""Failure injection: the system stays consistent when parts misbehave."""

import pytest

from repro import Database
from repro.core import CQManager, EvaluationStrategy
from repro.dra.assembly import WeightInvariantError, to_delta
from repro.errors import DeltaConsolidationError
from repro.relational import AttributeType, Schema, parse_query
from repro.relational.types import AttributeType as AT
from repro.storage.update_log import UpdateKind, UpdateRecord

WATCH = "SELECT name FROM stocks WHERE price > 120"


class TestObserverFailures:
    def test_commit_is_durable_before_observers_run(self, db, stocks):
        """An observer exception surfaces to the committer, but the
        transaction's effects and log records are already applied."""

        def exploding(table, records):
            raise RuntimeError("observer bug")

        stocks.subscribe(exploding)
        before = len(stocks)
        with pytest.raises(RuntimeError):
            stocks.insert((9, "SUN", 500))
        assert len(stocks) == before + 1  # the insert stuck
        assert stocks.log.latest_ts() == db.now()

    def test_unsubscribed_observer_never_fires_again(self, db, stocks):
        calls = []
        unsubscribe = stocks.subscribe(lambda t, r: calls.append(1))
        stocks.insert((8, "A", 1))
        unsubscribe()
        stocks.insert((9, "B", 1))
        assert len(calls) == 1

    def test_later_observers_still_run_after_recovery(self, db, stocks):
        """After a failing observer is removed, the system proceeds."""

        def exploding(table, records):
            raise RuntimeError("boom")

        unsubscribe = stocks.subscribe(exploding)
        with pytest.raises(RuntimeError):
            stocks.insert((9, "SUN", 500))
        unsubscribe()
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH)
        mgr.drain()
        stocks.insert((10, "MOON", 600))
        assert len(mgr.drain()) == 1


class TestCorruptDeltaInputs:
    def test_weight_invariant_two_inserts_same_tid(self):
        schema = Schema.of(("x", AT.INT))
        # Two +1 rows for one tid: impossible under set semantics.
        weights = {(1, (5,)): 1, (1, (6,)): 1}
        with pytest.raises(WeightInvariantError):
            to_delta(weights, schema, ts=1)

    def test_weight_invariant_out_of_range(self):
        schema = Schema.of(("x", AT.INT))
        with pytest.raises(WeightInvariantError):
            to_delta({(1, (5,)): 2}, schema, ts=1)
        with pytest.raises(WeightInvariantError):
            to_delta({(1, (5,)): -2}, schema, ts=1)

    def test_inconsistent_log_chain_detected(self):
        from repro.delta.differential import DeltaRelation

        schema = Schema.of(("x", AT.INT))
        records = [
            UpdateRecord(UpdateKind.INSERT, 1, None, (5,), 1, 1),
            UpdateRecord(UpdateKind.MODIFY, 1, (999,), (6,), 2, 2),  # bad old
        ]
        with pytest.raises(DeltaConsolidationError):
            DeltaRelation.from_records(schema, records)


class TestGCWindowViolations:
    def test_reading_pruned_window_raises_loudly(self, db, stocks):
        """Asking DRA for a window older than the GC horizon must fail,
        never silently return a partial delta."""
        from repro.dra.algorithm import dra_execute

        stale_ts = db.now()
        stocks.insert((9, "SUN", 500))
        stocks.log.prune_before(db.now())
        with pytest.raises(ValueError):
            dra_execute(parse_query(WATCH), db, since=stale_ts)

    def test_manager_never_reads_pruned_windows(self, db, stocks):
        """The manager's zone accounting keeps it inside safe windows
        even under aggressive auto-GC."""
        mgr = CQManager(db, auto_gc=True)
        mgr.register_sql("watch", WATCH)
        for i in range(20):
            stocks.insert((100 + i, "SUN", 500 + i))
        # 20 refreshes with GC after each: no window violation raised.
        assert mgr.get("watch").previous_result == db.query(WATCH)


class TestTransactionAbortPaths:
    def test_abort_leaves_no_log_records(self, db, stocks):
        before = len(stocks.log)
        txn = db.begin()
        txn.insert_into(stocks, (9, "SUN", 500))
        txn.abort()
        assert len(stocks.log) == before

    def test_abort_reserved_tids_never_reused(self, db, stocks):
        txn = db.begin()
        tid = txn.insert_into(stocks, (9, "SUN", 500))
        txn.abort()
        new_tid = stocks.insert((10, "MOON", 600))
        assert new_tid != tid  # gaps are fine; collisions are not

    def test_failed_validation_aborts_cleanly(self, db, stocks):
        from repro.errors import NoSuchTupleError

        with pytest.raises(NoSuchTupleError):
            with db.begin() as txn:
                txn.insert_into(stocks, (9, "SUN", 500))
                txn.delete_from(stocks, 424242)  # no such tuple
        # The whole transaction rolled back, including the valid insert.
        assert all(row.values[0] != 9 for row in stocks.rows())


class TestManagerReentrancy:
    def test_immediate_cq_registering_during_notification(self, db, stocks):
        """A notification callback that registers another CQ must not
        corrupt the manager's iteration state."""
        mgr = CQManager(db, strategy=EvaluationStrategy.IMMEDIATE)
        registered = []

        def register_more(note):
            if not registered and "second" not in mgr:
                registered.append(True)
                mgr.register_sql("second", WATCH)

        mgr.register_sql("first", WATCH, on_notify=register_more)
        stocks.insert((9, "SUN", 500))
        assert "second" in mgr
        stocks.insert((10, "MOON", 600))
        names = {n.cq_name for n in mgr.drain()}
        assert {"first", "second"} <= names
