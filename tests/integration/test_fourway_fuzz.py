"""Seeded heavy fuzz: 4-way join chains under multi-table churn.

Wider than the hypothesis suites (four operands, mixed index
availability, multi-transaction batches) at a scale hypothesis would
shrink away from. Thirty deterministic trials; every one must satisfy
the paper's equivalence theorem end to end.
"""

import random

import pytest

from repro import Database
from repro.relational import AttributeType, parse_query
from repro.delta.capture import deltas_since
from repro.delta.propagate import propagate
from repro.dra.algorithm import dra_execute

QUERY_SQL = (
    "SELECT a.v_a, d.v_d FROM a, b, c, d "
    "WHERE a.k = b.k AND b.k = c.k AND c.k = d.k "
    "AND a.v_a > 20 AND d.v_d < 90"
)


def run_trial(rng):
    db = Database()
    tables = []
    for name in ("a", "b", "c", "d"):
        table = db.create_table(
            name,
            [("k", AttributeType.INT), (f"v_{name}", AttributeType.INT)],
            indexes=[("k",)] if rng.random() < 0.7 else (),
        )
        table.insert_many(
            (rng.randrange(12), rng.randrange(100))
            for __ in range(rng.randrange(5, 60))
        )
        tables.append(table)
    query = parse_query(QUERY_SQL)
    previous = db.query(query)
    ts = db.now()
    for __ in range(rng.randrange(1, 5)):
        with db.begin() as txn:
            for table in tables:
                for __ in range(rng.randrange(0, 6)):
                    roll = rng.random()
                    live = [row.tid for row in table.rows()]
                    if roll < 0.4 or not live:
                        txn.insert_into(
                            table, (rng.randrange(12), rng.randrange(100))
                        )
                    elif roll < 0.7:
                        tid = rng.choice(live)
                        if txn.read(table, tid) is not None:
                            txn.delete_from(table, tid)
                    else:
                        tid = rng.choice(live)
                        if txn.read(table, tid) is not None:
                            txn.modify_in(
                                table,
                                tid,
                                values=(rng.randrange(12), rng.randrange(100)),
                            )
    deltas = deltas_since(tables, ts)
    result = dra_execute(query, db, deltas=deltas, previous=previous, ts=999)
    assert result.delta == propagate(query, db.relation, deltas, ts=999)
    assert result.complete_result() == db.query(query)


@pytest.mark.parametrize("seed", [20260704, 13, 4242])
def test_fourway_join_fuzz(seed):
    rng = random.Random(seed)
    for __ in range(10):
        run_trial(rng)
