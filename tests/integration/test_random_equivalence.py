"""Seeded randomized long-run equivalence (heavier than hypothesis).

Drives the full manager stack with thousands of random general updates
across several query shapes and asserts, after every poll, that the
differentially maintained result equals a from-scratch re-evaluation.
This is the paper's equivalence theorem exercised at system level.
"""

import random

import pytest

from repro import Database
from repro.core import CQManager, DeliveryMode, EvaluationStrategy
from repro.relational import AttributeType
from repro.workload.generators import TableWorkload
from repro.workload.stocks import StockMarket

QUERIES = [
    "SELECT sid, name, price FROM stocks WHERE price > 500",
    "SELECT name FROM stocks WHERE price > 250 AND price < 750",
    "SELECT sid, price FROM stocks WHERE ABS(price - 500) > 400",
    "SELECT SUM(price) AS total, COUNT(*) AS n FROM stocks WHERE price > 100",
    "SELECT name, COUNT(*) AS n FROM stocks GROUP BY name",
]


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_single_table_long_run(seed):
    db = Database()
    market = StockMarket(db, seed=seed)
    market.populate(300)
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    for i, sql in enumerate(QUERIES):
        mgr.register_sql(f"q{i}", sql, mode=DeliveryMode.COMPLETE)
    mgr.drain()
    for round_no in range(12):
        market.tick(40, p_insert=0.2, p_delete=0.2, volatility=200)
        mgr.poll()
        for i, sql in enumerate(QUERIES):
            assert mgr.get(f"q{i}").previous_result == db.query(sql), (
                f"divergence at round {round_no} on query {i} (seed {seed})"
            )


@pytest.mark.parametrize("seed", [404, 505])
def test_join_long_run(seed):
    db = Database()
    rng = random.Random(seed)
    r = db.create_table(
        "r", [("k", AttributeType.INT), ("v", AttributeType.INT)],
        indexes=[("k",)],
    )
    s = db.create_table(
        "s", [("k", AttributeType.INT), ("w", AttributeType.INT)],
        indexes=[("k",)],
    )
    make_row = lambda rng: (rng.randrange(40), rng.randrange(100))
    mutate = lambda rng, old: (old[0], rng.randrange(100))
    wl_r = TableWorkload(db, r, make_row, mutate, seed=seed)
    wl_s = TableWorkload(db, s, make_row, mutate, seed=seed + 1)
    wl_r.seed_rows(80)
    wl_s.seed_rows(80)

    sql = (
        "SELECT r.v, s.w FROM r, s WHERE r.k = s.k AND r.v > 30 AND s.w < 70"
    )
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("join", sql, mode=DeliveryMode.COMPLETE)
    mgr.drain()
    for round_no in range(10):
        wl_r.run(25, transaction_size=5)
        wl_s.run(25, transaction_size=5)
        mgr.poll()
        assert mgr.get("join").previous_result == db.query(sql), (
            f"join divergence at round {round_no} (seed {seed})"
        )


def test_three_way_join_long_run():
    db = Database()
    tables = {}
    for name in ("a", "b", "c"):
        tables[name] = db.create_table(
            name, [("k", AttributeType.INT), (f"v_{name}", AttributeType.INT)],
            indexes=[("k",)],
        )
    workloads = {
        name: TableWorkload(
            db,
            table,
            lambda rng: (rng.randrange(15), rng.randrange(50)),
            lambda rng, old: (old[0], rng.randrange(50)),
            seed=hash(name) % 1000,
        )
        for name, table in tables.items()
    }
    for workload in workloads.values():
        workload.seed_rows(30)
    sql = (
        "SELECT a.v_a, b.v_b, c.v_c FROM a, b, c "
        "WHERE a.k = b.k AND b.k = c.k AND a.v_a > 10"
    )
    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("three", sql, mode=DeliveryMode.COMPLETE)
    mgr.drain()
    for round_no in range(8):
        for workload in workloads.values():
            workload.run(15, transaction_size=5)
        mgr.poll()
        assert mgr.get("three").previous_result == db.query(sql), (
            f"three-way divergence at round {round_no}"
        )
