"""Tests for cross-site delta replication (federated deployment)."""

import pytest

from repro import Database
from repro.core import CQManager, DeliveryMode, EvaluationStrategy
from repro.net.simnet import SimulatedNetwork
from repro.relational import AttributeType
from repro.sources.base import MirrorAdapter
from repro.sources.remote import RemoteTableSource
from repro.workload.stocks import StockMarket


@pytest.fixture
def sites():
    producer = Database()
    consumer = Database()
    market = StockMarket(producer, seed=66)
    market.populate(100)
    return producer, consumer, market


class TestReplication:
    def test_mirror_converges(self, sites):
        producer, consumer, market = sites
        source = RemoteTableSource(market.stocks)
        adapter = MirrorAdapter(consumer, "stocks", source)
        adapter.sync()
        assert adapter.table.current.values_set() == (
            market.stocks.current.values_set()
        )
        market.tick(40, p_insert=0.2, p_delete=0.2)
        adapter.sync()
        assert adapter.table.current.values_set() == (
            market.stocks.current.values_set()
        )

    def test_incremental_pulls_only_ship_suffix(self, sites):
        producer, consumer, market = sites
        net = SimulatedNetwork()
        source = RemoteTableSource(market.stocks, network=net)
        adapter = MirrorAdapter(consumer, "stocks", source)
        adapter.sync()
        initial_bytes = net.total.bytes
        market.tick(5)
        adapter.sync()
        incremental_bytes = net.total.bytes - initial_bytes
        assert incremental_bytes < initial_bytes / 5

    def test_empty_pull_costs_only_envelope(self, sites):
        producer, consumer, market = sites
        net = SimulatedNetwork()
        source = RemoteTableSource(market.stocks, network=net)
        adapter = MirrorAdapter(consumer, "stocks", source)
        adapter.sync()
        before = net.total.bytes
        adapter.sync()  # nothing new
        assert net.total.bytes - before <= 64

    def test_zone_ts_tracks_replication_horizon(self, sites):
        producer, consumer, market = sites
        source = RemoteTableSource(market.stocks)
        adapter = MirrorAdapter(consumer, "stocks", source)
        assert source.zone_ts() == 0
        adapter.sync()
        assert source.zone_ts() == producer.now()

    def test_producer_gc_respects_replica_zone(self, sites):
        """The replica registers as a watcher in the producer's GC."""
        from repro.core.gc import ActiveDeltaZones

        producer, consumer, market = sites
        source = RemoteTableSource(market.stocks)
        adapter = MirrorAdapter(consumer, "stocks", source)
        adapter.sync()
        zones = ActiveDeltaZones(producer)
        zones.register("replica", ("stocks",), source.zone_ts())
        market.tick(10)
        zones.collect()
        # The 10 new records survive for the next pull.
        adapter.sync()
        assert adapter.table.current.values_set() == (
            market.stocks.current.values_set()
        )


class TestFederatedCQ:
    def test_cq_over_two_remote_sites(self):
        """A consumer joins tables owned by two autonomous producers."""
        site_a = Database()
        site_b = Database()
        consumer = Database()
        stocks = site_a.create_table(
            "stocks",
            [("sid", AttributeType.INT), ("name", AttributeType.STR),
             ("price", AttributeType.INT)],
        )
        trades = site_b.create_table(
            "trades", [("sid", AttributeType.INT), ("qty", AttributeType.INT)]
        )
        stocks.insert_many([(1, "DEC", 156), (2, "IBM", 80)])
        trades.insert_many([(1, 5), (2, 7)])

        adapters = [
            MirrorAdapter(consumer, "stocks", RemoteTableSource(stocks)),
            MirrorAdapter(consumer, "trades", RemoteTableSource(trades)),
        ]
        for adapter in adapters:
            adapter.sync()
        consumer.table("stocks").create_index(["sid"])
        consumer.table("trades").create_index(["sid"])

        mgr = CQManager(consumer, strategy=EvaluationStrategy.PERIODIC)
        sql = (
            "SELECT s.name, t.qty FROM stocks s, trades t "
            "WHERE s.sid = t.sid AND s.price > 100"
        )
        mgr.register_sql("watch", sql, mode=DeliveryMode.COMPLETE)
        mgr.drain()

        # Independent updates at each site.
        stocks.insert((3, "SUN", 500))
        trades.insert((3, 9))
        tid = next(r.tid for r in stocks.rows() if r.values[0] == 2)
        stocks.modify(tid, updates={"price": 200})  # IBM joins the band
        for adapter in adapters:
            adapter.sync()
        notes = mgr.poll()
        result = notes[0].result
        assert result.values_set() == {
            ("DEC", 5),
            ("SUN", 9),
            ("IBM", 7),
        }
        assert result == consumer.query(sql)
