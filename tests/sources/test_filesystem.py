"""Tests for the simulated file system and its translator."""

import pytest

from repro.errors import SourceError
from repro.sources.base import MirrorAdapter
from repro.sources.filesystem import (
    FILES_SCHEMA,
    FileSystemSource,
    SimulatedFileSystem,
)
from repro.storage.update_log import UpdateKind


@pytest.fixture
def fs():
    return SimulatedFileSystem()


class TestFileOps:
    def test_create_and_exists(self, fs):
        fs.create("/a/b.txt", 10)
        assert fs.exists("/a/b.txt")
        assert fs.size_of("/a/b.txt") == 10

    def test_paths_normalized(self, fs):
        fs.create("a//b/../c.txt", 3)
        assert fs.exists("/a/c.txt")

    def test_create_existing_rejected(self, fs):
        fs.create("/x", 1)
        with pytest.raises(SourceError):
            fs.create("/x", 1)

    def test_write_changes_size_and_mtime(self, fs):
        fs.create("/x", 1)
        events = fs.drain_journal()
        fs.write("/x", 50)
        event = fs.drain_journal()[0]
        assert event.kind is UpdateKind.MODIFY
        assert event.values[2] == 50
        assert event.values[3] > events[0].values[3]

    def test_write_missing_rejected(self, fs):
        with pytest.raises(SourceError):
            fs.write("/nope", 1)

    def test_touch_creates_or_bumps(self, fs):
        fs.touch("/x")
        assert fs.exists("/x")
        first = fs.drain_journal()
        fs.touch("/x")
        event = fs.drain_journal()[0]
        assert event.kind is UpdateKind.MODIFY

    def test_remove(self, fs):
        fs.create("/x", 1)
        fs.remove("/x")
        assert not fs.exists("/x")
        with pytest.raises(SourceError):
            fs.remove("/x")

    def test_rename_is_delete_plus_create(self, fs):
        fs.create("/old", 7)
        fs.drain_journal()
        fs.rename("/old", "/new")
        kinds = [e.kind for e in fs.drain_journal()]
        assert kinds == [UpdateKind.DELETE, UpdateKind.INSERT]
        assert fs.size_of("/new") == 7

    def test_rename_collision_rejected(self, fs):
        fs.create("/a", 1)
        fs.create("/b", 1)
        with pytest.raises(SourceError):
            fs.rename("/a", "/b")

    def test_listdir(self, fs):
        fs.create("/d/a", 1)
        fs.create("/d/b", 1)
        fs.create("/other/c", 1)
        assert fs.listdir("/d") == ["/d/a", "/d/b"]

    def test_root_is_not_a_file(self, fs):
        with pytest.raises(SourceError):
            fs.create("/", 1)


class TestTranslator:
    def test_schema(self, fs):
        assert FileSystemSource(fs).schema == FILES_SCHEMA

    def test_end_to_end_file_monitoring(self, db, fs):
        """The paper's §5.5 scenario: FS updates drive a CQ via DRA."""
        from repro.core import CQManager

        adapter = MirrorAdapter(db, "files", FileSystemSource(fs))
        fs.create("/var/log/app.log", 10)
        adapter.sync()
        mgr = CQManager(db)
        mgr.register_sql(
            "big-files", "SELECT path, size FROM files WHERE size > 100"
        )
        mgr.drain()
        fs.write("/var/log/app.log", 5000)
        fs.create("/tmp/small", 5)
        adapter.sync()
        notes = mgr.drain()
        assert len(notes) == 1
        inserted = notes[0].delta.insertions().values_set()
        assert inserted == {("/var/log/app.log", 5000)}
