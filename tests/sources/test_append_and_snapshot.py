"""Tests for the append-only feed and snapshot-diff sources."""

import pytest

from repro.errors import SourceError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.sources.append_log import AppendOnlyFeed
from repro.sources.base import MirrorAdapter
from repro.sources.snapshot import CSVSnapshotSource, SnapshotDiffSource
from repro.storage.update_log import UpdateKind

QUOTE_SCHEMA = Schema.of(("sym", AttributeType.STR), ("px", AttributeType.FLOAT))


class TestAppendOnlyFeed:
    def test_append_assigns_keys(self):
        feed = AppendOnlyFeed(QUOTE_SCHEMA)
        k1 = feed.append(("IBM", 75.0))
        k2 = feed.append(("DEC", 150.0))
        assert k2 > k1

    def test_drain_clears(self):
        feed = AppendOnlyFeed(QUOTE_SCHEMA)
        feed.append_many([("IBM", 75.0), ("DEC", 150.0)])
        events = feed.drain()
        assert len(events) == 2
        assert all(e.kind is UpdateKind.INSERT for e in events)
        assert feed.drain() == []

    def test_mutations_forbidden(self):
        feed = AppendOnlyFeed(QUOTE_SCHEMA)
        key = feed.append(("IBM", 75.0))
        with pytest.raises(SourceError):
            feed.delete(key)
        with pytest.raises(SourceError):
            feed.modify(key, ("IBM", 80.0))

    def test_rows_validated(self):
        feed = AppendOnlyFeed(QUOTE_SCHEMA)
        with pytest.raises(Exception):
            feed.append((75.0, "IBM"))

    def test_mirrors_into_table(self, db):
        feed = AppendOnlyFeed(QUOTE_SCHEMA)
        adapter = MirrorAdapter(db, "quotes", feed)
        feed.append(("IBM", 75.0))
        adapter.sync()
        assert adapter.table.current.values_set() == {("IBM", 75.0)}


class TestSnapshotDiff:
    def test_first_snapshot_all_inserts(self):
        source = SnapshotDiffSource(QUOTE_SCHEMA, ["sym"])
        counts = source.publish([("IBM", 75.0), ("DEC", 150.0)])
        assert counts == {"insert": 2, "modify": 0, "delete": 0}

    def test_diff_against_previous(self):
        source = SnapshotDiffSource(QUOTE_SCHEMA, ["sym"])
        source.publish([("IBM", 75.0), ("DEC", 150.0)])
        source.drain()
        counts = source.publish([("IBM", 81.0), ("HPQ", 33.0)])
        assert counts == {"insert": 1, "modify": 1, "delete": 1}
        kinds = {e.key: e.kind for e in source.drain()}
        assert kinds[("IBM",)] is UpdateKind.MODIFY
        assert kinds[("HPQ",)] is UpdateKind.INSERT
        assert kinds[("DEC",)] is UpdateKind.DELETE

    def test_unchanged_rows_produce_nothing(self):
        source = SnapshotDiffSource(QUOTE_SCHEMA, ["sym"])
        source.publish([("IBM", 75.0)])
        source.drain()
        assert source.publish([("IBM", 75.0)]) == {
            "insert": 0,
            "modify": 0,
            "delete": 0,
        }

    def test_duplicate_keys_rejected(self):
        source = SnapshotDiffSource(QUOTE_SCHEMA, ["sym"])
        with pytest.raises(SourceError):
            source.publish([("IBM", 75.0), ("IBM", 80.0)])

    def test_key_columns_required(self):
        with pytest.raises(SourceError):
            SnapshotDiffSource(QUOTE_SCHEMA, [])

    def test_mirrors_into_table(self, db):
        source = SnapshotDiffSource(QUOTE_SCHEMA, ["sym"])
        adapter = MirrorAdapter(db, "quotes", source)
        source.publish([("IBM", 75.0)])
        adapter.sync()
        source.publish([("IBM", 80.0)])
        adapter.sync()
        assert adapter.table.current.values_set() == {("IBM", 80.0)}


class TestCSVSnapshot:
    def test_header_checked(self):
        source = CSVSnapshotSource(QUOTE_SCHEMA, ["sym"])
        with pytest.raises(SourceError):
            source.publish_csv("wrong,header\nIBM,75.0")

    def test_values_coerced(self):
        schema = Schema.of(
            ("sym", AttributeType.STR),
            ("px", AttributeType.FLOAT),
            ("n", AttributeType.INT),
            ("hot", AttributeType.BOOL),
        )
        source = CSVSnapshotSource(schema, ["sym"])
        source.publish_csv("sym,px,n,hot\nIBM, 75.5 ,3,true")
        event = source.drain()[0]
        assert event.values == ("IBM", 75.5, 3, True)

    def test_empty_csv_clears_state(self):
        source = CSVSnapshotSource(QUOTE_SCHEMA, ["sym"])
        source.publish_csv("sym,px\nIBM,75.0")
        source.drain()
        counts = source.publish_csv("sym,px")
        assert counts["delete"] == 1

    def test_arity_mismatch_rejected(self):
        source = CSVSnapshotSource(QUOTE_SCHEMA, ["sym"])
        with pytest.raises(SourceError):
            source.publish_csv("sym,px\nIBM")
