"""Tests for the mirror adapter (DIOM translator, paper Section 5.5)."""

import pytest

from repro.errors import SourceError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.storage.update_log import UpdateKind
from repro.sources.base import MirrorAdapter, Source, SourceEvent

SCHEMA = Schema.of(("key", AttributeType.STR), ("value", AttributeType.INT))


class ScriptedSource(Source):
    """A source whose events the test pushes in directly."""

    def __init__(self, schema=SCHEMA):
        self._schema = schema
        self.pending = []

    @property
    def schema(self):
        return self._schema

    def drain(self):
        out, self.pending = self.pending, []
        return out


def insert(key, value):
    return SourceEvent(UpdateKind.INSERT, key, (key, value))


def modify(key, value):
    return SourceEvent(UpdateKind.MODIFY, key, (key, value))


def delete(key):
    return SourceEvent(UpdateKind.DELETE, key, None)


class TestSync:
    def test_insert_modify_delete_cycle(self, db):
        source = ScriptedSource()
        adapter = MirrorAdapter(db, "mirror", source)
        source.pending = [insert("a", 1), insert("b", 2)]
        assert adapter.sync() == 2
        assert len(adapter.table) == 2
        source.pending = [modify("a", 10), delete("b")]
        adapter.sync()
        values = adapter.table.current.values_set()
        assert values == {("a", 10)}

    def test_sync_is_one_transaction(self, db):
        source = ScriptedSource()
        adapter = MirrorAdapter(db, "mirror", source)
        batches = []
        adapter.table.subscribe(lambda t, records: batches.append(len(records)))
        source.pending = [insert("a", 1), insert("b", 2), delete_after := modify("a", 3)]
        adapter.sync()
        assert batches == [3]

    def test_empty_sync_no_transaction(self, db):
        source = ScriptedSource()
        adapter = MirrorAdapter(db, "mirror", source)
        ts = db.now()
        assert adapter.sync() == 0
        assert db.now() == ts

    def test_events_feed_cq_deltas(self, db):
        from repro.delta.capture import delta_since

        source = ScriptedSource()
        adapter = MirrorAdapter(db, "mirror", source)
        source.pending = [insert("a", 1)]
        adapter.sync()
        ts = db.now()
        source.pending = [modify("a", 5), insert("b", 2)]
        adapter.sync()
        delta = delta_since(adapter.table, ts)
        assert len(delta) == 2


class TestResilience:
    def test_modify_of_unknown_key_coerced_to_insert(self, db):
        source = ScriptedSource()
        adapter = MirrorAdapter(db, "mirror", source)
        source.pending = [modify("ghost", 7)]
        adapter.sync()
        assert adapter.coerced_inserts == 1
        assert adapter.table.current.values_set() == {("ghost", 7)}

    def test_delete_of_unknown_key_dropped(self, db):
        source = ScriptedSource()
        adapter = MirrorAdapter(db, "mirror", source)
        source.pending = [delete("ghost")]
        adapter.sync()
        assert adapter.dropped_deletes == 1
        assert len(adapter.table) == 0

    def test_reannounced_insert_becomes_modify(self, db):
        source = ScriptedSource()
        adapter = MirrorAdapter(db, "mirror", source)
        source.pending = [insert("a", 1)]
        adapter.sync()
        source.pending = [insert("a", 99)]
        adapter.sync()
        assert adapter.table.current.values_set() == {("a", 99)}
        assert len(adapter.table) == 1


class TestWiring:
    def test_existing_table_schema_must_match(self, db):
        db.create_table("mirror", [("different", AttributeType.STR)])
        with pytest.raises(SourceError):
            MirrorAdapter(db, "mirror", ScriptedSource())

    def test_existing_compatible_table_reused(self, db):
        table = db.create_table("mirror", SCHEMA)
        adapter = MirrorAdapter(db, "mirror", ScriptedSource())
        assert adapter.table is table

    def test_event_validation(self):
        with pytest.raises(SourceError):
            SourceEvent(UpdateKind.INSERT, "k", None)
