"""Tests for the four trigger forms of paper Section 3.1."""

import pytest

from repro.errors import TriggerError
from repro.relational.expressions import col, lit
from repro.relational.predicates import ge
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.core.epsilon import CountEpsilon
from repro.core.triggers import (
    AllOf,
    AnyOf,
    At,
    Custom,
    EpsilonTrigger,
    Every,
    OnEveryChange,
    OnUpdate,
    TriggerContext,
)

SCHEMA = Schema.of(("amount", AttributeType.INT))


def ctx(now=0, last=0, executions=1, pending=False):
    return TriggerContext(now, last, executions, pending)


def insert_delta(amount, ts=1):
    return DeltaRelation(SCHEMA, [DeltaEntry(ts, None, (amount,), ts)])


class TestOnEveryChange:
    def test_fires_only_with_pending(self):
        trigger = OnEveryChange()
        assert trigger.should_fire(ctx(pending=True))
        assert not trigger.should_fire(ctx(pending=False))


class TestEvery:
    def test_fires_after_interval(self):
        trigger = Every(10)
        assert not trigger.should_fire(ctx(now=9, last=0))
        assert trigger.should_fire(ctx(now=10, last=0))

    def test_anchored_at_last_execution(self):
        trigger = Every(10)
        assert not trigger.should_fire(ctx(now=19, last=10))
        assert trigger.should_fire(ctx(now=20, last=10))

    def test_positive_interval_required(self):
        with pytest.raises(TriggerError):
            Every(0)


class TestAt:
    def test_fires_at_each_time_once(self):
        trigger = At([5, 10])
        assert not trigger.should_fire(ctx(now=4))
        assert trigger.should_fire(ctx(now=5))
        trigger.notify_fired(ctx(now=5))
        assert not trigger.should_fire(ctx(now=6))
        assert trigger.should_fire(ctx(now=10))
        trigger.notify_fired(ctx(now=10))
        assert trigger.exhausted

    def test_late_poll_collapses_missed_times(self):
        trigger = At([5, 10])
        assert trigger.should_fire(ctx(now=99))
        trigger.notify_fired(ctx(now=99))
        assert trigger.exhausted  # both schedule points consumed


class TestOnUpdate:
    def test_paper_million_dollar_deposit(self):
        # "Q should be executed whenever a deposit of one million
        # dollars is made."
        trigger = OnUpdate("accounts", ge(col("amount"), lit(1_000_000)))
        trigger.observe("accounts", insert_delta(500))
        assert not trigger.should_fire(ctx())
        trigger.observe("accounts", insert_delta(2_000_000))
        assert trigger.should_fire(ctx())
        trigger.notify_fired(ctx())
        assert not trigger.should_fire(ctx())

    def test_ignores_other_tables(self):
        trigger = OnUpdate("accounts", ge(col("amount"), lit(1)))
        trigger.observe("stocks", insert_delta(100))
        assert not trigger.should_fire(ctx())

    def test_delete_side_opt_in(self):
        delete = DeltaRelation(SCHEMA, [DeltaEntry(1, (999,), None, 1)])
        ignoring = OnUpdate("t", ge(col("amount"), lit(500)))
        ignoring.observe("t", delete)
        assert not ignoring.should_fire(ctx())
        watching = OnUpdate("t", ge(col("amount"), lit(500)), include_deletes=True)
        watching.observe("t", delete)
        assert watching.should_fire(ctx())

    def test_modify_tests_new_side(self):
        modify = DeltaRelation(SCHEMA, [DeltaEntry(1, (1,), (600,), 1)])
        trigger = OnUpdate("t", ge(col("amount"), lit(500)))
        trigger.observe("t", modify)
        assert trigger.should_fire(ctx())


class TestEpsilonTrigger:
    def test_delegates_to_spec(self):
        trigger = EpsilonTrigger(CountEpsilon(2))
        trigger.observe("t", insert_delta(1))
        assert not trigger.should_fire(ctx())
        trigger.observe("t", insert_delta(2))
        assert trigger.should_fire(ctx())
        trigger.notify_fired(ctx())
        assert not trigger.should_fire(ctx())  # spec reset


class TestCompound:
    def test_any_of(self):
        trigger = Every(100) | OnEveryChange()
        assert trigger.should_fire(ctx(now=1, pending=True))
        assert not trigger.should_fire(ctx(now=1, pending=False))
        assert trigger.should_fire(ctx(now=100, pending=False))

    def test_all_of(self):
        trigger = Every(10) & OnEveryChange()
        assert not trigger.should_fire(ctx(now=10, pending=False))
        assert not trigger.should_fire(ctx(now=5, pending=True))
        assert trigger.should_fire(ctx(now=10, pending=True))

    def test_observe_and_fired_propagate(self):
        epsilon = CountEpsilon(1)
        trigger = AnyOf(EpsilonTrigger(epsilon), Every(1000))
        trigger.observe("t", insert_delta(1))
        assert epsilon.exceeded()
        trigger.notify_fired(ctx())
        assert not epsilon.exceeded()

    def test_empty_compound_rejected(self):
        with pytest.raises(TriggerError):
            AnyOf()
        with pytest.raises(TriggerError):
            AllOf()


class TestCustom:
    def test_callable(self):
        trigger = Custom(lambda c: c.executions >= 3)
        assert not trigger.should_fire(ctx(executions=2))
        assert trigger.should_fire(ctx(executions=3))
