"""Tests for manager introspection (describe / status_report)."""

from repro.core import AfterExecutions, CQManager, Engine

WATCH = "SELECT name FROM stocks WHERE price > 120"


def test_describe_fields(db, stocks):
    mgr = CQManager(db)
    mgr.register_sql("watch", WATCH, engine=Engine.REEVALUATE)
    records = mgr.describe()
    assert len(records) == 1
    record = records[0]
    assert record["name"] == "watch"
    assert record["status"] == "active"
    assert record["engine"] == "reevaluate"
    assert record["tables"] == "stocks"
    assert record["results"] == 1
    assert record["result_rows"] == 3
    assert record["pending_updates"] is False


def test_describe_pending_updates(db, stocks):
    from repro.core import EvaluationStrategy

    mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
    mgr.register_sql("watch", WATCH)
    stocks.insert((9, "SUN", 500))
    assert mgr.describe()[0]["pending_updates"] is True
    mgr.poll()
    assert mgr.describe()[0]["pending_updates"] is False


def test_describe_stopped_cq(db, stocks):
    mgr = CQManager(db)
    mgr.register_sql("watch", WATCH, stop=AfterExecutions(1))
    mgr.poll()
    record = mgr.describe()[0]
    assert record["status"] == "stopped"
    assert record["pending_updates"] is False


def test_status_report_renders(db, stocks):
    mgr = CQManager(db)
    mgr.register_sql("watch", WATCH)
    report = mgr.status_report()
    assert "watch" in report
    assert "active" in report
    assert "stocks" in report
