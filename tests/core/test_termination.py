"""Tests for Stop conditions (paper Section 3.1)."""

import pytest

from repro.errors import TriggerError
from repro.core.termination import AfterExecutions, AtTime, Never, WhenCondition
from repro.core.triggers import TriggerContext


def ctx(now=0, executions=1):
    return TriggerContext(now, 0, executions, False)


def test_never():
    assert not Never().should_stop(ctx(now=10**9, executions=10**6))


def test_at_time():
    stop = AtTime(100)
    assert not stop.should_stop(ctx(now=99))
    assert stop.should_stop(ctx(now=100))
    assert stop.should_stop(ctx(now=101))


def test_after_executions():
    stop = AfterExecutions(3)
    assert not stop.should_stop(ctx(executions=2))
    assert stop.should_stop(ctx(executions=3))


def test_after_executions_positive():
    with pytest.raises(TriggerError):
        AfterExecutions(0)


def test_when_condition():
    stop = WhenCondition(lambda c: c.now > 5 and c.executions > 1)
    assert not stop.should_stop(ctx(now=10, executions=1))
    assert stop.should_stop(ctx(now=10, executions=2))
