"""Tests for result-sequence history and the EverySinceResult trigger."""

import pytest

from repro.core import CQManager, EvaluationStrategy, NotificationKind
from repro.core.triggers import Every, EverySinceResult, TriggerContext
from repro.errors import TriggerError

WATCH = "SELECT name FROM stocks WHERE price > 120"


class TestHistory:
    def test_disabled_by_default(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH)
        stocks.insert((9, "SUN", 500))
        assert mgr.history("watch") == []

    def test_sequence_retained(self, db, stocks):
        mgr = CQManager(db, history_limit=10)
        mgr.register_sql("watch", WATCH)
        stocks.insert((8, "AAA", 500))
        stocks.insert((9, "BBB", 500))
        history = mgr.history("watch")
        assert [n.kind for n in history] == [
            NotificationKind.INITIAL,
            NotificationKind.REFRESH,
            NotificationKind.REFRESH,
        ]
        assert [n.seq for n in history] == [1, 2, 3]

    def test_bounded(self, db, stocks):
        mgr = CQManager(db, history_limit=2)
        mgr.register_sql("watch", WATCH)
        for i in range(5):
            stocks.insert((100 + i, "SUN", 500 + i))
        history = mgr.history("watch")
        assert len(history) == 2
        assert history[-1].seq == 6

    def test_unknown_cq_empty(self, db, stocks):
        assert CQManager(db, history_limit=3).history("nope") == []


class TestEverySinceResult:
    def ctx(self, now, last_exec, last_result):
        return TriggerContext(now, last_exec, 1, True, last_result_ts=last_result)

    def test_anchored_on_result_not_execution(self):
        trigger = EverySinceResult(10)
        # Executed recently (t=9) but last result long ago (t=0).
        assert trigger.should_fire(self.ctx(now=10, last_exec=9, last_result=0))
        assert not trigger.should_fire(self.ctx(now=10, last_exec=0, last_result=5))

    def test_every_is_anchored_on_execution(self):
        trigger = Every(10)
        assert not trigger.should_fire(self.ctx(now=10, last_exec=9, last_result=0))

    def test_positive_interval_required(self):
        with pytest.raises(TriggerError):
            EverySinceResult(0)

    def test_empty_refreshes_do_not_reset_the_clock(self, db, stocks):
        """Irrelevant churn keeps executing but produces no result; a
        result-anchored trigger keeps counting from the last *result*."""
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH, trigger=EverySinceResult(5))
        mgr.drain()
        last_result_ts = db.now()
        for __ in range(6):
            stocks.insert((1000 + db.now(), "LOW", 10))  # irrelevant
            mgr.poll()
        # Time advanced past the interval with executions but no
        # results; a relevant update now fires immediately.
        assert db.now() - last_result_ts >= 5
        stocks.insert((9999, "SUN", 500))
        notes = mgr.poll()
        assert len(notes) == 1
