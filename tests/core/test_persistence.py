"""Tests for manager checkpoints (serialize/restore the whole site)."""

import pytest

from repro import Database
from repro.core import (
    AfterExecutions,
    AnyOf,
    AtTime,
    CQManager,
    Custom,
    DeliveryMode,
    Engine,
    EpsilonTrigger,
    EvaluationStrategy,
    Every,
    NetChangeEpsilon,
    OnUpdate,
    UnserializableCQ,
    load_manager,
    manager_from_dict,
    manager_to_dict,
    save_manager,
)
from repro.core.persistence import trigger_from_dict, trigger_to_dict
from repro.core.triggers import At
from repro.relational import AttributeType
from repro.relational.expressions import col, lit
from repro.relational.predicates import ge
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 600"


def build_manager(strategy=EvaluationStrategy.PERIODIC):
    db = Database()
    market = StockMarket(db, seed=88)
    market.populate(150)
    mgr = CQManager(db, strategy=strategy)
    return db, market, mgr


class TestTriggerRoundTrip:
    @pytest.mark.parametrize(
        "trigger",
        [
            Every(10),
            At([5, 10, 20]),
            EpsilonTrigger(NetChangeEpsilon(100.0, "price", table="stocks")),
            AnyOf(Every(5), EpsilonTrigger(NetChangeEpsilon(9.0, "price"))),
            OnUpdate("stocks", ge(col("price"), lit(900))),
        ],
    )
    def test_roundtrip_structure(self, trigger):
        restored = trigger_from_dict(trigger_to_dict(trigger))
        assert trigger_to_dict(restored) == trigger_to_dict(trigger)

    def test_epsilon_divergence_survives(self):
        spec = NetChangeEpsilon(100.0, "price")
        spec._divergence = 42.0
        restored = trigger_from_dict(trigger_to_dict(EpsilonTrigger(spec)))
        assert restored.spec.divergence == 42.0

    def test_at_consumed_schedule_survives(self):
        from repro.core.triggers import TriggerContext

        trigger = At([5, 10])
        trigger.notify_fired(TriggerContext(6, 0, 1, False))
        restored = trigger_from_dict(trigger_to_dict(trigger))
        assert not restored.should_fire(TriggerContext(7, 0, 1, False))
        assert restored.should_fire(TriggerContext(10, 0, 1, False))

    def test_custom_trigger_rejected(self):
        with pytest.raises(UnserializableCQ):
            trigger_to_dict(Custom(lambda ctx: True))


class TestManagerRoundTrip:
    def test_restored_manager_resumes_differentially(self):
        db, market, mgr = build_manager()
        mgr.register_sql("watch", WATCH, mode=DeliveryMode.COMPLETE)
        mgr.drain()
        market.tick(30)
        mgr.poll()

        # Updates after the last refresh, before the checkpoint: this
        # pending window must survive.
        market.tick(20)
        checkpoint = manager_to_dict(mgr)

        restored = manager_from_dict(checkpoint)
        cq = restored.get("watch")
        assert cq.executions == mgr.get("watch").executions
        notes = restored.poll()
        assert notes, "the pending window should produce a refresh"
        assert cq.previous_result == restored.db.query(WATCH)

    def test_restored_results_match_original_progression(self):
        db, market, mgr = build_manager()
        mgr.register_sql("watch", WATCH, mode=DeliveryMode.COMPLETE)
        mgr.drain()
        market.tick(25)
        checkpoint = manager_to_dict(mgr)

        # Original and restored process the same pending window.
        original_notes = mgr.poll()
        restored = manager_from_dict(checkpoint)
        restored_notes = restored.poll()
        orig = {(e.tid, e.old, e.new) for e in original_notes[0].delta}
        rest = {(e.tid, e.old, e.new) for e in restored_notes[0].delta}
        assert orig == rest

    def test_aggregate_cq_restores(self):
        db, market, mgr = build_manager()
        mgr.register_sql(
            "sum",
            "SELECT SUM(price) AS total FROM stocks",
            trigger=EpsilonTrigger(NetChangeEpsilon(1_000.0, "price")),
            mode=DeliveryMode.COMPLETE,
        )
        initial = mgr.drain()[0].result
        market.tick(10)  # small drift: below epsilon
        restored = manager_from_dict(manager_to_dict(mgr))
        # Below epsilon: no refresh, the reported value stays pinned at
        # the last execution's answer — including across the restore.
        assert restored.poll() == []
        assert restored.get("sum").previous_result == initial
        # Push the restored site past epsilon: it fires, exactly.
        restored.db.table("stocks").insert((9999, "BIG", 999))
        restored.db.table("stocks").insert((9998, "BIG2", 999))
        notes = restored.poll()
        expected = restored.db.query("SELECT SUM(price) AS total FROM stocks")
        assert notes and notes[0].result == expected

    def test_eager_cq_restores(self):
        db, market, mgr = build_manager()
        mgr.register_sql(
            "eager", WATCH, engine=Engine.EAGER, mode=DeliveryMode.COMPLETE
        )
        mgr.drain()
        market.tick(15)
        restored = manager_from_dict(manager_to_dict(mgr))
        cq = restored.get("eager")
        assert cq.maintained_result == restored.db.query(WATCH)
        market2 = restored.db  # further updates flow through observers
        restored.db.table("stocks").insert((9999, "NEW", 950))
        assert cq.maintained_result == restored.db.query(WATCH)

    def test_stopped_cq_stays_stopped(self):
        db, market, mgr = build_manager()
        mgr.register_sql("watch", WATCH, stop=AfterExecutions(1))
        mgr.poll()
        assert mgr.get("watch").status.value == "stopped"
        restored = manager_from_dict(manager_to_dict(mgr))
        assert restored.get("watch").status.value == "stopped"
        restored.db.table("stocks").insert((9999, "NEW", 950))
        assert restored.drain() == []

    def test_strategy_and_gc_flags_survive(self):
        db, market, mgr = build_manager(EvaluationStrategy.IMMEDIATE)
        mgr.auto_gc = True
        mgr.register_sql("watch", WATCH)
        restored = manager_from_dict(manager_to_dict(mgr))
        assert restored.strategy is EvaluationStrategy.IMMEDIATE
        assert restored.auto_gc is True

    def test_file_roundtrip(self, tmp_path):
        db, market, mgr = build_manager()
        mgr.register_sql("watch", WATCH, trigger=Every(3), stop=AtTime(10**6))
        path = str(tmp_path / "site.json")
        save_manager(mgr, path)
        restored = load_manager(path)
        assert "watch" in restored
        assert isinstance(restored.get("watch").trigger, Every)

    def test_unserializable_stop_rejected(self):
        from repro.core import WhenCondition

        db, market, mgr = build_manager()
        mgr.register_sql(
            "watch", WATCH, stop=WhenCondition(lambda ctx: False)
        )
        with pytest.raises(UnserializableCQ):
            manager_to_dict(mgr)


class TestCheckpointExtras:
    def test_history_limit_and_result_ts_survive(self):
        from repro.core import EverySinceResult

        db = Database()
        market = StockMarket(db, seed=89)
        market.populate(100)
        mgr = CQManager(
            db, strategy=EvaluationStrategy.PERIODIC, history_limit=5
        )
        mgr.register_sql("watch", WATCH, trigger=EverySinceResult(3))
        mgr.drain()
        market.tick(20)
        mgr.poll()  # produces a result, pinning last_result_ts
        restored = manager_from_dict(manager_to_dict(mgr))
        assert restored.history_limit == 5
        assert (
            restored._last_result_ts["watch"]
            == mgr._last_result_ts["watch"]
        )
        # History recording resumes on the restored manager.
        restored.db.table("stocks").insert((9999, "NEW", 950))
        restored.poll(advance_to=restored.db.now() + 10)
        assert restored.history("watch")
