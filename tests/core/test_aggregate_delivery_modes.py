"""Delivery modes applied to aggregate CQs (rollup notifications)."""

import pytest

from repro.core import CQManager, DeliveryMode
from repro.relational import AttributeType

ROLLUP = "SELECT name, SUM(price) AS total FROM stocks GROUP BY name"


@pytest.fixture
def mgr_with_mode(db, stocks):
    def build(mode):
        mgr = CQManager(db)
        mgr.register_sql("rollup", ROLLUP, mode=mode)
        mgr.drain()
        return mgr

    return build


def test_differential_mode(db, stocks, mgr_with_mode):
    mgr = mgr_with_mode(DeliveryMode.DIFFERENTIAL)
    stocks.insert((9, "DEC", 100))  # DEC group total changes
    note = mgr.drain()[0]
    entry = note.delta.get(("DEC",))
    assert entry.old == ("DEC", 306) and entry.new == ("DEC", 406)


def test_insertions_only_mode(db, stocks, mgr_with_mode):
    mgr = mgr_with_mode(DeliveryMode.INSERTIONS_ONLY)
    stocks.insert((9, "NEW", 42))  # a brand-new group appears
    note = mgr.drain()[0]
    assert ("NEW", 42) in note.result.values_set()
    assert note.delta is None


def test_deletions_only_mode(db, stocks, stocks_tids, mgr_with_mode):
    mgr = mgr_with_mode(DeliveryMode.DELETIONS_ONLY)
    stocks.delete(stocks_tids[92394])  # QLI group disappears
    note = mgr.drain()[0]
    assert note.result.values_set() == {("QLI", 145)}


def test_complete_mode(db, stocks, mgr_with_mode):
    mgr = mgr_with_mode(DeliveryMode.COMPLETE)
    stocks.insert((9, "DEC", 100))
    note = mgr.drain()[0]
    assert note.result == db.query(ROLLUP)
    assert note.delta is not None
