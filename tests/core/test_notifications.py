"""Tests for the Notification value object."""

from repro.core.continual_query import DeliveryMode
from repro.core.results import Notification, NotificationKind
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation

SCHEMA = Schema.of(("x", AttributeType.INT))


def relation(n):
    return Relation.from_pairs(SCHEMA, [(i, (i,)) for i in range(n)])


def delta():
    return DeltaRelation(SCHEMA, [DeltaEntry(1, None, (5,), 1)])


class TestSummary:
    def test_initial(self):
        note = Notification(
            "watch", NotificationKind.INITIAL, 1, 5,
            DeliveryMode.COMPLETE, result=relation(3),
        )
        text = note.summary()
        assert "watch" in text and "#1" in text and "3 rows" in text
        assert "initial" in text

    def test_refresh_with_delta(self):
        note = Notification(
            "watch", NotificationKind.REFRESH, 2, 9,
            DeliveryMode.DIFFERENTIAL, delta=delta(),
        )
        assert "DeltaRelation" in note.summary()
        assert "[9]" in note.summary()

    def test_refresh_with_result_only(self):
        note = Notification(
            "watch", NotificationKind.REFRESH, 2, 9,
            DeliveryMode.INSERTIONS_ONLY, result=relation(2),
        )
        assert "2 rows" in note.summary()

    def test_stopped(self):
        note = Notification(
            "watch", NotificationKind.STOPPED, 4, 11, DeliveryMode.DIFFERENTIAL
        )
        assert "stopped" in note.summary()

    def test_repr_contains_summary(self):
        note = Notification(
            "watch", NotificationKind.STOPPED, 4, 11, DeliveryMode.DIFFERENTIAL
        )
        assert note.summary() in repr(note)
