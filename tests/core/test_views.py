"""Tests for materialized views over CQs (nested continual queries)."""

import pytest

from repro.errors import RegistrationError
from repro.core import CQManager, DeliveryMode, EvaluationStrategy
from repro.core.views import MaterializedView
from repro.workload.stocks import StockMarket
from repro import Database

HOT = "SELECT sid, name, price FROM stocks WHERE price > 700"


@pytest.fixture
def setup():
    db = Database()
    market = StockMarket(db, seed=314)
    market.populate(300)
    mgr = CQManager(db, strategy=EvaluationStrategy.IMMEDIATE)
    return db, market, mgr


class TestViewMaintenance:
    def test_backfill_at_creation(self, setup):
        db, market, mgr = setup
        mgr.register_sql("hot", HOT)
        view = MaterializedView(mgr, "hot", "hot_view")
        assert view.table.current.values_set() == db.query(HOT).values_set()

    def test_view_tracks_upstream(self, setup):
        db, market, mgr = setup
        mgr.register_sql("hot", HOT)
        view = MaterializedView(mgr, "hot", "hot_view")
        for __ in range(5):
            market.tick(30, p_insert=0.2, p_delete=0.2)
            assert (
                view.table.current.values_set() == db.query(HOT).values_set()
            )

    def test_requires_delta_delivery(self, setup):
        db, market, mgr = setup
        mgr.register_sql("ins", HOT, mode=DeliveryMode.INSERTIONS_ONLY)
        with pytest.raises(RegistrationError):
            MaterializedView(mgr, "ins", "v")

    def test_close_freezes_view(self, setup):
        db, market, mgr = setup
        mgr.register_sql("hot", HOT)
        view = MaterializedView(mgr, "hot", "hot_view")
        frozen = view.table.current.values_set()
        view.close()
        market.tick(30)
        assert view.table.current.values_set() == frozen


class TestNestedCQs:
    def test_cq_over_a_view(self, setup):
        """The Alert-style nesting: an aggregate CQ over a CQ's result."""
        db, market, mgr = setup
        mgr.register_sql("hot", HOT)
        MaterializedView(mgr, "hot", "hot_view")
        count_cq = mgr.register_sql(
            "hot-count",
            "SELECT COUNT(*) AS n FROM hot_view",
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        market.tick(40, p_insert=0.3, p_delete=0.2)
        expected = len(db.query(HOT))
        assert count_cq.previous_result.get(()) == (expected,)

    def test_view_joined_with_base_table(self, setup):
        db, market, mgr = setup
        owners = db.create_table(
            "owners",
            [("sid", __import__("repro").AttributeType.INT),
             ("owner", __import__("repro").AttributeType.STR)],
        )
        with db.begin() as txn:
            for row in list(market.stocks.rows())[:100]:
                txn.insert_into(owners, (row.values[0], f"o{row.values[0]}"))
        mgr.register_sql("hot", HOT)
        MaterializedView(mgr, "hot", "hot_view")
        join_sql = (
            "SELECT v.name, o.owner FROM hot_view v, owners o "
            "WHERE v.sid = o.sid"
        )
        join_cq = mgr.register_sql("hot-owners", join_sql,
                                   mode=DeliveryMode.COMPLETE)
        mgr.drain()
        market.tick(30, p_insert=0.2, p_delete=0.2)
        assert join_cq.previous_result == db.query(join_sql)

    def test_two_level_nesting(self, setup):
        """view over a view: CQ -> view -> CQ -> view -> CQ."""
        db, market, mgr = setup
        mgr.register_sql("hot", HOT)
        MaterializedView(mgr, "hot", "level1")
        mgr.register_sql(
            "very-hot", "SELECT sid, name, price FROM level1 WHERE price > 900"
        )
        MaterializedView(mgr, "very-hot", "level2")
        top = mgr.register_sql(
            "very-hot-count",
            "SELECT COUNT(*) AS n FROM level2",
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        for __ in range(4):
            market.tick(40, volatility=300)
        expected = len(
            db.query("SELECT sid FROM stocks WHERE price > 900")
        )
        assert top.previous_result.get(()) == (expected,)

    def test_view_over_aggregate_cq(self, setup):
        db, market, mgr = setup
        agg_sql = (
            "SELECT name, COUNT(*) AS n FROM stocks GROUP BY name"
        )
        mgr.register_sql("by-name", agg_sql, mode=DeliveryMode.COMPLETE)
        view = MaterializedView(mgr, "by-name", "name_counts")
        market.tick(30, p_insert=0.5)
        expected = db.query(agg_sql).values_set()
        assert view.table.current.values_set() == expected
