"""Unit tests for the shared-delta refresh scheduler.

Covers the three sharing layers in isolation: the per-poll delta-batch
cache, footprint-grouped trigger skipping, and the parallel refresh
path's re-sequencing — plus the drop-in guarantee that the default
configuration reproduces the sequential manager's behavior exactly.
"""

import pytest

from repro import Database
from repro.core import (
    AfterExecutions,
    AnyOf,
    CQManager,
    CountEpsilon,
    Custom,
    DeltaBatchCache,
    EpsilonTrigger,
    EvaluationStrategy,
    Every,
    OnEveryChange,
    OnUpdate,
    is_data_only_trigger,
    is_skip_safe,
)
from repro.core.continual_query import ContinualQuery
from repro.metrics import Metrics
from repro.relational.expressions import col, lit
from repro.relational.predicates import ge
from repro.relational.sql import parse_query
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 120"


def _cq(trigger=None, stop=None):
    return ContinualQuery(
        "cq", parse_query(WATCH), trigger=trigger, stop=stop
    )


class TestDeltaBatchCache:
    def test_one_consolidation_per_window(self, db, stocks):
        metrics = Metrics()
        ts0 = db.now()
        stocks.insert((7, "NEW", 500))
        now = db.now()
        cache = DeltaBatchCache(db, metrics)
        first = cache.deltas(("stocks",), ts0, now)
        second = cache.deltas(("stocks",), ts0, now)
        assert first["stocks"] is second["stocks"]
        assert cache.misses == 1 and cache.hits == 1
        assert metrics[Metrics.DELTA_BATCHES_COMPUTED] == 1
        assert metrics[Metrics.DELTA_BATCHES_REUSED] == 1

    def test_distinct_windows_are_distinct_batches(self, db, stocks):
        ts0 = db.now()
        stocks.insert((7, "NEW", 500))
        ts1 = db.now()
        stocks.insert((8, "NEW2", 600))
        now = db.now()
        cache = DeltaBatchCache(db, None)
        wide = cache.batch("stocks", ts0, now)
        narrow = cache.batch("stocks", ts1, now)
        assert len(wide) == 2 and len(narrow) == 1
        assert cache.misses == 2 and cache.hits == 0

    def test_empty_batches_are_skipped_like_deltas_since(self, db, stocks):
        now = db.now()
        cache = DeltaBatchCache(db, None)
        assert cache.deltas(("stocks",), now, now) == {}

    def test_matches_private_consolidation(self, db, stocks, stocks_tids):
        from repro.delta.capture import deltas_since

        ts0 = db.now()
        stocks.modify(stocks_tids[120992], updates={"price": 149})
        stocks.delete(stocks_tids[92394])
        cache = DeltaBatchCache(db, None)
        shared = cache.deltas(("stocks",), ts0, db.now())
        private = deltas_since([stocks], ts0)
        assert shared["stocks"] == private["stocks"]


class TestSkipClassification:
    def test_data_only_triggers(self):
        assert is_data_only_trigger(OnEveryChange())
        assert is_data_only_trigger(EpsilonTrigger(CountEpsilon(3)))
        assert is_data_only_trigger(
            OnUpdate("stocks", ge(col("price"), lit(100)))
        )
        assert is_data_only_trigger(
            AnyOf(OnEveryChange(), EpsilonTrigger(CountEpsilon(3)))
        )

    def test_time_and_custom_triggers_are_not(self):
        assert not is_data_only_trigger(Every(5))
        assert not is_data_only_trigger(Custom(lambda ctx: True))
        assert not is_data_only_trigger(AnyOf(OnEveryChange(), Every(5)))

    def test_skip_safe_requires_never_stop(self):
        assert is_skip_safe(_cq())
        assert not is_skip_safe(_cq(stop=AfterExecutions(3)))
        assert not is_skip_safe(_cq(trigger=Every(5)))


class TestGroupedTriggerEvaluation:
    def test_quiet_groups_are_skipped(self, db, stocks):
        metrics = Metrics()
        mgr = CQManager(
            db, strategy=EvaluationStrategy.PERIODIC, metrics=metrics
        )
        for i in range(4):
            mgr.register_sql(f"q{i}", WATCH)
        mgr.drain()
        mgr.poll()  # nothing committed since registration
        assert metrics[Metrics.GROUPS_SKIPPED] == 1
        # A commit wakes the whole group again.
        stocks.insert((9, "SUN", 500))
        before = metrics[Metrics.GROUPS_SKIPPED]
        notes = mgr.poll()
        assert metrics[Metrics.GROUPS_SKIPPED] == before
        assert len(notes) == 4

    def test_time_triggered_cq_still_fires_on_quiet_poll(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("timed", WATCH, trigger=Every(2))
        mgr.drain()
        db.clock.advance_to(db.now() + 10)
        mgr.poll()
        # Executed (even though nothing changed, so no notification).
        assert mgr.get("timed").last_execution_ts == db.now()

    def test_quiet_poll_skips_are_unobservable(self, db, stocks):
        skipping = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        skipping.register_sql("watch", WATCH)
        assert skipping.poll() and not skipping.poll()
        stocks.insert((9, "SUN", 500))
        assert len(skipping.poll()) == 1

    def test_group_skipping_can_be_disabled(self, db, stocks):
        metrics = Metrics()
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            metrics=metrics,
            group_triggers=False,
        )
        mgr.register_sql("watch", WATCH)
        mgr.poll()
        assert metrics[Metrics.GROUPS_SKIPPED] == 0


class TestParallelRefresh:
    @pytest.mark.parametrize("parallelism", [2, 4, 8])
    def test_matches_sequential_notifications(self, parallelism):
        def run(parallelism):
            db = Database()
            market = StockMarket(db, seed=11)
            market.populate(150)
            mgr = CQManager(
                db,
                strategy=EvaluationStrategy.PERIODIC,
                parallelism=parallelism,
            )
            for i in range(10):
                mgr.register_sql(
                    f"q{i}",
                    f"SELECT sid, price FROM stocks WHERE price > {50 * i}",
                )
            mgr.drain()
            out = []
            for __ in range(4):
                market.tick(25)
                out.append(
                    [
                        (n.cq_name, n.kind.value, n.seq, n.ts)
                        for n in mgr.poll()
                    ]
                )
            return out

        assert run(parallelism) == run(0)

    def test_callbacks_fire_in_registration_order(self, db, stocks):
        mgr = CQManager(
            db, strategy=EvaluationStrategy.PERIODIC, parallelism=4
        )
        seen = []
        for i in range(6):
            mgr.register_sql(
                f"q{i}",
                WATCH,
                on_notify=lambda n: seen.append(n.cq_name),
            )
        seen.clear()
        stocks.insert((9, "SUN", 500))
        mgr.poll()
        assert seen == [f"q{i}" for i in range(6)]

    def test_parallel_refresh_results_are_correct(self):
        db = Database()
        market = StockMarket(db, seed=5)
        market.populate(120)
        mgr = CQManager(
            db, strategy=EvaluationStrategy.PERIODIC, parallelism=4
        )
        queries = {
            f"q{i}": f"SELECT sid, price FROM stocks WHERE price > {100 * i}"
            for i in range(8)
        }
        for name, sql in queries.items():
            mgr.register_sql(name, sql)
        for __ in range(5):
            market.tick(30, p_insert=0.2, p_delete=0.2)
            mgr.poll()
        for name, sql in queries.items():
            assert mgr.get(name).previous_result == db.query(sql)

    def test_rejects_negative_parallelism(self, db):
        with pytest.raises(ValueError):
            CQManager(db, parallelism=-1)

    def test_worker_exception_still_delivers_surviving_callbacks(
        self, db, stocks
    ):
        """One CQ raising mid-pool must not eat the other CQs'
        notifications: their refreshes completed, so their callbacks
        fire (in registration order) before the exception propagates."""
        mgr = CQManager(
            db, strategy=EvaluationStrategy.PERIODIC, parallelism=2
        )
        seen = []
        for i in range(4):
            mgr.register_sql(
                f"q{i}",
                WATCH,
                on_notify=lambda n: seen.append(n.cq_name),
            )
        seen.clear()

        original = mgr._maybe_execute

        def exploding(cq, now):
            if cq.name == "q1":
                raise RuntimeError("q1 refresh blew up")
            original(cq, now)

        mgr._maybe_execute = exploding
        stocks.insert((9, "SUN", 500))
        with pytest.raises(RuntimeError, match="q1 refresh blew up"):
            mgr.poll()
        assert seen == ["q0", "q2", "q3"]
        # Deferred-delivery mode is off again: the next poll behaves
        # normally.
        mgr._maybe_execute = original
        seen.clear()
        stocks.insert((10, "MOON", 501))
        mgr.poll()
        assert seen == [f"q{i}" for i in range(4)]
