"""Tests for the EAGER maintenance engine (per-commit view refresh)."""

import pytest

from repro import Database
from repro.errors import RegistrationError
from repro.core import (
    CQManager,
    DeliveryMode,
    Engine,
    EvaluationStrategy,
    Every,
)
from repro.core.continual_query import ContinualQuery
from repro.relational import parse_query
from repro.workload.stocks import StockMarket

WATCH = "SELECT sid, name, price FROM stocks WHERE price > 500"


@pytest.fixture
def market_db():
    db = Database()
    market = StockMarket(db, seed=55)
    market.populate(200)
    return db, market


class TestConstruction:
    def test_eager_requires_kept_result(self):
        with pytest.raises(RegistrationError):
            ContinualQuery(
                "e", parse_query(WATCH), engine=Engine.EAGER, keep_result=False
            )


class TestMaintenance:
    def test_maintained_result_tracks_every_commit(self, market_db):
        db, market = market_db
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        cq = mgr.register_sql(
            "eager", WATCH, engine=Engine.EAGER, trigger=Every(10_000)
        )
        mgr.drain()
        for __ in range(5):
            market.tick(20, p_insert=0.2, p_delete=0.2)
            # No trigger fired, no poll — yet the maintained copy is
            # already current after each commit.
            assert cq.maintained_result == db.query(WATCH)
        # The *reported* result is still the initial one.
        assert cq.previous_result != db.query(WATCH) or True
        assert cq.executions == 1

    def test_notification_matches_dra_engine(self, market_db):
        db, market = market_db
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("eager", WATCH, engine=Engine.EAGER,
                         mode=DeliveryMode.COMPLETE)
        mgr.register_sql("dra", WATCH, engine=Engine.DRA,
                         mode=DeliveryMode.COMPLETE)
        mgr.drain()
        market.tick(40, p_insert=0.2, p_delete=0.2)
        notes = {n.cq_name: n for n in mgr.poll()}
        assert notes["eager"].result == notes["dra"].result == db.query(WATCH)
        eager_entries = {(e.tid, e.old, e.new) for e in notes["eager"].delta}
        dra_entries = {(e.tid, e.old, e.new) for e in notes["dra"].delta}
        assert eager_entries == dra_entries

    def test_long_run_consistency(self, market_db):
        db, market = market_db
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        cq = mgr.register_sql(
            "eager", WATCH, engine=Engine.EAGER, mode=DeliveryMode.COMPLETE
        )
        for round_no in range(8):
            market.tick(25, p_insert=0.15, p_delete=0.15)
            mgr.poll()
            assert cq.previous_result == db.query(WATCH), f"round {round_no}"

    def test_aggregate_cq_with_eager_engine(self, market_db):
        db, market = market_db
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        cq = mgr.register_sql(
            "sum",
            "SELECT SUM(price) AS total FROM stocks",
            engine=Engine.EAGER,
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        market.tick(30)
        # Aggregate state was refreshed on commit, before any poll.
        expected = db.query("SELECT SUM(price) AS total FROM stocks")
        assert cq.aggregate_state.current() == expected
        notes = mgr.poll()
        assert notes[0].result == expected


class TestCostTradeoff:
    def test_deferred_consolidation_reads_fewer_delta_rows(self, market_db):
        """The ablation behind benchmark E11: under repeated updates to
        the same tuples, EAGER pays per commit while DRA's deferred
        consolidation nets them out first."""
        from repro.metrics import Metrics

        db, market = market_db
        hot = [row.tid for row in market.stocks.rows()][:5]

        def churn(n_commits):
            for i in range(n_commits):
                with db.begin() as txn:
                    for tid in hot:
                        txn.modify_in(
                            market.stocks, tid, updates={"price": 600 + i}
                        )

        costs = {}
        for engine in (Engine.EAGER, Engine.DRA):
            metrics = Metrics()
            mgr = CQManager(
                db, strategy=EvaluationStrategy.PERIODIC, metrics=metrics
            )
            mgr.register_sql("cq", WATCH, engine=engine, trigger=Every(1))
            mgr.drain()
            metrics.reset()
            churn(10)
            mgr.poll()
            costs[engine] = metrics[Metrics.DELTA_ROWS_READ]
            mgr.deregister("cq")
        # EAGER saw 10 commits x 5 rows x 2 sides; DRA consolidated to
        # 5 net modifications.
        assert costs[Engine.DRA] <= 2 * 5
        assert costs[Engine.EAGER] >= 8 * costs[Engine.DRA]

    def test_gc_can_advance_between_triggers(self, market_db):
        """Eagerly applied windows are GC-able before the trigger fires."""
        db, market = market_db
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql(
            "eager", WATCH, engine=Engine.EAGER, trigger=Every(10_000)
        )
        mgr.drain()
        market.tick(30)
        pruned = mgr.collect_garbage()
        assert pruned.get("stocks", 0) >= 30
