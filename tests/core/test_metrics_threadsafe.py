"""Concurrency stress: exact counters and atomic log pruning.

The parallel refresh path makes two shared structures hot: every
worker charges the same :class:`Metrics`, and one CQ's post-refresh
garbage collection can race another CQ's delta consolidation. These
tests hammer both from many threads and assert exactness — lost counter
updates or a half-pruned ``since`` read are hard failures, not flakes.
"""

import threading

from repro import Database
from repro.core import CQManager, EvaluationStrategy
from repro.metrics import Histogram, Metrics
from repro.storage.update_log import UpdateKind, UpdateLog, UpdateRecord
from repro.workload.stocks import StockMarket

THREADS = 8


def _run_threads(target, n=THREADS):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMetricsThreadSafety:
    def test_count_totals_are_exact_under_contention(self):
        metrics = Metrics()
        per_thread = 10_000

        def worker(i):
            for __ in range(per_thread):
                metrics.count("shared")
                metrics.count(f"mine_{i}", 2)

        _run_threads(worker)
        assert metrics["shared"] == THREADS * per_thread
        for i in range(THREADS):
            assert metrics[f"mine_{i}"] == 2 * per_thread

    def test_merge_of_per_worker_counters_is_exact(self):
        workers = [Metrics() for __ in range(THREADS)]

        def worker(i):
            for __ in range(5_000):
                workers[i].count("ops")
                workers[i].observe("latency", i + 1)

        _run_threads(worker)
        total = Metrics()
        total.count("ops", 17)  # pre-existing counts survive merges
        for m in workers:
            total.merge(m)
        assert total["ops"] == THREADS * 5_000 + 17
        hist = total.histogram("latency")
        assert hist.count == THREADS * 5_000
        assert hist.min == 1 and hist.max == THREADS

    def test_concurrent_observe_is_exact(self):
        metrics = Metrics()

        def worker(i):
            for v in range(1_000):
                metrics.observe("lat", v % 50)

        _run_threads(worker)
        assert metrics.histogram("lat").count == THREADS * 1_000

    def test_truthiness_contract(self):
        # Engine code guards charging with a bare `if metrics:`; a
        # freshly minted per-worker instance must already be truthy.
        assert bool(Metrics())
        m = Metrics()
        m.count("x")
        m.reset()
        assert bool(m)


class TestHistogramPercentileEdges:
    def test_percentile_never_exceeds_observed_max(self):
        # All samples identical: the covering bucket's upper bound is
        # 128, but no observed value exceeds 100 — the estimate must
        # clamp to the true max, not overshoot to the bucket edge.
        h = Histogram()
        for __ in range(1_000):
            h.observe(100)
        assert h.percentile(50) == 100
        assert h.percentile(99) == 100
        assert h.percentile(100) == 100

    def test_percentile_zero_is_min(self):
        h = Histogram()
        for v in (7, 40, 3, 900):
            h.observe(v)
        assert h.percentile(0) == 3
        assert h.percentile(100) == 900

    def test_percentile_of_empty_histogram_is_zero(self):
        h = Histogram()
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 0.0

    def test_interior_percentiles_stay_bucket_bounds(self):
        # Clamping only bites at the top: interior percentiles still
        # report the covering bucket's upper bound.
        h = Histogram()
        for v in (1, 2, 3, 4, 5, 6, 7, 8):
            h.observe(v)
        assert h.percentile(50) == 4  # bucket e=2 covers (2, 4]
        assert h.percentile(100) == 8

    def test_percentile_bounds_hold_for_mixed_samples(self):
        h = Histogram()
        samples = [3, 3, 3, 3, 3, 3, 3, 3, 3, 100]
        for v in samples:
            h.observe(v)
        for p in (0, 10, 50, 90, 99, 100):
            estimate = h.percentile(p)
            assert min(samples) <= estimate <= max(samples)


class TestLogPruneAtomicity:
    def test_since_never_sees_half_pruned_log(self):
        log = UpdateLog()
        total = 4_000
        for ts in range(1, total + 1):
            log.append(
                UpdateRecord(UpdateKind.INSERT, ts, None, (ts,), ts, ts)
            )
        boundary = total // 2
        errors = []

        def reader(i):
            for __ in range(300):
                records = log.since(boundary)
                # Atomic view: a suffix starting exactly after the
                # boundary, ending at the latest record.
                if records and (
                    records[0].ts != boundary + 1
                    or records[-1].ts != total
                    or len(records) != total - boundary
                ):
                    errors.append([r.ts for r in records[:3]])

        def pruner(i):
            for ts in range(0, boundary + 1, 10):
                log.prune_before(ts)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=pruner, args=(0,)))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert log.pruned_through == boundary

    def test_parallel_refresh_with_auto_gc_stays_consistent(self):
        """8-way parallel refreshes with aggressive GC: every CQ's
        maintained result must match complete re-evaluation and no
        refresh may trip the pruned-region guard."""
        db = Database()
        market = StockMarket(db, seed=23)
        market.populate(150)
        metrics = Metrics()
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            auto_gc=True,
            metrics=metrics,
            parallelism=THREADS,
        )
        queries = {
            f"q{i}": f"SELECT sid, price FROM stocks WHERE price > {60 * i}"
            for i in range(16)
        }
        for name, sql in queries.items():
            mgr.register_sql(name, sql)
        for __ in range(6):
            market.tick(40, p_insert=0.2, p_delete=0.2)
            mgr.poll()  # raises if any worker saw a half-pruned log
        for name, sql in queries.items():
            assert mgr.get(name).previous_result == db.query(sql)
        assert metrics[Metrics.CQ_REFRESHES] >= 6 * len(queries)
        assert metrics[Metrics.DELTA_BATCHES_REUSED] > 0
