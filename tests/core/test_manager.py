"""Tests for the CQ manager: the full continual-query lifecycle."""

import pytest

from tests.conftest import run_example1_transaction

from repro.errors import RegistrationError
from repro.core import (
    AfterExecutions,
    AtTime,
    CQManager,
    CQStatus,
    DeliveryMode,
    Engine,
    EpsilonTrigger,
    EvaluationStrategy,
    Every,
    NetChangeEpsilon,
    NotificationKind,
    OnUpdate,
    ResultDriftEpsilon,
)
from repro.relational import AttributeType
from repro.relational.expressions import col, lit
from repro.relational.predicates import ge

WATCH_SQL = "SELECT sid, name, price FROM stocks WHERE price > 120"


class TestRegistration:
    def test_initial_notification(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL)
        notes = mgr.drain()
        assert len(notes) == 1
        assert notes[0].kind is NotificationKind.INITIAL
        assert len(notes[0].result) == 3

    def test_duplicate_name_rejected(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL)
        with pytest.raises(RegistrationError):
            mgr.register_sql("watch", WATCH_SQL)

    def test_unknown_table_rejected(self, db):
        mgr = CQManager(db)
        with pytest.raises(Exception):
            mgr.register_sql("watch", "SELECT x FROM nope")

    def test_callback_invoked(self, db, stocks):
        seen = []
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL, on_notify=seen.append)
        stocks.insert((9, "SUN", 500))
        assert [n.kind for n in seen] == [
            NotificationKind.INITIAL,
            NotificationKind.REFRESH,
        ]

    def test_lookup_api(self, db, stocks):
        mgr = CQManager(db)
        cq = mgr.register_sql("watch", WATCH_SQL)
        assert "watch" in mgr and mgr.get("watch") is cq
        assert len(mgr) == 1 and mgr.active() == [cq]


class TestImmediateStrategy:
    def test_refresh_on_relevant_commit(self, db, stocks, stocks_tids):
        mgr = CQManager(db, strategy=EvaluationStrategy.IMMEDIATE)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        run_example1_transaction(db, stocks, stocks_tids)
        notes = mgr.drain()
        assert len(notes) == 1
        assert len(notes[0].delta) == 2

    def test_irrelevant_commit_produces_nothing(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.IMMEDIATE)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        stocks.insert((9, "LOW", 10))
        assert mgr.drain() == []

    def test_unrelated_table_ignored(self, db, stocks):
        other = db.create_table("other", [("x", AttributeType.INT)])
        mgr = CQManager(db, strategy=EvaluationStrategy.IMMEDIATE)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        other.insert((1,))
        assert mgr.drain() == []


class TestPeriodicStrategy:
    def test_no_refresh_until_poll(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        stocks.insert((9, "SUN", 500))
        assert mgr._outbox == []
        notes = mgr.poll()
        assert len(notes) == 1

    def test_batched_updates_consolidated(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        tid = stocks.insert((9, "SUN", 500))
        stocks.modify(tid, updates={"price": 510})
        notes = mgr.poll()
        # Net effect: one insert at the final price.
        delta = notes[0].delta
        assert len(delta) == 1
        assert delta.get(tid).new == (9, "SUN", 510)

    def test_every_trigger_uses_virtual_time(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH_SQL, trigger=Every(100))
        mgr.drain()
        stocks.insert((9, "SUN", 500))
        assert mgr.poll() == []  # interval not reached
        notes = mgr.poll(advance_to=db.now() + 200)
        assert len(notes) == 1


class TestDeliveryModes:
    def prepare(self, db, stocks, stocks_tids, mode, **kw):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL, mode=mode, **kw)
        mgr.drain()
        run_example1_transaction(db, stocks, stocks_tids)
        return mgr.drain()[0]

    def test_differential(self, db, stocks, stocks_tids):
        note = self.prepare(db, stocks, stocks_tids, DeliveryMode.DIFFERENTIAL)
        assert note.delta is not None and note.result is None

    def test_insertions_only(self, db, stocks, stocks_tids):
        note = self.prepare(db, stocks, stocks_tids, DeliveryMode.INSERTIONS_ONLY)
        assert note.delta is None
        assert note.result.values_set() == {(120992, "DEC", 149)}

    def test_deletions_only(self, db, stocks, stocks_tids):
        note = self.prepare(db, stocks, stocks_tids, DeliveryMode.DELETIONS_ONLY)
        assert note.result.values_set() == {
            (92394, "QLI", 145),
            (120992, "DEC", 150),
        }

    def test_complete(self, db, stocks, stocks_tids):
        note = self.prepare(db, stocks, stocks_tids, DeliveryMode.COMPLETE)
        assert note.result == db.query(WATCH_SQL)
        assert note.delta is not None


class TestEngines:
    def test_reevaluate_engine_matches_dra(self, db, stocks, stocks_tids):
        mgr = CQManager(db)
        mgr.register_sql("dra", WATCH_SQL, engine=Engine.DRA)
        mgr.register_sql("reeval", WATCH_SQL, engine=Engine.REEVALUATE)
        mgr.drain()
        run_example1_transaction(db, stocks, stocks_tids)
        notes = {n.cq_name: n for n in mgr.drain()}
        # Same delta content from both engines (timestamps may differ).
        dra_entries = {
            (e.tid, e.old, e.new) for e in notes["dra"].delta
        }
        reeval_entries = {
            (e.tid, e.old, e.new) for e in notes["reeval"].delta
        }
        assert dra_entries == reeval_entries

    def test_reevaluate_requires_kept_result(self, db, stocks):
        mgr = CQManager(db)
        with pytest.raises(RegistrationError):
            mgr.register_sql(
                "x", WATCH_SQL, engine=Engine.REEVALUATE, keep_result=False
            )


class TestEpsilonCQs:
    def test_net_change_epsilon_cq(self, db):
        accounts = db.create_table(
            "accounts", [("owner", AttributeType.STR), ("amount", AttributeType.FLOAT)]
        )
        mgr = CQManager(db)
        mgr.register_sql(
            "sum",
            "SELECT SUM(amount) AS total FROM accounts",
            trigger=EpsilonTrigger(NetChangeEpsilon(100.0, "amount")),
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        accounts.insert(("a", 60.0))
        assert mgr.drain() == []  # below epsilon
        accounts.insert(("b", 50.0))
        notes = mgr.drain()
        assert len(notes) == 1
        assert notes[0].result.get(()) == (110.0,)

    def test_drift_epsilon_cq(self, db):
        accounts = db.create_table(
            "accounts", [("owner", AttributeType.STR), ("amount", AttributeType.FLOAT)]
        )
        accounts.insert(("seed", 1000.0))
        mgr = CQManager(db)
        mgr.register_sql(
            "sum",
            "SELECT SUM(amount) AS total FROM accounts",
            trigger=EpsilonTrigger(ResultDriftEpsilon(100.0)),
            mode=DeliveryMode.COMPLETE,
        )
        mgr.drain()
        accounts.insert(("a", 40.0))
        accounts.insert(("b", 40.0))
        assert mgr.drain() == []  # drift 80 < 100
        accounts.insert(("c", 40.0))
        notes = mgr.drain()
        assert notes and notes[0].result.get(()) == (1120.0,)

    def test_drift_epsilon_requires_global_aggregate(self, db, stocks):
        mgr = CQManager(db)
        with pytest.raises(RegistrationError):
            mgr.register_sql(
                "bad",
                WATCH_SQL,
                trigger=EpsilonTrigger(ResultDriftEpsilon(1.0)),
            )

    def test_on_update_trigger_cq(self, db):
        accounts = db.create_table(
            "accounts", [("owner", AttributeType.STR), ("amount", AttributeType.FLOAT)]
        )
        mgr = CQManager(db)
        mgr.register_sql(
            "big-deposits",
            "SELECT owner, amount FROM accounts",
            trigger=OnUpdate("accounts", ge(col("amount"), lit(1_000_000.0))),
        )
        mgr.drain()
        accounts.insert(("small", 10.0))
        assert mgr.drain() == []
        accounts.insert(("whale", 2_000_000.0))
        notes = mgr.drain()
        # Both pending rows delivered once the trigger finally fires.
        assert len(notes) == 1 and len(notes[0].delta) == 2


class TestTermination:
    def test_after_executions(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL, stop=AfterExecutions(2))
        stocks.insert((8, "AAA", 500))
        stocks.insert((9, "BBB", 500))  # would be third result
        kinds = [n.kind for n in mgr.drain()]
        assert kinds == [
            NotificationKind.INITIAL,
            NotificationKind.REFRESH,
            NotificationKind.STOPPED,
        ]
        assert mgr.get("watch").status is CQStatus.STOPPED

    def test_stopped_cq_ignores_updates(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL, stop=AfterExecutions(1))
        mgr.poll()
        mgr.drain()
        stocks.insert((9, "SUN", 500))
        assert mgr.drain() == []

    def test_at_time_stop_on_poll(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH_SQL, stop=AtTime(50))
        mgr.drain()
        notes = mgr.poll(advance_to=60)
        assert [n.kind for n in notes] == [NotificationKind.STOPPED]

    def test_deregister(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        mgr.deregister("watch")
        notes = mgr.drain()
        assert [n.kind for n in notes] == [NotificationKind.STOPPED]
        mgr.deregister("watch")  # idempotent


class TestSequenceNumbers:
    def test_seq_increments_per_result(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL)
        stocks.insert((8, "AAA", 500))
        stocks.insert((7, "LOW", 10))  # irrelevant: no seq consumed
        stocks.insert((9, "BBB", 500))
        notes = mgr.drain()
        assert [n.seq for n in notes] == [1, 2, 3]
