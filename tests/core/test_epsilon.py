"""Tests for epsilon specifications (paper Sections 3.2, 5.3).

Includes experiment X3: the checking-account sum-up query with
|Deposits − Withdrawals| >= 0.5M.
"""

import pytest

from repro.errors import TriggerError
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.delta.differential import DeltaEntry, DeltaRelation
from repro.core.epsilon import (
    CountEpsilon,
    MagnitudeEpsilon,
    NetChangeEpsilon,
    ResultDriftEpsilon,
)

SCHEMA = Schema.of(("owner", AttributeType.STR), ("amount", AttributeType.FLOAT))


def delta(*entries):
    return DeltaRelation(SCHEMA, entries)


def deposit(tid, amount, ts=1):
    return DeltaEntry(tid, None, ("x", float(amount)), ts)


def withdrawal(tid, amount, ts=1):
    return DeltaEntry(tid, ("x", float(amount)), None, ts)


def balance_change(tid, old, new, ts=1):
    return DeltaEntry(tid, ("x", float(old)), ("x", float(new)), ts)


class TestCountEpsilon:
    def test_counts_net_entries(self):
        spec = CountEpsilon(3)
        spec.observe("t", delta(deposit(1, 5), deposit(2, 5)))
        assert not spec.exceeded()
        spec.observe("t", delta(deposit(3, 5)))
        assert spec.exceeded()

    def test_reset(self):
        spec = CountEpsilon(1)
        spec.observe("t", delta(deposit(1, 5)))
        spec.reset()
        assert not spec.exceeded()
        assert spec.divergence == 0

    def test_positive_limit_required(self):
        with pytest.raises(TriggerError):
            CountEpsilon(0)


class TestNetChangeEpsilon:
    def test_paper_checking_account_example(self):
        """X3: fire when |Deposits − Withdrawals| >= 0.5M."""
        spec = NetChangeEpsilon(500_000.0, "amount")
        spec.observe("accounts", delta(deposit(1, 300_000)))
        assert not spec.exceeded()
        spec.observe("accounts", delta(withdrawal(2, 100_000)))
        assert not spec.exceeded()  # net = 200k
        spec.observe("accounts", delta(deposit(3, 300_000)))
        assert spec.exceeded()  # net = 500k

    def test_deposits_and_withdrawals_cancel(self):
        spec = NetChangeEpsilon(100.0, "amount")
        spec.observe("t", delta(deposit(1, 1000), withdrawal(2, 950)))
        assert not spec.exceeded()
        assert spec.divergence == 50.0

    def test_modification_contributes_its_change(self):
        spec = NetChangeEpsilon(100.0, "amount")
        spec.observe("t", delta(balance_change(1, 500, 650)))
        assert spec.divergence == 150.0
        assert spec.exceeded()

    def test_negative_net_fires_by_magnitude(self):
        spec = NetChangeEpsilon(100.0, "amount")
        spec.observe("t", delta(withdrawal(1, 150)))
        assert spec.exceeded()

    def test_table_filter(self):
        spec = NetChangeEpsilon(100.0, "amount", table="accounts")
        spec.observe("other", delta(deposit(1, 1000)))
        assert not spec.exceeded()
        spec.observe("accounts", delta(deposit(2, 1000)))
        assert spec.exceeded()

    def test_missing_column_ignored(self):
        spec = NetChangeEpsilon(1.0, "balance")
        spec.observe("t", delta(deposit(1, 1000)))  # schema has no 'balance'
        assert not spec.exceeded()

    def test_null_values_treated_as_zero(self):
        spec = NetChangeEpsilon(10.0, "amount")
        spec.observe("t", delta(DeltaEntry(1, None, ("x", None), 1)))
        assert spec.divergence == 0.0


class TestMagnitudeEpsilon:
    def test_direction_does_not_cancel(self):
        spec = MagnitudeEpsilon(100.0, "amount")
        spec.observe("t", delta(deposit(1, 60), withdrawal(2, 60)))
        assert spec.divergence == 120.0
        assert spec.exceeded()

    def test_modification_uses_absolute_change(self):
        spec = MagnitudeEpsilon(100.0, "amount")
        spec.observe("t", delta(balance_change(1, 500, 450)))
        assert spec.divergence == 50.0


class TestResultDriftEpsilon:
    def test_fires_when_maintained_value_drifts(self):
        spec = ResultDriftEpsilon(10.0)
        spec.note_current(100.0)  # first observation pins reported
        assert not spec.exceeded()
        spec.note_current(105.0)
        assert not spec.exceeded()
        spec.note_current(111.0)
        assert spec.exceeded()
        spec.reset()
        assert not spec.exceeded()
        assert spec.reported == 111.0

    def test_none_transitions(self):
        spec = ResultDriftEpsilon(10.0)
        spec.note_current(None)
        assert not spec.exceeded()
        spec.note_current(5.0)  # reported None, current 5 -> must re-report
        assert spec.exceeded()
