"""Tests for the CQ triple definition and its invariants."""

import pytest

from repro.errors import RegistrationError
from repro.relational import parse_query
from repro.core.continual_query import (
    ContinualQuery,
    CQStatus,
    DeliveryMode,
    Engine,
)
from repro.core.termination import Never
from repro.core.triggers import OnEveryChange


def spj():
    return parse_query("SELECT name FROM stocks WHERE price > 120")


def agg():
    return parse_query("SELECT SUM(price) AS total FROM stocks")


class TestConstruction:
    def test_defaults(self):
        cq = ContinualQuery("watch", spj())
        assert isinstance(cq.trigger, OnEveryChange)
        assert isinstance(cq.stop, Never)
        assert cq.mode is DeliveryMode.DIFFERENTIAL
        assert cq.engine is Engine.DRA
        assert cq.status is CQStatus.ACTIVE
        assert cq.executions == 0

    def test_name_required(self):
        with pytest.raises(RegistrationError):
            ContinualQuery("", spj())

    def test_complete_mode_requires_kept_result(self):
        with pytest.raises(RegistrationError):
            ContinualQuery(
                "w", spj(), mode=DeliveryMode.COMPLETE, keep_result=False
            )

    def test_differential_without_kept_result_ok(self):
        cq = ContinualQuery("w", spj(), keep_result=False)
        assert not cq.keep_result


class TestIntrospection:
    def test_is_aggregate(self):
        assert not ContinualQuery("a", spj()).is_aggregate
        assert ContinualQuery("b", agg()).is_aggregate

    def test_spj_core(self):
        cq = ContinualQuery("b", agg())
        assert cq.spj_core is cq.query.core

    def test_table_names_deduplicated(self):
        q = parse_query(
            "SELECT a.name FROM stocks a, stocks b WHERE a.sid = b.sid"
        )
        cq = ContinualQuery("self", q)
        assert cq.table_names == ("stocks",)

    def test_table_names_multi(self):
        q = parse_query(
            "SELECT s.name FROM stocks s, trades t WHERE s.sid = t.sid"
        )
        assert ContinualQuery("j", q).table_names == ("stocks", "trades")
