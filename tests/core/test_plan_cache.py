"""Plan-cache lifecycle through the CQ manager.

Registration compiles once; every refresh hits the cache; deregister
and catalog changes (new index, replaced table) invalidate; a CQ
re-registered under an old name gets a fresh plan, never the ghost of
the previous query.
"""

import pytest

from repro import Database
from repro.metrics import Metrics
from repro.core import CQManager, EvaluationStrategy
from repro.relational import AttributeType


@pytest.fixture
def metrics():
    return Metrics()


@pytest.fixture
def mgr(db, stocks, metrics):
    return CQManager(
        db, strategy=EvaluationStrategy.PERIODIC, metrics=metrics
    )


WATCH_SQL = "SELECT name, price FROM stocks WHERE price > 120"


class TestCacheLifecycle:
    def test_register_prepares_once(self, mgr, metrics):
        mgr.register_sql("watch", WATCH_SQL)
        assert "watch" in mgr.plans
        assert metrics[Metrics.PLANS_PREPARED] == 1

    def test_refreshes_hit_the_cache(self, mgr, stocks, metrics):
        mgr.register_sql("watch", WATCH_SQL)
        prepared_before = metrics[Metrics.PLANS_PREPARED]
        for i in range(3):
            stocks.insert((900 + i, "NEW", 200 + i))
            mgr.poll()
        assert metrics[Metrics.PLAN_CACHE_HITS] >= 3
        assert metrics[Metrics.PLANS_PREPARED] == prepared_before

    def test_deregister_invalidates(self, mgr, metrics):
        mgr.register_sql("watch", WATCH_SQL)
        mgr.deregister("watch")
        assert "watch" not in mgr.plans
        assert metrics[Metrics.PLAN_CACHE_INVALIDATIONS] == 1

    def test_reregister_same_name_gets_fresh_plan(self, mgr, db, stocks):
        mgr.register_sql("watch", WATCH_SQL)
        mgr.deregister("watch")
        other = db.create_table(
            "trades", [("sid", AttributeType.INT), ("qty", AttributeType.INT)]
        )
        mgr.drain()
        notes = []
        mgr.register_sql(
            "watch",
            "SELECT sid, qty FROM trades WHERE qty > 3",
            on_notify=notes.append,
        )
        other.insert((1, 10))
        mgr.poll()
        refresh = [n for n in notes if n.kind.value == "refresh"]
        assert len(refresh) == 1
        assert [tuple(e.new) for e in refresh[0].delta] == [(1, 10)]

    def test_index_added_after_prepare_reprepares(self, mgr, stocks, metrics):
        mgr.register_sql("watch", WATCH_SQL)
        prepared_before = metrics[Metrics.PLANS_PREPARED]
        stocks.create_index(["name"])
        stocks.insert((900, "NEW", 200))
        mgr.poll()
        assert metrics[Metrics.PLAN_CACHE_INVALIDATIONS] >= 1
        assert metrics[Metrics.PLANS_PREPARED] == prepared_before + 1
        # The re-prepared plan serves subsequent refreshes from cache.
        hits = metrics[Metrics.PLAN_CACHE_HITS]
        stocks.insert((901, "NEW", 201))
        mgr.poll()
        assert metrics[Metrics.PLAN_CACHE_HITS] > hits

    def test_prepare_plans_false_keeps_cache_empty(self, db, stocks, metrics):
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            metrics=metrics,
            prepare_plans=False,
        )
        mgr.register_sql("watch", WATCH_SQL)
        stocks.insert((900, "NEW", 200))
        mgr.poll()
        # Nothing is cached: each refresh prepared privately (the
        # one-shot path inside dra_execute) and nothing ever hit.
        assert len(mgr.plans) == 0
        assert metrics[Metrics.PLAN_CACHE_HITS] == 0

    def test_aggregates_share_the_cache(self, mgr, stocks, metrics):
        mgr.register_sql("total", "SELECT SUM(price) AS total FROM stocks")
        assert "total" in mgr.plans
        hits = metrics[Metrics.PLAN_CACHE_HITS]
        stocks.insert((900, "NEW", 200))
        mgr.poll()
        assert metrics[Metrics.PLAN_CACHE_HITS] > hits


class TestIntrospection:
    def test_describe_reports_plan_cached(self, mgr):
        mgr.register_sql("watch", WATCH_SQL)
        record = mgr.describe()[0]
        assert record["plan_cached"] is True

    def test_status_report_has_plan_counters(self, mgr):
        mgr.register_sql("watch", WATCH_SQL)
        report = mgr.status_report()
        assert "plan_cached" in report
        assert "plans: prepared=" in report
