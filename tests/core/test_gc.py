"""Tests for active-delta-zone garbage collection (paper Section 5.4)."""

from repro.core import CQManager, EvaluationStrategy, Every
from repro.core.gc import ActiveDeltaZones
from repro.metrics import Metrics
from repro.relational import AttributeType

WATCH_SQL = "SELECT name FROM stocks WHERE price > 120"


class TestZoneAccounting:
    def test_horizon_is_oldest_watcher(self, db, stocks):
        zones = ActiveDeltaZones(db)
        zones.register("fast", ("stocks",), ts=100)
        zones.register("slow", ("stocks",), ts=40)
        assert zones.horizon("stocks") == 40
        zones.advance("slow", 80)
        assert zones.horizon("stocks") == 80

    def test_advance_never_moves_backward(self, db, stocks):
        zones = ActiveDeltaZones(db)
        zones.register("cq", ("stocks",), ts=100)
        zones.advance("cq", 50)
        assert zones.horizon("stocks") == 100

    def test_unwatched_table_has_no_horizon(self, db, stocks):
        zones = ActiveDeltaZones(db)
        assert zones.horizon("stocks") is None

    def test_remove_frees_zone(self, db, stocks):
        zones = ActiveDeltaZones(db)
        zones.register("cq", ("stocks",), ts=10)
        zones.remove("cq")
        assert zones.horizon("stocks") is None
        assert zones.watchers("stocks") == []


class TestCollection:
    def test_collect_prunes_to_horizon(self, db, stocks, stocks_tids):
        zones = ActiveDeltaZones(db)
        stocks.modify(stocks_tids[120992], updates={"price": 149})
        ts = db.now()
        stocks.modify(stocks_tids[120992], updates={"price": 148})
        zones.register("cq", ("stocks",), ts=ts)
        pruned = zones.collect()
        # Everything up to ts retired; the later record survives.
        assert pruned["stocks"] >= 1
        assert len(stocks.log.since(ts)) == 1

    def test_unwatched_tables_kept_by_default(self, db, stocks):
        zones = ActiveDeltaZones(db)
        stocks.insert((9, "X", 1))
        assert zones.collect() == {}
        assert zones.collect(include_unwatched=True)["stocks"] >= 1

    def test_oldest_zone_bounds_system_zone(self, db, stocks):
        """A slow CQ holds back GC for everything it reads."""
        zones = ActiveDeltaZones(db)
        slow_ts = db.now()
        zones.register("slow", ("stocks",), ts=slow_ts)
        stocks.insert((8, "A", 1))
        mid = db.now()
        zones.register("fast", ("stocks",), ts=mid)
        stocks.insert((9, "B", 1))
        zones.collect()
        # slow's zone starts before both inserts: its window survives.
        assert len(stocks.log.since(slow_ts)) == 2


class TestManagerIntegration:
    def test_zones_advance_with_executions(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL)
        before = mgr.zones.horizon("stocks")
        stocks.insert((9, "SUN", 500))
        assert mgr.zones.horizon("stocks") > before

    def test_auto_gc_bounds_log(self, db, stocks):
        mgr = CQManager(db, auto_gc=True)
        mgr.register_sql("watch", WATCH_SQL)
        for i in range(20):
            stocks.insert((100 + i, "SUN", 500 + i))
        # Every commit triggered a refresh which then pruned the log.
        assert len(stocks.log) <= 1

    def test_manual_collect_garbage(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH_SQL)
        for i in range(5):
            stocks.insert((100 + i, "SUN", 500 + i))
        mgr.poll()
        pruned = mgr.collect_garbage()
        assert pruned.get("stocks", 0) >= 5

    def test_multiple_cq_cadences(self, db, stocks):
        """The system delta zone is pinned by the least-advanced CQ."""
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)

        mgr.register_sql("fast", WATCH_SQL, trigger=Every(1))
        mgr.register_sql("slow", WATCH_SQL, trigger=Every(10_000))
        slow_ts = mgr.get("slow").last_execution_ts
        for i in range(5):
            stocks.insert((100 + i, "SUN", 500 + i))
            mgr.poll()
        mgr.collect_garbage()
        # slow hasn't refreshed: its whole window is preserved.
        assert len(stocks.log.since(slow_ts)) == 5


class TestGCUnderSharing:
    """Auto-GC with the shared-delta scheduler (Section 5.4 under the
    sharing layer): a fast CQ's pruning must never reach into a slower
    CQ's active delta zone, even when both read one cached batch."""

    def test_pruning_never_drops_slow_cq_window(self, db, stocks):
        metrics = Metrics()
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            auto_gc=True,
            metrics=metrics,
            share_deltas=True,
        )
        mgr.register_sql("fast", WATCH_SQL, trigger=Every(1))
        mgr.register_sql("slow", WATCH_SQL, trigger=Every(10_000))
        slow_ts = mgr.get("slow").last_execution_ts
        mgr.drain()
        for i in range(6):
            stocks.insert((100 + i, "SUN", 500 + i))
            mgr.poll()
        # fast refreshed (and pruned) every round; slow has not run,
        # so its whole window must have survived every prune.
        assert mgr.get("fast").executions > mgr.get("slow").executions
        assert len(stocks.log.since(slow_ts)) == 6
        # Now let slow fire: its differential refresh over the retained
        # window must equal complete re-evaluation — nothing was lost.
        db.clock.advance_to(db.now() + 20_000)
        mgr.poll()
        assert mgr.get("slow").previous_result == db.query(WATCH_SQL)

    def test_shared_batch_is_cached_once_for_aligned_cqs(self, db, stocks):
        """Two CQs with identical windows share one consolidation; GC
        after the first refresh must not invalidate the second's read."""
        metrics = Metrics()
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            auto_gc=True,
            metrics=metrics,
        )
        mgr.register_sql("a", WATCH_SQL)
        mgr.register_sql("b", "SELECT sid FROM stocks WHERE price > 140")
        mgr.drain()
        for i in range(4):
            stocks.insert((200 + i, "SUN", 500 + i))
            notes = mgr.poll()
            # Both CQs refreshed from the same poll window.
            assert {n.cq_name for n in notes} == {"a", "b"}
        # Same (table, since, now) key each poll: one consolidation,
        # one reuse — despite auto_gc pruning between polls.
        assert metrics[Metrics.DELTA_BATCHES_COMPUTED] == 4
        assert metrics[Metrics.DELTA_BATCHES_REUSED] == 4
        for name in ("a", "b"):
            sql = mgr.get(name).query.to_sql()
            assert mgr.get(name).previous_result == db.query(sql)

    def test_parallel_auto_gc_respects_zones(self):
        """Races between refresh threads and GC must never prune into
        any CQ's unread window (the Section 5.4 invariant under the
        parallel refresh path)."""
        from repro.workload.stocks import StockMarket
        from repro import Database

        db = Database()
        market = StockMarket(db, seed=31)
        market.populate(100)
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.PERIODIC,
            auto_gc=True,
            parallelism=4,
        )
        mgr.register_sql("fast", "SELECT sid, price FROM stocks WHERE price > 100", trigger=Every(1))
        mgr.register_sql("slow", "SELECT sid, price FROM stocks WHERE price > 200", trigger=Every(50))
        mgr.register_sql("eager", "SELECT sid, price FROM stocks WHERE price > 300")
        for __ in range(8):
            market.tick(15)
            mgr.poll()  # a dropped window would raise or diverge below
        db.clock.advance_to(db.now() + 100)
        mgr.poll()
        for name in ("fast", "slow", "eager"):
            sql = mgr.get(name).query.to_sql()
            assert mgr.get(name).previous_result == db.query(sql)
