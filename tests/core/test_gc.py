"""Tests for active-delta-zone garbage collection (paper Section 5.4)."""

from repro.core import CQManager, EvaluationStrategy
from repro.core.gc import ActiveDeltaZones
from repro.relational import AttributeType

WATCH_SQL = "SELECT name FROM stocks WHERE price > 120"


class TestZoneAccounting:
    def test_horizon_is_oldest_watcher(self, db, stocks):
        zones = ActiveDeltaZones(db)
        zones.register("fast", ("stocks",), ts=100)
        zones.register("slow", ("stocks",), ts=40)
        assert zones.horizon("stocks") == 40
        zones.advance("slow", 80)
        assert zones.horizon("stocks") == 80

    def test_advance_never_moves_backward(self, db, stocks):
        zones = ActiveDeltaZones(db)
        zones.register("cq", ("stocks",), ts=100)
        zones.advance("cq", 50)
        assert zones.horizon("stocks") == 100

    def test_unwatched_table_has_no_horizon(self, db, stocks):
        zones = ActiveDeltaZones(db)
        assert zones.horizon("stocks") is None

    def test_remove_frees_zone(self, db, stocks):
        zones = ActiveDeltaZones(db)
        zones.register("cq", ("stocks",), ts=10)
        zones.remove("cq")
        assert zones.horizon("stocks") is None
        assert zones.watchers("stocks") == []


class TestCollection:
    def test_collect_prunes_to_horizon(self, db, stocks, stocks_tids):
        zones = ActiveDeltaZones(db)
        stocks.modify(stocks_tids[120992], updates={"price": 149})
        ts = db.now()
        stocks.modify(stocks_tids[120992], updates={"price": 148})
        zones.register("cq", ("stocks",), ts=ts)
        pruned = zones.collect()
        # Everything up to ts retired; the later record survives.
        assert pruned["stocks"] >= 1
        assert len(stocks.log.since(ts)) == 1

    def test_unwatched_tables_kept_by_default(self, db, stocks):
        zones = ActiveDeltaZones(db)
        stocks.insert((9, "X", 1))
        assert zones.collect() == {}
        assert zones.collect(include_unwatched=True)["stocks"] >= 1

    def test_oldest_zone_bounds_system_zone(self, db, stocks):
        """A slow CQ holds back GC for everything it reads."""
        zones = ActiveDeltaZones(db)
        slow_ts = db.now()
        zones.register("slow", ("stocks",), ts=slow_ts)
        stocks.insert((8, "A", 1))
        mid = db.now()
        zones.register("fast", ("stocks",), ts=mid)
        stocks.insert((9, "B", 1))
        zones.collect()
        # slow's zone starts before both inserts: its window survives.
        assert len(stocks.log.since(slow_ts)) == 2


class TestManagerIntegration:
    def test_zones_advance_with_executions(self, db, stocks):
        mgr = CQManager(db)
        mgr.register_sql("watch", WATCH_SQL)
        before = mgr.zones.horizon("stocks")
        stocks.insert((9, "SUN", 500))
        assert mgr.zones.horizon("stocks") > before

    def test_auto_gc_bounds_log(self, db, stocks):
        mgr = CQManager(db, auto_gc=True)
        mgr.register_sql("watch", WATCH_SQL)
        for i in range(20):
            stocks.insert((100 + i, "SUN", 500 + i))
        # Every commit triggered a refresh which then pruned the log.
        assert len(stocks.log) <= 1

    def test_manual_collect_garbage(self, db, stocks):
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        mgr.register_sql("watch", WATCH_SQL)
        for i in range(5):
            stocks.insert((100 + i, "SUN", 500 + i))
        mgr.poll()
        pruned = mgr.collect_garbage()
        assert pruned.get("stocks", 0) >= 5

    def test_multiple_cq_cadences(self, db, stocks):
        """The system delta zone is pinned by the least-advanced CQ."""
        mgr = CQManager(db, strategy=EvaluationStrategy.PERIODIC)
        from repro.core import Every

        mgr.register_sql("fast", WATCH_SQL, trigger=Every(1))
        mgr.register_sql("slow", WATCH_SQL, trigger=Every(10_000))
        slow_ts = mgr.get("slow").last_execution_ts
        for i in range(5):
            stocks.insert((100 + i, "SUN", 500 + i))
            mgr.poll()
        mgr.collect_garbage()
        # slow hasn't refreshed: its whole window is preserved.
        assert len(stocks.log.since(slow_ts)) == 5
