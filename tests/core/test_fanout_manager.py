"""Manager-side fan-out: index routing, shared windows, teardown.

``CQManager(fanout=True)`` holds every non-baseline CQ's local
predicates in one :class:`~repro.dra.predindex.PredicateIndex`; a poll
routes the consolidated batch once and CQs outside the routed set
return a provably-empty delta without running an engine. CQs with
identical SQL additionally share one DRA evaluation per refresh
window. The equivalence harness proves the notification sequences
match the sequential configuration; these tests pin the mechanics —
registration, routing skips, shared-window hits, and the deregister
regression (index entries must die with the CQ).
"""

import pytest

from repro.core import CQManager, Engine, EvaluationStrategy
from repro.metrics import Metrics
from repro.relational import AttributeType


WATCH_SQL = "SELECT sid, name, price FROM stocks WHERE price > 120"


def make_manager(db, **kwargs):
    return CQManager(
        db,
        strategy=EvaluationStrategy.PERIODIC,
        metrics=Metrics(),
        fanout=True,
        **kwargs,
    )


def insert(db, table, *rows):
    with db.begin() as txn:
        for row in rows:
            txn.insert_into(db.table(table), row)


class TestIndexLifecycle:
    def test_registered_cqs_are_indexed(self, db, stocks):
        mgr = make_manager(db)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.register_sql("base", WATCH_SQL, engine=Engine.REEVALUATE)
        assert "watch" in mgr.fanout_index
        # Baselines never read deltas: not indexed, never skipped.
        assert "base" not in mgr.fanout_index

    def test_deregister_drops_index_entries(self, db, stocks):
        """Regression: a deregistered CQ must leave the index and its
        sql_key group — no routing work, no stale fan-out."""
        mgr = make_manager(db)
        mgr.register_sql("a", WATCH_SQL)
        mgr.register_sql("b", WATCH_SQL)
        mgr.drain()
        assert len(mgr.fanout_index) == 2
        mgr.deregister("a")
        assert "a" not in mgr.fanout_index
        assert len(mgr.fanout_index) == 1
        mgr.deregister("b")
        assert len(mgr.fanout_index) == 0
        assert mgr._sql_groups == {}
        mgr.drain()
        # Later polls route to nobody and notify nobody.
        insert(db, "stocks", (7, "NEW", 500))
        assert mgr.poll(advance_to=db.now() + 1) == []

    def test_stop_condition_also_cleans_up(self, db, stocks):
        from repro.core import AfterExecutions

        mgr = make_manager(db)
        mgr.register_sql("once", WATCH_SQL, stop=AfterExecutions(1))
        insert(db, "stocks", (7, "NEW", 500))
        mgr.poll(advance_to=db.now() + 1)
        insert(db, "stocks", (8, "NEW2", 600))
        mgr.poll(advance_to=db.now() + 1)
        assert "once" not in mgr.fanout_index


class TestRoutingSkip:
    def test_irrelevant_updates_skip_refresh_work(self, db, stocks):
        """Updates entirely outside every CQ's slice route to nobody:
        the poll produces no notifications and near-zero probes."""
        mgr = make_manager(db)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        insert(db, "stocks", (50, "LOW", 10))  # price > 120 misses
        notes = mgr.poll(advance_to=db.now() + 1)
        assert notes == []
        assert mgr.metrics[Metrics.PREDINDEX_MATCHES] == 0

    def test_relevant_updates_still_notify(self, db, stocks):
        mgr = make_manager(db)
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        insert(db, "stocks", (50, "HI", 900))
        notes = mgr.poll(advance_to=db.now() + 1)
        assert len(notes) == 1
        assert mgr.metrics[Metrics.PREDINDEX_MATCHES] >= 1

    def test_immediate_strategy_also_routes(self, db, stocks):
        mgr = CQManager(
            db,
            strategy=EvaluationStrategy.IMMEDIATE,
            metrics=Metrics(),
            fanout=True,
        )
        mgr.register_sql("watch", WATCH_SQL)
        mgr.drain()
        insert(db, "stocks", (50, "LOW", 10))
        assert mgr.drain() == []
        insert(db, "stocks", (51, "HI", 900))
        notes = mgr.drain()
        assert len(notes) == 1

    def test_aggregate_cqs_take_the_fast_path(self, db, stocks):
        mgr = make_manager(db)
        mgr.register_sql(
            "total", "SELECT COUNT(*) AS n FROM stocks WHERE price > 120"
        )
        mgr.drain()
        insert(db, "stocks", (50, "LOW", 10))
        assert mgr.poll(advance_to=db.now() + 1) == []
        insert(db, "stocks", (51, "HI", 900))
        notes = mgr.poll(advance_to=db.now() + 1)
        assert len(notes) == 1


class TestSharedWindows:
    def test_identical_sql_evaluates_once_per_window(self, db, stocks):
        mgr = make_manager(db)
        for i in range(5):
            mgr.register_sql(f"w{i}", WATCH_SQL)
        mgr.drain()
        insert(db, "stocks", (50, "HI", 900))
        notes = mgr.poll(advance_to=db.now() + 1)
        assert len(notes) == 5
        # Four of the five refreshes reused the shared DRAResult.
        assert mgr.metrics[Metrics.SHARED_GROUP_HITS] == 4
        assert mgr.metrics[Metrics.SHARED_GROUPS] == 1
        # Every CQ's maintained result is independently correct.
        for i in range(5):
            assert mgr.get(f"w{i}").previous_result == db.query(WATCH_SQL)

    def test_shared_members_do_not_alias_results(self, db, stocks):
        mgr = make_manager(db)
        mgr.register_sql("a", WATCH_SQL)
        mgr.register_sql("b", WATCH_SQL)
        insert(db, "stocks", (50, "HI", 900))
        mgr.poll(advance_to=db.now() + 1)
        assert mgr.get("a").previous_result is not mgr.get("b").previous_result
