"""Every library error derives from ReproError (catchable at the API)."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import ReproError


def all_error_classes():
    return [
        obj
        for __, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


def test_everything_derives_from_repro_error():
    classes = all_error_classes()
    assert len(classes) > 15
    for cls in classes:
        assert issubclass(cls, ReproError), cls


def test_specialized_errors_also_derive():
    from repro.baselines.terry import AppendOnlyViolation
    from repro.core.persistence import UnserializableCQ
    from repro.dra.assembly import WeightInvariantError

    for cls in (AppendOnlyViolation, UnserializableCQ, WeightInvariantError):
        assert issubclass(cls, ReproError)


def test_sql_syntax_error_carries_position():
    from repro.errors import SQLSyntaxError

    error = SQLSyntaxError("bad", position=7)
    assert error.position == 7
    assert SQLSyntaxError("bad").position == -1


def test_one_except_clause_suffices():
    from repro import Database

    db = Database()
    with pytest.raises(ReproError):
        db.table("missing")
    with pytest.raises(ReproError):
        db.query("SELECT FROM")
